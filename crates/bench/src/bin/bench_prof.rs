//! `bench-prof` — what the sampling profiler costs, and that its
//! watchdog works.
//!
//! Three measurements, three claims of the worlds-prof PR:
//!
//! * **Marker transition cost** — publishing a `(world, site, alt,
//!   phase)` tuple through the seqlock slot ([`mark_always`], the path
//!   every phase boundary pays while a sampler is attached), and the
//!   gated [`mark`] with no reader (the path everyone else pays: one
//!   relaxed load). Budget: ≤ 20 ns per enabled transition.
//! * **Sampler throughput tax** — the bench-exec block workload with
//!   and without a 997 Hz sampler attached. The sampler adds marker
//!   writes on every phase boundary plus one watcher thread; the
//!   regression budget is 5%.
//! * **Wedge smoke** — an artificial wedge (a marker parked in `Guard`
//!   past its deadline) must produce exactly one `Stall` event and one
//!   flight-recorder dump whose every line replays as a valid event.
//!
//! Results land in `BENCH_prof.json` (or the path given as the first
//! non-flag argument). `--smoke` shrinks every knob for CI.
//!
//! ```text
//! cargo run --release -p worlds-bench --bin bench-prof [out.json] [--smoke]
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use worlds::{AltBlock, AltError, ElimMode, Executor, Speculation};
use worlds_obs::{Event, EventKind, EventSink, Registry};
use worlds_prof::{mark, mark_always, mark_idle, Phase, Sampler, SamplerConfig};
use worlds_telemetry::TelemetryHub;

/// Nanoseconds per call over `iters` alternating marker transitions.
/// Alternating tuples defeat any same-value store elision; `black_box`
/// keeps the loop counter honest.
fn marker_transition_ns(iters: u64, f: impl Fn(u64)) -> f64 {
    // Warm up: first call claims the thread's slot (a mutex + alloc).
    f(0);
    let t0 = Instant::now();
    for i in 0..iters {
        f(std::hint::black_box(i));
    }
    let ns = t0.elapsed().as_nanos() as f64 / iters as f64;
    // Unconditional reset: the gated `mark_idle` would no-op with no
    // reader attached and leave this thread's slot published, which the
    // wedge-smoke watchdog later would misread as a real stall.
    mark_always(None, None, None, Phase::Idle);
    ns
}

/// A short guard-sized computation — the work a real alternative does
/// between its marker transitions (bench-exec's empty alternatives
/// measure dispatch, but a sampler tax against zero-work blocks would
/// measure the marker share of an empty block, which no workload has).
#[inline]
fn guard_work(iters: u64, seed: u64) -> u64 {
    let mut x = seed | 1;
    for _ in 0..iters {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        x ^= x >> 29;
    }
    std::hint::black_box(x)
}

/// One run of the speculation workload: 3-alternative blocks (one
/// winner with a guard-sized computation, two failures that compute a
/// short check first), synchronous elimination, pooled executor.
/// Returns blocks/sec. The session is shared across runs — rebuilding
/// it per run drags allocator state into the measurement.
fn block_throughput(blocks: usize, spec: &Speculation) -> f64 {
    let t0 = Instant::now();
    for i in 0..blocks {
        let r = spec.run(
            AltBlock::new()
                .alt("winner", move |ctx| {
                    let v = guard_work(4000, i as u64);
                    ctx.put_u64("cell", v)?;
                    Ok(v)
                })
                .alt("loser-a", move |_| {
                    guard_work(1000, i as u64);
                    Err(AltError::GuardFailed("no".into()))
                })
                .alt("loser-b", move |_| {
                    guard_work(1000, i as u64);
                    Err(AltError::GuardFailed("no".into()))
                })
                .elim(ElimMode::Sync),
        );
        assert!(r.succeeded(), "bench block must commit");
        std::hint::black_box(r.value);
    }
    blocks as f64 / t0.elapsed().as_secs_f64()
}

fn median(mut rates: Vec<f64>) -> f64 {
    rates.sort_by(|a, b| a.total_cmp(b));
    rates[rates.len() / 2]
}

struct Overhead {
    baseline: f64,
    sampled: f64,
    /// Median of per-pair off/on throughput ratios, as a percentage.
    regression_pct: f64,
    /// Median of off/off control pairs — what the host's own noise
    /// reports as "regression" when nothing changed.
    noise_floor_pct: f64,
}

/// Sampler tax via paired ratios on one warm session. Each pair runs
/// the workload once per mode back-to-back (order alternating) and
/// contributes one off/on ratio; the median ratio cancels the drift
/// and co-tenant noise of a shared CI host that comparing two long
/// batches would attribute to the sampler. Off/off control pairs,
/// interleaved with the measured ones, report the remaining noise
/// floor so the headline number can be read against it.
fn sampler_overhead(pairs: usize, blocks: usize, pool: &Executor) -> Overhead {
    let spec = Speculation::new().with_executor(pool.clone());
    spec.setup(|c| c.put_u64("cell", 0)).unwrap();
    // Warm-up: page in the pool, the recycler, and the marker slots.
    block_throughput(blocks, &spec);
    {
        let _sampler = Sampler::start(SamplerConfig::default(), Registry::disabled(), None);
        block_throughput(blocks, &spec);
    }
    let mut ratios = Vec::with_capacity(pairs);
    let mut base = Vec::with_capacity(pairs);
    let mut sampled = Vec::with_capacity(pairs);
    let mut null_ratios = Vec::with_capacity(pairs / 2);
    for i in 0..pairs {
        // Default config is the documented 997 Hz; the registry is
        // disabled so we charge the marker+watcher tax, not event I/O.
        let (off, on);
        if i % 2 == 0 {
            off = block_throughput(blocks, &spec);
            let _s = Sampler::start(SamplerConfig::default(), Registry::disabled(), None);
            on = block_throughput(blocks, &spec);
        } else {
            let s = Sampler::start(SamplerConfig::default(), Registry::disabled(), None);
            on = block_throughput(blocks, &spec);
            drop(s);
            off = block_throughput(blocks, &spec);
        }
        ratios.push(off / on);
        base.push(off);
        sampled.push(on);
        if i % 2 == 0 {
            let a = block_throughput(blocks, &spec);
            let b = block_throughput(blocks, &spec);
            null_ratios.push(a / b);
        }
    }
    Overhead {
        baseline: median(base),
        sampled: median(sampled),
        regression_pct: 100.0 * (median(ratios) - 1.0),
        noise_floor_pct: 100.0 * (median(null_ratios) - 1.0),
    }
}

struct WedgeResult {
    stall_events: u64,
    dump_lines: u64,
    dump_replayable: bool,
    waited_ns: u64,
}

/// Park a marker in `Guard` past a short deadline and watch the
/// watchdog: one `Stall` event through the hub, one dump hook firing,
/// and a dump file that replays line-by-line.
fn wedge_smoke(dump_path: &std::path::Path) -> WedgeResult {
    let hub = Arc::new(TelemetryHub::default());
    let obs = Registry::with_sinks(vec![hub.clone() as Arc<dyn EventSink>]);
    // Feed the flight ring something to dump besides the stall itself.
    for w in 0..8u64 {
        obs.emit(|| Event::new(EventKind::Spawn { alt: w % 3 }, w, Some(0), obs.now_ns()));
    }
    let dumps = Arc::new(AtomicU64::new(0));
    let hook_dumps = dumps.clone();
    let hook_hub = Arc::downgrade(&hub);
    let hook_path = dump_path.to_path_buf();
    let config = SamplerConfig {
        hz: 997,
        flush_interval: Duration::from_millis(20),
        guard_stall: Duration::from_millis(80),
        overall_stall: Duration::from_millis(500),
        dump_cooldown: Duration::from_secs(30),
        folded_path: None,
    };
    let mut sampler = Sampler::start(
        config,
        obs.clone(),
        Some(Box::new(move |_info| {
            hook_dumps.fetch_add(1, Ordering::SeqCst);
            if let Some(hub) = hook_hub.upgrade() {
                let _ = hub.dump_flight(&hook_path);
            }
        })),
    );

    let stop = Arc::new(AtomicBool::new(false));
    let wedge = {
        let stop = stop.clone();
        std::thread::spawn(move || {
            mark_always(Some(7), Some(3), Some(1), Phase::Guard);
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(5));
            }
            mark_idle();
        })
    };
    // Wait for the dump rather than a fixed sleep: CI hosts stall too.
    let deadline = Instant::now() + Duration::from_secs(10);
    while dumps.load(Ordering::SeqCst) == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    stop.store(true, Ordering::Relaxed);
    wedge.join().unwrap();
    sampler.stop();

    let mut waited_ns = 0u64;
    // `stalls()` counts lifetime Stall events folded by the hub.
    let stall_events = hub.stalls();
    let dump = std::fs::read_to_string(dump_path).unwrap_or_default();
    let mut dump_lines = 0u64;
    let mut dump_replayable = !dump.is_empty();
    for line in dump.lines().filter(|l| !l.trim().is_empty()) {
        dump_lines += 1;
        match Event::from_json(line) {
            Ok(ev) => {
                if let EventKind::Stall { waited_ns: w, .. } = ev.kind {
                    waited_ns = w;
                }
            }
            Err(_) => dump_replayable = false,
        }
    }
    WedgeResult {
        stall_events,
        dump_lines,
        dump_replayable,
        waited_ns,
    }
}

fn main() {
    let mut out = "BENCH_prof.json".to_string();
    let mut smoke = false;
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            out = arg;
        }
    }
    let (mark_iters, pairs, blocks) = if smoke {
        (200_000u64, 4usize, 300usize)
    } else {
        (2_000_000, 24, 4000)
    };

    eprintln!("marker transitions: {mark_iters} iterations");
    let enabled_ns = marker_transition_ns(mark_iters, |i| {
        mark_always(Some(i % 8), Some(i % 4), Some(i % 3), Phase::Guard)
    });
    // No sampler is attached here, so the gated path is one relaxed
    // load and a not-taken branch — the cost every non-profiled run pays.
    let gated_ns = marker_transition_ns(mark_iters, |i| {
        mark(Some(i % 8), Some(i % 4), Some(i % 3), Phase::Guard)
    });
    eprintln!("enabled transition: {enabled_ns:.2} ns  (budget 20 ns)");
    eprintln!("gated (no reader):  {gated_ns:.2} ns");

    eprintln!("block throughput: {blocks} blocks/run, {pairs} off/on pairs, 3 rounds");
    let pool = Executor::new(4);
    // Three independent rounds; keep the one whose off/off control
    // pairs were quietest. A round where the control "regressed" by
    // several percent was measured through a host-noise episode and
    // says nothing about the sampler.
    let mut rounds: Vec<Overhead> = (0..3)
        .map(|_| sampler_overhead(pairs, blocks, &pool))
        .collect();
    pool.shutdown();
    for (i, r) in rounds.iter().enumerate() {
        eprintln!(
            "round {i}: off {:.0}/s on {:.0}/s regression {:+.2}% (noise floor {:+.2}%)",
            r.baseline, r.sampled, r.regression_pct, r.noise_floor_pct
        );
    }
    rounds.sort_by(|a, b| a.noise_floor_pct.abs().total_cmp(&b.noise_floor_pct.abs()));
    let ovh = rounds.remove(0);
    eprintln!(
        "regression:  {:.2}% (budget 5%, quietest round, noise floor {:+.2}%)",
        ovh.regression_pct, ovh.noise_floor_pct
    );

    let dump_path =
        std::env::temp_dir().join(format!("bench_prof_stall_{}.jsonl", std::process::id()));
    let wedge = wedge_smoke(&dump_path);
    let _ = std::fs::remove_file(&dump_path);
    eprintln!(
        "wedge smoke: {} stall event(s), dump {} lines, replayable={}",
        wedge.stall_events, wedge.dump_lines, wedge.dump_replayable
    );
    assert_eq!(
        wedge.stall_events, 1,
        "one wedge must emit exactly one Stall"
    );
    assert!(wedge.dump_lines > 0, "stall dump must not be empty");
    assert!(wedge.dump_replayable, "stall dump must replay");

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"prof\",\n",
            "  \"unix_time\": {unix_time},\n",
            "  \"effective_cores\": {cores},\n",
            "  \"smoke\": {smoke},\n",
            "  \"config\": {{\"mark_iters\": {mark_iters}, \"pairs\": {pairs}, ",
            "\"blocks_per_run\": {blocks}, \"sampler_hz\": 997, \"pool_workers\": 4}},\n",
            "  \"marker_transition\": {{\n",
            "    \"enabled_ns\": {enabled:.2},\n",
            "    \"gated_no_reader_ns\": {gated:.2},\n",
            "    \"budget_ns\": 20,\n",
            "    \"within_budget\": {mark_ok}\n",
            "  }},\n",
            "  \"sampler_throughput\": {{\n",
            "    \"baseline_blocks_per_sec\": {baseline:.1},\n",
            "    \"sampled_blocks_per_sec\": {sampled:.1},\n",
            "    \"regression_pct\": {regression:.2},\n",
            "    \"noise_floor_pct\": {noise:.2},\n",
            "    \"budget_pct\": 5.0,\n",
            "    \"within_budget\": {thr_ok}\n",
            "  }},\n",
            "  \"wedge_smoke\": {{\n",
            "    \"stall_events\": {stalls},\n",
            "    \"dump_lines\": {dump_lines},\n",
            "    \"dump_replayable\": {replayable},\n",
            "    \"stall_waited_ns\": {waited}\n",
            "  }},\n",
            "  \"note\": \"regression is the median of per-pair off/on ratios ",
            "(order alternated) from the quietest of three rounds, where ",
            "quietest means the smallest |noise_floor_pct| measured by ",
            "interleaved off/off control pairs; on a single-core container ",
            "the watcher thread time-slices against the workers, an upper ",
            "bound on multi-core hosts; the gated marker cost is what ",
            "non-profiled runs pay at every phase boundary\"\n",
            "}}\n",
        ),
        unix_time = unix_time,
        cores = cores,
        smoke = smoke,
        mark_iters = mark_iters,
        pairs = pairs,
        blocks = blocks,
        enabled = enabled_ns,
        gated = gated_ns,
        mark_ok = enabled_ns <= 20.0,
        baseline = ovh.baseline,
        sampled = ovh.sampled,
        regression = ovh.regression_pct,
        noise = ovh.noise_floor_pct,
        thr_ok = ovh.regression_pct <= 5.0,
        stalls = wedge.stall_events,
        dump_lines = wedge.dump_lines,
        replayable = wedge.dump_replayable,
        waited = wedge.waited_ns,
    );
    std::fs::write(&out, &json).expect("write results file");
    println!("wrote {out}");
}
