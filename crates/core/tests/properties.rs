//! Property-based tests of the real-thread executor: committed-choice
//! semantics hold for arbitrary small alternative sets.

use std::time::Duration;

use proptest::prelude::*;
use worlds::{AltBlock, AltError, ElimMode, RunOutcome, Speculation};

#[derive(Debug, Clone)]
struct AltGen {
    sleep_ms: u8,
    guard: bool,
    value: u64,
}

fn arb_alt() -> impl Strategy<Value = AltGen> {
    (0u8..15, prop::bool::weighted(0.7), 1u64..1000).prop_map(|(sleep_ms, guard, value)| AltGen {
        sleep_ms,
        guard,
        value,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For any alternative set: a winner exists iff some guard passes;
    /// the committed cell holds exactly the winner's value; only the
    /// winner's output is observable.
    #[test]
    fn committed_choice_semantics(alts in proptest::collection::vec(arb_alt(), 1..4)) {
        let spec = Speculation::new();
        spec.setup(|c| c.put_u64("cell", 0)).unwrap();

        let mut block: AltBlock<u64> = AltBlock::new().elim(ElimMode::Sync);
        for (i, a) in alts.iter().enumerate() {
            let a = a.clone();
            block = block.alt(format!("alt{i}"), move |ctx| {
                if a.sleep_ms > 0 {
                    std::thread::sleep(Duration::from_millis(a.sleep_ms as u64));
                }
                ctx.checkpoint()?;
                if !a.guard {
                    return Err(AltError::GuardFailed("scripted".into()));
                }
                ctx.put_u64("cell", a.value)?;
                ctx.print(format!("winner says {}", a.value));
                Ok(a.value)
            });
        }
        let report = spec.run(block);

        let any_pass = alts.iter().any(|a| a.guard);
        match &report.outcome {
            RunOutcome::Winner { index, .. } => {
                prop_assert!(any_pass);
                prop_assert!(alts[*index].guard, "winner's guard must pass");
                let v = report.value.expect("winner has a value");
                prop_assert_eq!(v, alts[*index].value);
                // Committed state is the winner's write, exactly.
                prop_assert_eq!(spec.read(|c| c.get_u64("cell")), Some(v));
                // Exactly one line of output, and it is the winner's.
                let out = spec.tty().output_strings();
                prop_assert_eq!(out.len(), 1);
                prop_assert_eq!(out[0].clone(), format!("winner says {v}"));
            }
            RunOutcome::AllFailed => {
                prop_assert!(!any_pass, "a passing guard must produce a winner");
                prop_assert_eq!(spec.read(|c| c.get_u64("cell")), Some(0), "state untouched");
                prop_assert!(spec.tty().output_strings().is_empty());
            }
            RunOutcome::TimedOut => prop_assert!(false, "no timeout configured"),
        }

        // Resource hygiene: only the root world survives a sync block.
        prop_assert_eq!(spec.store().world_count(), 1);
    }

    /// Sequencing blocks preserves state: each block sees the previous
    /// block's committed value.
    #[test]
    fn blocks_compose_sequentially(values in proptest::collection::vec(1u64..100, 1..5)) {
        let spec = Speculation::new();
        spec.setup(|c| c.put_u64("acc", 0)).unwrap();
        let mut expect = 0u64;
        for v in values {
            expect += v;
            let r = spec.run(
                AltBlock::new()
                    .alt("add", move |ctx| {
                        let cur = ctx.get_u64("acc").unwrap();
                        ctx.put_u64("acc", cur + v)?;
                        Ok(cur + v)
                    })
                    .elim(ElimMode::Sync),
            );
            prop_assert_eq!(r.value, Some(expect));
        }
        prop_assert_eq!(spec.read(|c| c.get_u64("acc")), Some(expect));
    }
}
