//! # worlds-remote — the distributed case (§2.2, §3.4)
//!
//! The paper's mechanism extends across machines: "In the distributed case
//! we must actually copy state for a remote child so that the child can
//! read or write locally" (§3.1), and §3.4 reports the measured costs of
//! the Smith & Ioannidis `rfork()` — ≈ 1 s to checkpoint and ship a 70 KB
//! process over a 1989 LAN, ≈ 1.3 s observed end to end, with commits
//! copying changed pages back.
//!
//! This crate builds that substrate over the repository's own pieces:
//!
//! * a [`Cluster`] of [`Node`]s, each owning an independent page store
//!   (its "physical memory");
//! * [`Cluster::rfork`] — remote fork by **checkpoint/restore**
//!   (`worlds_pagestore::checkpoint`), exactly the paper's construction
//!   ("the state of the process was dumped into a file ... a
//!   bootstrapping routine restores \[it\]");
//! * a [`NetModel`] charging latency + size/bandwidth for every transfer,
//!   in virtual time — calibrated so the paper's 70 KB process costs ≈ 1 s
//!   to ship on the `lan_1989` preset;
//! * [`run_distributed_block`] — a whole alternative block executed
//!   remotely: rfork each alternative to its own node, run, ship the
//!   winner's **dirty pages only** back (the COW dirty set is exactly
//!   what must move), commit into the origin world.
//!
//! Everything is deterministic virtual time; the state motion is real
//! (bytes actually travel between stores through checkpoint images).

mod cluster;
mod net;
mod run;
mod transport;

pub use cluster::{Cluster, Node, NodeId, RemoteWorld};
pub use net::NetModel;
pub use run::{run_distributed_block, DistAlt, DistOutcome, DistReport};
pub use transport::{InProcess, Tcp, Transport};
pub use worlds_net::{FaultKind, FaultSchedule};
