//! `bench-server` — the multi-tenant front door under a session storm.
//!
//! One `FrontDoor` on loopback TCP; `conns` client threads each drive
//! `sessions_per_conn` server-side sessions through a single framed
//! connection, so a thousand tenants cost a thousand sessions but only
//! a few dozen sockets — the shape a real service front door sees.
//!
//! The run has three claims to defend, each asserted inline:
//!
//! * **Scale** — all sessions are opened before any speculates; the
//!   sampled peak must reach the configured target (≥1000 sessions
//!   concurrently admitted in the full run).
//! * **Exactly-one-commit** — every session spawns `alts` speculative
//!   worlds and commits exactly one; a follow-up commit of a sibling
//!   must be refused (the siblings were reaped at commit), and the
//!   door's lifetime commit counter must equal the session count.
//! * **Isolation** — one tenant opens with `max_live_worlds = 2` and
//!   tries to fan out past it. Its extra spawns must be refused with
//!   `limit_exceeded` while every well-behaved tenant still lands its
//!   commit (the refusals cost nobody else anything).
//!
//! Fairness is reported as the spread of per-session cycle times
//! (spawn-all/commit-one/verify) across tenants: p95/p50 under the
//! deficit round-robin release. Results land in `BENCH_server.json`
//! (or the path given as the first non-flag argument); `--smoke`
//! shrinks every knob for CI.
//!
//! ```text
//! cargo run --release -p worlds-bench --bin bench-server [out.json] [--smoke]
//! ```

use std::sync::{Arc, Barrier, Mutex};
use std::time::Instant;

use worlds_net::{nack, Conn, Request, RetryPolicy};
use worlds_obs::Registry;
use worlds_pagestore::PageStore;
use worlds_server::{FrontDoor, ServerPolicy};

/// One tenant's phase-2 round: fan out `alts` worlds, commit one,
/// prove the siblings are gone. Returns (cycle seconds, stale nacks).
fn session_round(conn: &mut Conn, session: u64, alts: usize, spin_ns: u64) -> (f64, u64) {
    let t0 = Instant::now();
    let mut worlds = Vec::with_capacity(alts);
    for alt in 0..alts {
        let w = conn
            .call_ack(&Request::SessionSpawn {
                session,
                spin_ns,
                writes: vec![(alt as u64, vec![alt as u8; 64])],
            })
            .expect("spawn within limits");
        worlds.push(w);
    }
    let chosen = worlds[alts / 2];
    conn.call_ack(&Request::SessionCommit {
        session,
        world: chosen,
    })
    .expect("exactly one commit per round");
    // Siblings were reaped at commit: committing one must be refused.
    let stale = worlds[0];
    let err = conn
        .call_ack(&Request::SessionCommit {
            session,
            world: stale,
        })
        .expect_err("second commit must be refused");
    assert_eq!(
        err.nack_code(),
        Some(nack::NO_SUCH_WORLD),
        "stale commit refused with no_such_world, got {err}"
    );
    (t0.elapsed().as_secs_f64(), 1)
}

/// The over-limit tenant: admitted with `max_live_worlds = 2`, then
/// fans out `attempts` spawns without committing. Returns how many
/// were refused `limit_exceeded`.
fn overlimit_tenant(addr: std::net::SocketAddr, attempts: usize) -> u64 {
    let mut conn = Conn::new(0, addr, RetryPolicy::default(), Registry::disabled());
    let session = conn
        .call_ack(&Request::SessionOpen {
            name: "hog/overlimit".into(),
            max_live_worlds: 2,
            max_resident_frames: 0,
            vt_budget_ns: 0,
        })
        .expect("over-limit tenant is admitted; only its spawns are capped");
    let mut refused = 0u64;
    for i in 0..attempts {
        match conn.call_ack(&Request::SessionSpawn {
            session,
            spin_ns: 1_000,
            writes: vec![(i as u64, vec![0xEE; 64])],
        }) {
            Ok(_) => {}
            Err(e) => {
                assert_eq!(
                    e.nack_code(),
                    Some(nack::LIMIT_EXCEEDED),
                    "over-limit refusal must be limit_exceeded, got {e}"
                );
                refused += 1;
            }
        }
    }
    conn.call_ack(&Request::SessionClose {
        session,
        adopt: false,
    })
    .expect("over-limit tenant still closes cleanly");
    refused
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let mut out = "BENCH_server.json".to_string();
    let mut smoke = false;
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            out = arg;
        }
    }
    let (conns, per_conn, alts, spin_ns) = if smoke {
        (8usize, 8usize, 3usize, 5_000u64)
    } else {
        (32usize, 32usize, 3usize, 20_000u64)
    };
    let sessions = conns * per_conn;
    let target_peak = if smoke { sessions } else { 1000 };

    let door = FrontDoor::serve(
        1,
        PageStore::new(4096),
        Registry::disabled(),
        ServerPolicy {
            max_sessions: sessions + 16,
            ..ServerPolicy::default()
        },
    )
    .expect("bind front door");
    let addr = door.addr();
    let mgr = door.manager().clone();

    eprintln!("front door on {addr}: {conns} conns x {per_conn} sessions = {sessions} tenants");

    // Barrier A: every session open. Barrier B: peak sampled, go.
    let opened = Arc::new(Barrier::new(conns + 1));
    let sampled = Arc::new(Barrier::new(conns + 1));
    let cycles: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::with_capacity(sessions)));
    let t0 = Instant::now();

    let workers: Vec<_> = (0..conns)
        .map(|c| {
            let opened = opened.clone();
            let sampled = sampled.clone();
            let cycles = cycles.clone();
            std::thread::spawn(move || {
                let mut conn = Conn::new(
                    c as u64 + 100,
                    addr,
                    RetryPolicy::default(),
                    Registry::disabled(),
                );
                let ids: Vec<u64> = (0..per_conn)
                    .map(|s| {
                        conn.call_ack(&Request::SessionOpen {
                            name: format!("tenant-{c}-{s}"),
                            max_live_worlds: 0,
                            max_resident_frames: 0,
                            vt_budget_ns: 0,
                        })
                        .expect("open within the session cap")
                    })
                    .collect();
                opened.wait();
                sampled.wait();
                let mut stale_nacks = 0u64;
                let mut times = Vec::with_capacity(per_conn);
                for &session in &ids {
                    let (secs, stale) = session_round(&mut conn, session, alts, spin_ns);
                    times.push(secs * 1e3);
                    stale_nacks += stale;
                }
                for &session in &ids {
                    conn.call_ack(&Request::SessionClose {
                        session,
                        adopt: false,
                    })
                    .expect("close");
                }
                cycles.lock().unwrap().extend(times);
                stale_nacks
            })
        })
        .collect();

    // Sample the peak while every tenant is admitted at once.
    opened.wait();
    let peak = mgr.session_count();
    eprintln!("peak concurrent sessions: {peak} (target >= {target_peak})");
    assert!(
        peak >= target_peak,
        "front door must sustain >= {target_peak} concurrent sessions, saw {peak}"
    );
    sampled.wait();

    // While the well-behaved tenants churn, one tenant tries to bust
    // its own contract.
    let overlimit_attempts = 6usize;
    let overlimit_refused = overlimit_tenant(addr, overlimit_attempts);
    eprintln!("over-limit tenant: {overlimit_refused}/{overlimit_attempts} spawns refused");
    assert!(
        overlimit_refused >= (overlimit_attempts as u64).saturating_sub(2),
        "spawns past max_live_worlds=2 must be refused"
    );

    let stale_nacks: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
    let elapsed = t0.elapsed().as_secs_f64();
    let totals = mgr.totals();
    mgr.quiesce();
    mgr.store()
        .verify_refcounts()
        .expect("store refcounts clean");
    assert_eq!(mgr.session_count(), 0, "every session closed");
    assert_eq!(
        totals.committed, sessions as u64,
        "exactly one commit per tenant session"
    );
    assert_eq!(
        stale_nacks, sessions as u64,
        "every stale sibling commit refused"
    );

    let mut cycle_ms = Arc::try_unwrap(cycles).unwrap().into_inner().unwrap();
    cycle_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let p50 = percentile(&cycle_ms, 0.50);
    let p95 = percentile(&cycle_ms, 0.95);
    let worst = cycle_ms.last().copied().unwrap_or(0.0);
    let spread = if p50 > 0.0 { p95 / p50 } else { 0.0 };
    let spawns = totals.committed * alts as u64 + 2; // +2: the hog's admitted pair
    let cycles_per_sec = sessions as f64 / elapsed;
    eprintln!(
        "{sessions} session cycles in {elapsed:.2}s ({cycles_per_sec:.0}/s); \
         cycle p50 {p50:.2} ms, p95 {p95:.2} ms, spread {spread:.2}"
    );
    eprintln!(
        "admission: {} limit refusals, {} overload refusals",
        totals.rejected_limit, totals.rejected_overloaded
    );

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"server\",\n",
            "  \"unix_time\": {unix_time},\n",
            "  \"effective_cores\": {cores},\n",
            "  \"smoke\": {smoke},\n",
            "  \"config\": {{\"conns\": {conns}, \"sessions_per_conn\": {per_conn}, ",
            "\"alts_per_session\": {alts}, \"spin_ns\": {spin_ns}}},\n",
            "  \"concurrency\": {{\n",
            "    \"peak_sessions\": {peak},\n",
            "    \"target\": {target_peak}\n",
            "  }},\n",
            "  \"throughput\": {{\n",
            "    \"session_cycles_per_sec\": {cycles_per_sec:.1},\n",
            "    \"spawns_total\": {spawns},\n",
            "    \"elapsed_secs\": {elapsed:.3}\n",
            "  }},\n",
            "  \"commits\": {{\n",
            "    \"committed\": {committed},\n",
            "    \"stale_commit_nacks\": {stale_nacks}\n",
            "  }},\n",
            "  \"admission\": {{\n",
            "    \"rejected_limit\": {rejected_limit},\n",
            "    \"rejected_overloaded\": {rejected_overloaded},\n",
            "    \"overlimit_attempts\": {overlimit_attempts},\n",
            "    \"overlimit_refused\": {overlimit_refused}\n",
            "  }},\n",
            "  \"fairness\": {{\n",
            "    \"cycle_ms_p50\": {p50:.3},\n",
            "    \"cycle_ms_p95\": {p95:.3},\n",
            "    \"cycle_ms_max\": {worst:.3},\n",
            "    \"spread_p95_over_p50\": {spread:.3}\n",
            "  }},\n",
            "  \"note\": \"each session fans out alts worlds, commits exactly ",
            "one (sibling commit then refused no_such_world); the over-limit ",
            "tenant's refusals are limit_exceeded and cost other tenants ",
            "nothing; spread is per-session cycle p95/p50 under deficit ",
            "round-robin release\"\n",
            "}}\n",
        ),
        unix_time = unix_time,
        cores = cores,
        smoke = smoke,
        conns = conns,
        per_conn = per_conn,
        alts = alts,
        spin_ns = spin_ns,
        peak = peak,
        target_peak = target_peak,
        cycles_per_sec = cycles_per_sec,
        spawns = spawns,
        elapsed = elapsed,
        committed = totals.committed,
        stale_nacks = stale_nacks,
        rejected_limit = totals.rejected_limit,
        rejected_overloaded = totals.rejected_overloaded,
        overlimit_attempts = overlimit_attempts,
        overlimit_refused = overlimit_refused,
        p50 = p50,
        p95 = p95,
        worst = worst,
        spread = spread,
    );
    std::fs::write(&out, &json).expect("write results file");
    door.shutdown();
    println!("wrote {out}");
}
