//! Workload specifications: alternatives as cost scripts.
//!
//! The simulator runs *specifications* of alternatives rather than live
//! closures: a [`Segment`] list describing how much CPU an alternative
//! burns, which pages it dirties, and whether its guard holds. This is what
//! lets the figure benches dial in exact `Rμ`/`Ro` values, and it mirrors
//! how the paper's analysis treats alternatives — as opaque computations
//! with a time `τ(Cᵢ, λ)` and a footprint.

use crate::time::VirtualTime;

/// One step of an alternative's execution.
#[derive(Debug, Clone, PartialEq)]
pub enum Segment {
    /// Burn CPU for the given virtual duration.
    Compute(VirtualTime),
    /// Dirty `n` (further) distinct pages of the inherited address space.
    /// First touches take COW faults, charged at the machine's page-copy
    /// cost; re-touches are free (the page is already private).
    WritePages(u64),
    /// Read `n` pages (never faults; reads share frames).
    ReadPages(u64),
    /// Send a message of the given payload size to an external observer
    /// process; costs the machine's per-message time.
    SendMessage {
        /// Payload size in bytes (recorded, not charged beyond the fixed
        /// per-message cost).
        bytes: u64,
    },
}

/// Where guard conditions are evaluated (§2.2: "the GUARDs can be executed
/// serially before spawning the alternatives ...; in the child process; at
/// the synchronization point; or at any combination of these places, for
/// redundancy").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GuardPlacement {
    /// Guards run serially in the parent before `alt_spawn`; failing
    /// alternatives are never spawned. Improves throughput at the expense
    /// of response time.
    PreSpawn,
    /// Each child evaluates its own guard first thing; failing children
    /// abort early (the default).
    #[default]
    InChild,
    /// Guards are checked only at the synchronization point: failing
    /// children run to completion, then cannot win.
    AtSync,
}

/// How losing siblings are eliminated (§2.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ElimMode {
    /// The parent resumes only after every sibling is terminated.
    Sync,
    /// Deletion "occurs at some time after the alt_wait() resumes in the
    /// parent" — measured by the paper to give better execution-time
    /// performance (the default).
    #[default]
    Async,
}

/// One alternative method.
#[derive(Debug, Clone, PartialEq)]
pub struct AltSpec {
    /// Label for reports.
    pub label: String,
    /// Execution script.
    pub segments: Vec<Segment>,
    /// Whether this alternative's guard condition holds.
    pub guard_pass: bool,
    /// CPU cost of evaluating the guard (charged where the block's
    /// [`GuardPlacement`] says).
    pub guard_cost: VirtualTime,
}

impl AltSpec {
    /// A new alternative with an empty script and a passing, free guard.
    pub fn new(label: impl Into<String>) -> Self {
        AltSpec {
            label: label.into(),
            segments: Vec::new(),
            guard_pass: true,
            guard_cost: VirtualTime::ZERO,
        }
    }

    /// Append a compute segment (builder).
    pub fn compute(mut self, t: VirtualTime) -> Self {
        self.segments.push(Segment::Compute(t));
        self
    }

    /// Append a compute segment in milliseconds (builder).
    pub fn compute_ms(self, ms: f64) -> Self {
        self.compute(VirtualTime::from_ms(ms))
    }

    /// Append a page-dirtying segment (builder).
    pub fn write_pages(mut self, n: u64) -> Self {
        self.segments.push(Segment::WritePages(n));
        self
    }

    /// Append a page-reading segment (builder).
    pub fn read_pages(mut self, n: u64) -> Self {
        self.segments.push(Segment::ReadPages(n));
        self
    }

    /// Append a message send (builder).
    pub fn send_message(mut self, bytes: u64) -> Self {
        self.segments.push(Segment::SendMessage { bytes });
        self
    }

    /// Set the guard outcome (builder).
    pub fn guard(mut self, pass: bool) -> Self {
        self.guard_pass = pass;
        self
    }

    /// Set the guard evaluation cost (builder).
    pub fn guard_cost(mut self, t: VirtualTime) -> Self {
        self.guard_cost = t;
        self
    }

    /// Total pages this script dirties.
    pub fn total_pages_written(&self) -> u64 {
        self.segments
            .iter()
            .map(|s| match s {
                Segment::WritePages(n) => *n,
                _ => 0,
            })
            .sum()
    }

    /// Total raw compute time in the script (excluding page-copy and guard
    /// charges).
    pub fn total_compute(&self) -> VirtualTime {
        self.segments
            .iter()
            .map(|s| match s {
                Segment::Compute(t) => *t,
                _ => VirtualTime::ZERO,
            })
            .fold(VirtualTime::ZERO, |a, b| a + b)
    }
}

/// A full alternative block: the unit `alt_spawn`/`alt_wait` executes.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockSpec {
    /// The alternatives (at least one).
    pub alts: Vec<AltSpec>,
    /// Pages of shared state the parent owns before spawning; children
    /// inherit all of them COW.
    pub shared_pages: u64,
    /// `alt_wait` TIMEOUT in the parent; `None` waits forever.
    pub timeout: Option<VirtualTime>,
    /// Guard evaluation placement.
    pub guard_placement: GuardPlacement,
    /// Sibling elimination mode.
    pub elim: ElimMode,
}

impl BlockSpec {
    /// A block over `alts` with paper-flavoured defaults: a 320 KB shared
    /// address space (the §3.4 measurement configuration), no timeout,
    /// in-child guards, asynchronous elimination.
    pub fn new(alts: Vec<AltSpec>) -> Self {
        assert!(
            !alts.is_empty(),
            "an alternative block needs at least one alternative"
        );
        BlockSpec {
            alts,
            shared_pages: 160, // 320 KB at 2 KiB pages
            timeout: None,
            guard_placement: GuardPlacement::default(),
            elim: ElimMode::default(),
        }
    }

    /// Set the shared address-space size in pages (builder).
    pub fn shared_pages(mut self, pages: u64) -> Self {
        self.shared_pages = pages;
        self
    }

    /// Set the parent's `alt_wait` timeout (builder).
    pub fn timeout(mut self, t: VirtualTime) -> Self {
        self.timeout = Some(t);
        self
    }

    /// Set guard placement (builder).
    pub fn guard_placement(mut self, p: GuardPlacement) -> Self {
        self.guard_placement = p;
        self
    }

    /// Set elimination mode (builder).
    pub fn elim(mut self, e: ElimMode) -> Self {
        self.elim = e;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let alt = AltSpec::new("a")
            .compute_ms(5.0)
            .write_pages(3)
            .read_pages(2)
            .send_message(100)
            .guard(false)
            .guard_cost(VirtualTime::from_ms(1.0));
        assert_eq!(alt.segments.len(), 4);
        assert!(!alt.guard_pass);
        assert_eq!(alt.total_pages_written(), 3);
        assert_eq!(alt.total_compute().as_ms(), 5.0);
    }

    #[test]
    fn block_defaults() {
        let b = BlockSpec::new(vec![AltSpec::new("x")]);
        assert_eq!(b.shared_pages, 160);
        assert_eq!(b.timeout, None);
        assert_eq!(b.guard_placement, GuardPlacement::InChild);
        assert_eq!(b.elim, ElimMode::Async);
    }

    #[test]
    #[should_panic(expected = "at least one alternative")]
    fn empty_block_rejected() {
        let _ = BlockSpec::new(vec![]);
    }

    #[test]
    fn block_builders() {
        let b = BlockSpec::new(vec![AltSpec::new("x")])
            .shared_pages(99)
            .timeout(VirtualTime::from_secs(2.0))
            .guard_placement(GuardPlacement::AtSync)
            .elim(ElimMode::Sync);
        assert_eq!(b.shared_pages, 99);
        assert_eq!(b.timeout.unwrap().as_secs(), 2.0);
        assert_eq!(b.guard_placement, GuardPlacement::AtSync);
        assert_eq!(b.elim, ElimMode::Sync);
    }

    #[test]
    fn totals_over_multiple_segments() {
        let alt = AltSpec::new("a")
            .compute_ms(1.0)
            .write_pages(2)
            .compute_ms(3.0)
            .write_pages(5);
        assert_eq!(alt.total_pages_written(), 7);
        assert_eq!(alt.total_compute().as_ms(), 4.0);
    }
}
