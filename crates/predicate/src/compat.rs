//! The four-way outcome of the §2.4.2 message-acceptance rule.

use crate::set::PredicateSet;

/// What a receiver must do with a message, given its predicate set `R` and
/// the message's sending predicate `S`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Compat {
    /// `S ⊆ R`: "the message is immediately accepted" — deliver, no change
    /// to the receiver.
    Accept,
    /// The receiver already assumed `complete(sender)`, so it cannot reject;
    /// it accepts and adopts the sender's (new-to-it) assumptions wholesale.
    /// Carries the receiver's extended predicate set.
    AcceptExtend(PredicateSet),
    /// `∃p: p ∈ S ∧ ¬p ∈ R`: "the message is ignored".
    Ignore,
    /// New assumptions are required: "two copies of the receiver are
    /// created" — `with` accepts the message (conjoining `complete(sender)`,
    /// which implies all the sender's predicates); `without` rejects it
    /// (conjoining only `¬complete(sender)`, avoiding the logical
    /// impossibility of negating every sender predicate).
    Split {
        /// Predicate set for the copy that accepts the message.
        with: PredicateSet,
        /// Predicate set for the copy that does not.
        without: PredicateSet,
    },
}

impl Compat {
    /// Does this outcome deliver the message to (at least one copy of) the
    /// receiver?
    pub fn delivers(&self) -> bool {
        !matches!(self, Compat::Ignore)
    }

    /// Does this outcome create a second receiver world?
    pub fn splits(&self) -> bool {
        matches!(self, Compat::Split { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_classification() {
        assert!(Compat::Accept.delivers());
        assert!(Compat::AcceptExtend(PredicateSet::empty()).delivers());
        assert!(!Compat::Ignore.delivers());
        let split = Compat::Split {
            with: PredicateSet::empty(),
            without: PredicateSet::empty(),
        };
        assert!(split.delivers());
        assert!(split.splits());
        assert!(!Compat::Accept.splits());
    }
}
