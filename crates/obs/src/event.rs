//! The speculation lifecycle as a flat event stream.
//!
//! Every observable moment in a world's life — spawn, guard verdict,
//! rendezvous, commit, elimination, CoW fault, checkpoint, predicated
//! message routing, remote RPC — becomes one [`Event`]: a kind plus the
//! world it happened to, that world's parent, and both clocks (virtual
//! simulation time and wall time since the registry was created).
//!
//! Events serialise to one flat JSON object per line (JSONL). The codec
//! is hand-rolled: the schema is flat (string/number/bool/null values
//! only), so a full JSON parser buys nothing.

use std::fmt;

/// What happened. Payload fields are the quantities a report needs —
/// page numbers, byte counts, overhead durations — all plain integers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A speculative world was forked to run alternative `alt`.
    Spawn { alt: u64 },
    /// A world's guard predicate was evaluated. `duration_ns` is how long
    /// the evaluation took (virtual ns in the simulator, wall ns in the
    /// thread executor; 0 when the emitter cannot time it), so the trace
    /// layer can render guard work as a real sub-span, not an instant.
    /// `alt` is the alternative index the verdict belongs to, when the
    /// emitter knows it — in particular pre-spawn rejections carry the
    /// parent world plus `alt`, which is the only way to tell skipped
    /// alternatives apart in a trace (`None` on old captures).
    /// `site` is the registered call-site id of the speculation block the
    /// verdict belongs to ([`crate::site_id`]), `None` when the block was
    /// not labelled (and on old captures).
    GuardVerdict {
        pass: bool,
        duration_ns: u64,
        alt: Option<u64>,
        site: Option<u64>,
    },
    /// A finished world reached the rendezvous point.
    Rendezvous,
    /// The winning world was committed into its parent. `site` as on
    /// [`EventKind::GuardVerdict`].
    Commit {
        dirty_pages: u64,
        overhead_ns: u64,
        site: Option<u64>,
    },
    /// A losing sibling was eliminated synchronously (parent waits).
    /// `site` as on [`EventKind::GuardVerdict`].
    EliminateSync { overhead_ns: u64, site: Option<u64> },
    /// A losing sibling was queued for background elimination.
    EliminateAsync,
    /// A world ran past its deadline and was aborted.
    Timeout,
    /// A write fault copied a shared page (copy-on-write).
    CowCopy { vpn: u64, bytes: u64 },
    /// A write fault materialised a fresh zero page.
    ZeroFill { vpn: u64 },
    /// `frames` physical frames lost their last reference and were freed
    /// (world drop, adopt replacing the parent's map, or a COW fault racing
    /// a sibling drop). Emitting this keeps `frames_resident` pure event
    /// arithmetic, so JSONL replay reconstructs the gauge exactly.
    FrameFree { frames: u64 },
    /// A commit found its result byte-identical to an already-sealed frame
    /// and re-shared that frame instead of installing the copy — the
    /// content-addressed dedupe path. `bytes` is the page size the hit
    /// avoided materialising. Dedupe commits emit this **instead of**
    /// [`EventKind::CowCopy`]/[`EventKind::ZeroFill`], so the
    /// `frames_resident` gauge stays pure event arithmetic.
    FrameDedup { vpn: u64, bytes: u64 },
    /// An in-place write retracted a sealed frame's content-index entry
    /// (the first mutation after a seal). Downstream dedupe probes skip
    /// this frame until it is resealed.
    PageHashSkip { vpn: u64 },
    /// The remote-fork replica/base cache evicted `bytes` of pinned base
    /// state for node `node` to stay inside its byte budget.
    NetCacheEvict { node: u64, bytes: u64 },
    /// A world's pages were serialised to a checkpoint image.
    Checkpoint {
        pages: u64,
        bytes: u64,
        duration_ns: u64,
    },
    /// A predicated message matched the receiver's predicate set.
    MsgAccept,
    /// A message was accepted by extending the receiver's predicate set.
    MsgExtend,
    /// A message fell outside the receiver's predicate set.
    MsgIgnore,
    /// A message forced the receiver to split into two worlds.
    MsgSplit,
    /// The accepting copy created by a message-induced split. `world` is
    /// the fresh copy, `parent` the receiver world it was forked from —
    /// the causal edge that keeps split copies out of the orphan-root
    /// bucket in the span tree.
    SplitSpawn,
    /// A world restored on node `node` by a remote fork. `world` is the
    /// restored world, `parent` the origin world whose checkpoint it was
    /// built from — the cross-node causal edge.
    RemoteFork { node: u64 },
    /// A remote fork/commit RPC left for node `node`.
    RpcSend {
        node: u64,
        bytes: u64,
        latency_ns: u64,
    },
    /// An RPC attempt was re-sent after a timeout.
    RpcRetry { node: u64, attempt: u64 },
    /// An RPC attempt timed out after `waited_ns`.
    RpcTimeout { node: u64, waited_ns: u64 },
    /// A request frame left on the wire toward `node` (`bytes` is the
    /// full framed size, header and checksum included).
    NetSend { node: u64, bytes: u64 },
    /// A reply frame arrived from `node`; `rtt_ns` is the request→reply
    /// round trip as the sender measured it.
    NetRecv { node: u64, bytes: u64, rtt_ns: u64 },
    /// A request to `node` was re-sent (attempt `attempt`, 1-based) after
    /// backing off `backoff_ns`.
    NetRetry {
        node: u64,
        attempt: u64,
        backoff_ns: u64,
    },
    /// A request to `node` missed its deadline after `waited_ns`.
    NetTimeout { node: u64, waited_ns: u64 },
    /// `node` refused a request with nack code `code` (a *successful*
    /// transport outcome, so neither retry nor timeout records it) —
    /// admission rejections and limit refusals surface here.
    NetNack { node: u64, code: u64 },
    /// Profiler flush: `samples` sampler hits attributed to this world
    /// at call-site `site`, alternative `alt`, and marker phase `phase`
    /// (see `worlds-prof`) since the previous flush. Each hit stands
    /// for ≈`period_ns` of on-CPU time, so `samples * period_ns`
    /// estimates the on-CPU nanoseconds this tuple burned.
    CpuSamples {
        samples: u64,
        period_ns: u64,
        site: Option<u64>,
        alt: Option<u64>,
        phase: u64,
    },
    /// Profiler flush: worker `worker` was on-CPU for `busy` of `total`
    /// sampler ticks since the previous flush — the per-worker
    /// utilization counter track. `world` is meaningless here (0).
    WorkerUtil { worker: u64, busy: u64, total: u64 },
    /// Watchdog: a worker's marker has not advanced for `waited_ns`,
    /// past its deadline — the thread is wedged in `phase` on this
    /// world (at `site`, when known).
    Stall {
        site: Option<u64>,
        phase: u64,
        waited_ns: u64,
    },
    /// Capture metadata, emitted once at the head of a stream (and at
    /// the head of every flight-recorder dump): how many CPU cores the
    /// recording process could actually use. Replay tooling keys its
    /// 1-CPU caveat banner off this; [`crate::RunStats::absorb`] ignores
    /// it entirely, so old and new captures aggregate identically.
    Meta { effective_cores: u64 },
    /// The human label behind an interned site id, emitted once per
    /// site per registry the first time a labelled block runs (and for
    /// every known site at the head of a flight dump). Site ids are
    /// process-local ([`crate::site_id`]), so without this line a
    /// capture replayed in another process can only render `site#N`;
    /// parsing one teaches the replayer's table the original label.
    /// `world` is meaningless here (0).
    SiteLabel { site: u64, label: String },
}

impl EventKind {
    /// The call-site id this event is attributed to, for the kinds
    /// that carry one.
    pub fn site(&self) -> Option<u64> {
        match self {
            EventKind::GuardVerdict { site, .. }
            | EventKind::Commit { site, .. }
            | EventKind::EliminateSync { site, .. }
            | EventKind::CpuSamples { site, .. }
            | EventKind::Stall { site, .. } => *site,
            EventKind::SiteLabel { site, .. } => Some(*site),
            _ => None,
        }
    }

    /// Stable wire name (the JSONL `ev` field).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Spawn { .. } => "spawn",
            EventKind::GuardVerdict { .. } => "guard",
            EventKind::Rendezvous => "rendezvous",
            EventKind::Commit { .. } => "commit",
            EventKind::EliminateSync { .. } => "elim_sync",
            EventKind::EliminateAsync => "elim_async",
            EventKind::Timeout => "timeout",
            EventKind::CowCopy { .. } => "cow_copy",
            EventKind::ZeroFill { .. } => "zero_fill",
            EventKind::FrameFree { .. } => "frame_free",
            EventKind::FrameDedup { .. } => "frame_dedup",
            EventKind::PageHashSkip { .. } => "page_hash_skip",
            EventKind::NetCacheEvict { .. } => "net_cache_evict",
            EventKind::Checkpoint { .. } => "checkpoint",
            EventKind::MsgAccept => "msg_accept",
            EventKind::MsgExtend => "msg_extend",
            EventKind::MsgIgnore => "msg_ignore",
            EventKind::MsgSplit => "msg_split",
            EventKind::SplitSpawn => "split_spawn",
            EventKind::RemoteFork { .. } => "rfork",
            EventKind::RpcSend { .. } => "rpc_send",
            EventKind::RpcRetry { .. } => "rpc_retry",
            EventKind::RpcTimeout { .. } => "rpc_timeout",
            EventKind::NetSend { .. } => "net_send",
            EventKind::NetRecv { .. } => "net_recv",
            EventKind::NetRetry { .. } => "net_retry",
            EventKind::NetTimeout { .. } => "net_timeout",
            EventKind::NetNack { .. } => "net_nack",
            EventKind::CpuSamples { .. } => "cpu",
            EventKind::WorkerUtil { .. } => "wutil",
            EventKind::Stall { .. } => "stall",
            EventKind::Meta { .. } => "meta",
            EventKind::SiteLabel { .. } => "site_label",
        }
    }
}

/// One observed moment: kind + world lineage + both clocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// What happened.
    pub kind: EventKind,
    /// The world it happened to.
    pub world: u64,
    /// That world's parent, if it has one.
    pub parent: Option<u64>,
    /// Virtual (simulated) time in nanoseconds.
    pub vt_ns: u64,
    /// Wall-clock nanoseconds since the registry's epoch (stamped by the
    /// registry at emit time; 0 until then).
    pub wall_ns: u64,
}

impl Event {
    /// An event with `wall_ns` unset (the registry stamps it).
    pub fn new(kind: EventKind, world: u64, parent: Option<u64>, vt_ns: u64) -> Event {
        Event {
            kind,
            world,
            parent,
            vt_ns,
            wall_ns: 0,
        }
    }

    /// One flat JSON object, no trailing newline.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        s.push_str("{\"ev\":\"");
        s.push_str(self.kind.name());
        s.push_str("\",\"world\":");
        push_u64(&mut s, self.world);
        s.push_str(",\"parent\":");
        match self.parent {
            Some(p) => push_u64(&mut s, p),
            None => s.push_str("null"),
        }
        s.push_str(",\"vt\":");
        push_u64(&mut s, self.vt_ns);
        s.push_str(",\"wt\":");
        push_u64(&mut s, self.wall_ns);
        match &self.kind {
            EventKind::Spawn { alt } => push_field(&mut s, "alt", *alt),
            EventKind::GuardVerdict {
                pass,
                duration_ns,
                alt,
                site,
            } => {
                s.push_str(",\"pass\":");
                s.push_str(if *pass { "true" } else { "false" });
                push_field(&mut s, "dur", *duration_ns);
                if let Some(alt) = alt {
                    push_field(&mut s, "alt", *alt);
                }
                if let Some(site) = site {
                    push_field(&mut s, "site", *site);
                }
            }
            EventKind::Commit {
                dirty_pages,
                overhead_ns,
                site,
            } => {
                push_field(&mut s, "dirty", *dirty_pages);
                push_field(&mut s, "overhead", *overhead_ns);
                if let Some(site) = site {
                    push_field(&mut s, "site", *site);
                }
            }
            EventKind::EliminateSync { overhead_ns, site } => {
                push_field(&mut s, "overhead", *overhead_ns);
                if let Some(site) = site {
                    push_field(&mut s, "site", *site);
                }
            }
            EventKind::CowCopy { vpn, bytes } => {
                push_field(&mut s, "vpn", *vpn);
                push_field(&mut s, "bytes", *bytes);
            }
            EventKind::ZeroFill { vpn } => push_field(&mut s, "vpn", *vpn),
            EventKind::FrameFree { frames } => push_field(&mut s, "frames", *frames),
            EventKind::FrameDedup { vpn, bytes } => {
                push_field(&mut s, "vpn", *vpn);
                push_field(&mut s, "bytes", *bytes);
            }
            EventKind::PageHashSkip { vpn } => push_field(&mut s, "vpn", *vpn),
            EventKind::NetCacheEvict { node, bytes } => {
                push_field(&mut s, "node", *node);
                push_field(&mut s, "bytes", *bytes);
            }
            EventKind::Checkpoint {
                pages,
                bytes,
                duration_ns,
            } => {
                push_field(&mut s, "pages", *pages);
                push_field(&mut s, "bytes", *bytes);
                push_field(&mut s, "dur", *duration_ns);
            }
            EventKind::RemoteFork { node } => push_field(&mut s, "node", *node),
            EventKind::RpcSend {
                node,
                bytes,
                latency_ns,
            } => {
                push_field(&mut s, "node", *node);
                push_field(&mut s, "bytes", *bytes);
                push_field(&mut s, "latency", *latency_ns);
            }
            EventKind::RpcRetry { node, attempt } => {
                push_field(&mut s, "node", *node);
                push_field(&mut s, "attempt", *attempt);
            }
            EventKind::RpcTimeout { node, waited_ns } => {
                push_field(&mut s, "node", *node);
                push_field(&mut s, "waited", *waited_ns);
            }
            EventKind::NetSend { node, bytes } => {
                push_field(&mut s, "node", *node);
                push_field(&mut s, "bytes", *bytes);
            }
            EventKind::NetRecv {
                node,
                bytes,
                rtt_ns,
            } => {
                push_field(&mut s, "node", *node);
                push_field(&mut s, "bytes", *bytes);
                push_field(&mut s, "rtt", *rtt_ns);
            }
            EventKind::NetRetry {
                node,
                attempt,
                backoff_ns,
            } => {
                push_field(&mut s, "node", *node);
                push_field(&mut s, "attempt", *attempt);
                push_field(&mut s, "backoff", *backoff_ns);
            }
            EventKind::NetTimeout { node, waited_ns } => {
                push_field(&mut s, "node", *node);
                push_field(&mut s, "waited", *waited_ns);
            }
            EventKind::NetNack { node, code } => {
                push_field(&mut s, "node", *node);
                push_field(&mut s, "code", *code);
            }
            EventKind::CpuSamples {
                samples,
                period_ns,
                site,
                alt,
                phase,
            } => {
                push_field(&mut s, "samples", *samples);
                push_field(&mut s, "period", *period_ns);
                if let Some(site) = site {
                    push_field(&mut s, "site", *site);
                }
                if let Some(alt) = alt {
                    push_field(&mut s, "alt", *alt);
                }
                push_field(&mut s, "phase", *phase);
            }
            EventKind::WorkerUtil {
                worker,
                busy,
                total,
            } => {
                push_field(&mut s, "worker", *worker);
                push_field(&mut s, "busy", *busy);
                push_field(&mut s, "total", *total);
            }
            EventKind::Stall {
                site,
                phase,
                waited_ns,
            } => {
                if let Some(site) = site {
                    push_field(&mut s, "site", *site);
                }
                push_field(&mut s, "phase", *phase);
                push_field(&mut s, "waited", *waited_ns);
            }
            EventKind::Meta { effective_cores } => push_field(&mut s, "cores", *effective_cores),
            EventKind::SiteLabel { site, label } => {
                push_field(&mut s, "site", *site);
                s.push_str(",\"label\":\"");
                // The flat codec rejects escapes, so characters that
                // would need them are flattened instead of quoted.
                for c in label.chars() {
                    s.push(if c == '"' || c == '\\' || c.is_control() {
                        '_'
                    } else {
                        c
                    });
                }
                s.push('"');
            }
            EventKind::Rendezvous
            | EventKind::EliminateAsync
            | EventKind::Timeout
            | EventKind::MsgAccept
            | EventKind::MsgExtend
            | EventKind::MsgIgnore
            | EventKind::MsgSplit
            | EventKind::SplitSpawn => {}
        }
        s.push('}');
        s
    }

    /// Parse one JSONL line produced by [`Event::to_json`].
    pub fn from_json(line: &str) -> Result<Event, ParseError> {
        let fields = parse_flat_object(line)?;
        let ev = fields.str_field("ev")?;
        let kind = match ev {
            "spawn" => EventKind::Spawn {
                alt: fields.u64_field("alt")?,
            },
            "guard" => EventKind::GuardVerdict {
                pass: fields.bool_field("pass")?,
                // Lenient: captures from before these fields existed
                // parse as zero-duration, unattributed verdicts.
                duration_ns: fields.opt_u64_field("dur")?.unwrap_or(0),
                alt: fields.opt_u64_field("alt")?,
                site: fields.opt_u64_field("site")?,
            },
            "rendezvous" => EventKind::Rendezvous,
            "commit" => EventKind::Commit {
                dirty_pages: fields.u64_field("dirty")?,
                overhead_ns: fields.u64_field("overhead")?,
                site: fields.opt_u64_field("site")?,
            },
            "elim_sync" => EventKind::EliminateSync {
                overhead_ns: fields.u64_field("overhead")?,
                site: fields.opt_u64_field("site")?,
            },
            "elim_async" => EventKind::EliminateAsync,
            "timeout" => EventKind::Timeout,
            "cow_copy" => EventKind::CowCopy {
                vpn: fields.u64_field("vpn")?,
                bytes: fields.u64_field("bytes")?,
            },
            "zero_fill" => EventKind::ZeroFill {
                vpn: fields.u64_field("vpn")?,
            },
            "frame_free" => EventKind::FrameFree {
                frames: fields.u64_field("frames")?,
            },
            "frame_dedup" => EventKind::FrameDedup {
                vpn: fields.u64_field("vpn")?,
                bytes: fields.u64_field("bytes")?,
            },
            "page_hash_skip" => EventKind::PageHashSkip {
                vpn: fields.u64_field("vpn")?,
            },
            "net_cache_evict" => EventKind::NetCacheEvict {
                node: fields.u64_field("node")?,
                bytes: fields.u64_field("bytes")?,
            },
            "checkpoint" => EventKind::Checkpoint {
                pages: fields.u64_field("pages")?,
                bytes: fields.u64_field("bytes")?,
                duration_ns: fields.u64_field("dur")?,
            },
            "msg_accept" => EventKind::MsgAccept,
            "msg_extend" => EventKind::MsgExtend,
            "msg_ignore" => EventKind::MsgIgnore,
            "msg_split" => EventKind::MsgSplit,
            "split_spawn" => EventKind::SplitSpawn,
            "rfork" => EventKind::RemoteFork {
                node: fields.u64_field("node")?,
            },
            "rpc_send" => EventKind::RpcSend {
                node: fields.u64_field("node")?,
                bytes: fields.u64_field("bytes")?,
                latency_ns: fields.u64_field("latency")?,
            },
            "rpc_retry" => EventKind::RpcRetry {
                node: fields.u64_field("node")?,
                attempt: fields.u64_field("attempt")?,
            },
            "rpc_timeout" => EventKind::RpcTimeout {
                node: fields.u64_field("node")?,
                waited_ns: fields.u64_field("waited")?,
            },
            "net_send" => EventKind::NetSend {
                node: fields.u64_field("node")?,
                bytes: fields.u64_field("bytes")?,
            },
            "net_recv" => EventKind::NetRecv {
                node: fields.u64_field("node")?,
                bytes: fields.u64_field("bytes")?,
                rtt_ns: fields.u64_field("rtt")?,
            },
            "net_retry" => EventKind::NetRetry {
                node: fields.u64_field("node")?,
                attempt: fields.u64_field("attempt")?,
                backoff_ns: fields.u64_field("backoff")?,
            },
            "net_timeout" => EventKind::NetTimeout {
                node: fields.u64_field("node")?,
                waited_ns: fields.u64_field("waited")?,
            },
            "net_nack" => EventKind::NetNack {
                node: fields.u64_field("node")?,
                code: fields.u64_field("code")?,
            },
            "cpu" => EventKind::CpuSamples {
                samples: fields.u64_field("samples")?,
                period_ns: fields.u64_field("period")?,
                site: fields.opt_u64_field("site")?,
                alt: fields.opt_u64_field("alt")?,
                phase: fields.opt_u64_field("phase")?.unwrap_or(0),
            },
            "wutil" => EventKind::WorkerUtil {
                worker: fields.u64_field("worker")?,
                busy: fields.u64_field("busy")?,
                total: fields.u64_field("total")?,
            },
            "stall" => EventKind::Stall {
                site: fields.opt_u64_field("site")?,
                phase: fields.opt_u64_field("phase")?.unwrap_or(0),
                waited_ns: fields.u64_field("waited")?,
            },
            "meta" => EventKind::Meta {
                effective_cores: fields.u64_field("cores")?,
            },
            "site_label" => {
                let site = fields.u64_field("site")?;
                let label = fields.str_field("label")?.to_string();
                // Replay side effect, by design: parsing a capture
                // teaches this process the recorder's site names, so
                // every downstream renderer resolves them for free.
                crate::site::learn_site_label(site, &label);
                EventKind::SiteLabel { site, label }
            }
            other => return Err(ParseError(format!("unknown event kind {other:?}"))),
        };
        Ok(Event {
            kind,
            world: fields.u64_field("world")?,
            parent: fields.opt_u64_field("parent")?,
            vt_ns: fields.u64_field("vt")?,
            wall_ns: fields.u64_field("wt")?,
        })
    }
}

/// A malformed JSONL line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad event line: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

fn push_u64(s: &mut String, v: u64) {
    s.push_str(&v.to_string());
}

fn push_field(s: &mut String, name: &str, v: u64) {
    s.push_str(",\"");
    s.push_str(name);
    s.push_str("\":");
    push_u64(s, v);
}

#[derive(Debug, Clone, PartialEq)]
enum JsonValue {
    Num(u64),
    Bool(bool),
    Str(String),
    Null,
}

struct FlatObject(Vec<(String, JsonValue)>);

impl FlatObject {
    fn get(&self, key: &str) -> Option<&JsonValue> {
        self.0.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn str_field(&self, key: &str) -> Result<&str, ParseError> {
        match self.get(key) {
            Some(JsonValue::Str(s)) => Ok(s),
            other => Err(ParseError(format!(
                "field {key:?}: expected string, got {other:?}"
            ))),
        }
    }

    fn u64_field(&self, key: &str) -> Result<u64, ParseError> {
        match self.get(key) {
            Some(JsonValue::Num(n)) => Ok(*n),
            other => Err(ParseError(format!(
                "field {key:?}: expected number, got {other:?}"
            ))),
        }
    }

    fn bool_field(&self, key: &str) -> Result<bool, ParseError> {
        match self.get(key) {
            Some(JsonValue::Bool(b)) => Ok(*b),
            other => Err(ParseError(format!(
                "field {key:?}: expected bool, got {other:?}"
            ))),
        }
    }

    fn opt_u64_field(&self, key: &str) -> Result<Option<u64>, ParseError> {
        match self.get(key) {
            Some(JsonValue::Num(n)) => Ok(Some(*n)),
            Some(JsonValue::Null) | None => Ok(None),
            other => Err(ParseError(format!(
                "field {key:?}: expected number|null, got {other:?}"
            ))),
        }
    }
}

/// Parse `{"k":v,...}` with string/unsigned-number/bool/null values.
/// Strings never contain escapes in this schema (event names only), so
/// escape handling is rejection, not interpretation.
fn parse_flat_object(line: &str) -> Result<FlatObject, ParseError> {
    let s = line.trim();
    let inner = s
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| ParseError("not a JSON object".into()))?;
    let mut fields = Vec::new();
    let mut rest = inner.trim();
    while !rest.is_empty() {
        // Key.
        rest = rest
            .strip_prefix('"')
            .ok_or_else(|| ParseError("expected quoted key".into()))?;
        let kq = rest
            .find('"')
            .ok_or_else(|| ParseError("unterminated key".into()))?;
        let key = rest[..kq].to_string();
        rest = rest[kq + 1..]
            .trim_start()
            .strip_prefix(':')
            .ok_or_else(|| ParseError(format!("missing ':' after key {key:?}")))?
            .trim_start();
        // Value.
        let (value, after) = if let Some(r) = rest.strip_prefix('"') {
            let vq = r
                .find('"')
                .ok_or_else(|| ParseError("unterminated string".into()))?;
            let raw = &r[..vq];
            if raw.contains('\\') {
                return Err(ParseError(format!("escapes unsupported in value {raw:?}")));
            }
            (JsonValue::Str(raw.to_string()), &r[vq + 1..])
        } else if let Some(r) = rest.strip_prefix("true") {
            (JsonValue::Bool(true), r)
        } else if let Some(r) = rest.strip_prefix("false") {
            (JsonValue::Bool(false), r)
        } else if let Some(r) = rest.strip_prefix("null") {
            (JsonValue::Null, r)
        } else {
            let end = rest
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(rest.len());
            if end == 0 {
                return Err(ParseError(format!(
                    "bad value near {:?}",
                    &rest[..rest.len().min(12)]
                )));
            }
            let n = rest[..end]
                .parse()
                .map_err(|_| ParseError(format!("bad number {:?}", &rest[..end])))?;
            (JsonValue::Num(n), &rest[end..])
        };
        fields.push((key, value));
        rest = after.trim_start();
        match rest.strip_prefix(',') {
            Some(r) => rest = r.trim_start(),
            None if rest.is_empty() => break,
            None => {
                return Err(ParseError(format!(
                    "expected ',' near {:?}",
                    &rest[..rest.len().min(12)]
                )))
            }
        }
    }
    Ok(FlatObject(fields))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_kinds() -> Vec<EventKind> {
        vec![
            EventKind::Spawn { alt: 3 },
            EventKind::GuardVerdict {
                pass: true,
                duration_ns: 250,
                alt: Some(2),
                site: Some(4),
            },
            EventKind::GuardVerdict {
                pass: false,
                duration_ns: 0,
                alt: None,
                site: None,
            },
            EventKind::Rendezvous,
            EventKind::Commit {
                dirty_pages: 7,
                overhead_ns: 1234,
                site: Some(1),
            },
            EventKind::Commit {
                dirty_pages: 7,
                overhead_ns: 1234,
                site: None,
            },
            EventKind::EliminateSync {
                overhead_ns: 88,
                site: Some(0),
            },
            EventKind::EliminateSync {
                overhead_ns: 88,
                site: None,
            },
            EventKind::EliminateAsync,
            EventKind::Timeout,
            EventKind::CowCopy {
                vpn: 42,
                bytes: 4096,
            },
            EventKind::ZeroFill { vpn: 9 },
            EventKind::FrameFree { frames: 3 },
            EventKind::FrameDedup {
                vpn: 42,
                bytes: 4096,
            },
            EventKind::PageHashSkip { vpn: 42 },
            EventKind::NetCacheEvict {
                node: 2,
                bytes: 131_072,
            },
            EventKind::Checkpoint {
                pages: 5,
                bytes: 20480,
                duration_ns: 999,
            },
            EventKind::MsgAccept,
            EventKind::MsgExtend,
            EventKind::MsgIgnore,
            EventKind::MsgSplit,
            EventKind::SplitSpawn,
            EventKind::RemoteFork { node: 2 },
            EventKind::RpcSend {
                node: 2,
                bytes: 8192,
                latency_ns: 150_000_000,
            },
            EventKind::RpcRetry {
                node: 2,
                attempt: 1,
            },
            EventKind::RpcTimeout {
                node: 2,
                waited_ns: 1_000_000,
            },
            EventKind::NetSend {
                node: 1,
                bytes: 4222,
            },
            EventKind::NetRecv {
                node: 1,
                bytes: 30,
                rtt_ns: 87_000,
            },
            EventKind::NetRetry {
                node: 1,
                attempt: 2,
                backoff_ns: 2_000_000,
            },
            EventKind::NetTimeout {
                node: 1,
                waited_ns: 50_000_000,
            },
            EventKind::CpuSamples {
                samples: 12,
                period_ns: 1_003_009,
                site: Some(2),
                alt: Some(0),
                phase: 2,
            },
            EventKind::CpuSamples {
                samples: 1,
                period_ns: 1_003_009,
                site: None,
                alt: None,
                phase: 1,
            },
            EventKind::WorkerUtil {
                worker: 3,
                busy: 200,
                total: 250,
            },
            EventKind::Stall {
                site: Some(5),
                phase: 2,
                waited_ns: 5_000_000_000,
            },
            EventKind::Stall {
                site: None,
                phase: 6,
                waited_ns: 30_000_000_000,
            },
            EventKind::Meta { effective_cores: 4 },
        ]
    }

    #[test]
    fn every_kind_round_trips() {
        for (i, kind) in all_kinds().into_iter().enumerate() {
            let ev = Event {
                kind,
                world: i as u64 + 1,
                parent: if i % 2 == 0 { Some(i as u64) } else { None },
                vt_ns: 17 * i as u64,
                wall_ns: 1000 + i as u64,
            };
            let line = ev.to_json();
            let back = Event::from_json(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(back, ev, "line {line}");
        }
    }

    #[test]
    fn json_is_flat_single_line() {
        let ev = Event::new(
            EventKind::Commit {
                dirty_pages: 1,
                overhead_ns: 2,
                site: None,
            },
            5,
            Some(1),
            77,
        );
        let line = ev.to_json();
        assert!(!line.contains('\n'));
        assert!(line.starts_with("{\"ev\":\"commit\""), "{line}");
        assert!(line.contains("\"parent\":1"), "{line}");
    }

    #[test]
    fn null_parent_round_trips() {
        let ev = Event::new(EventKind::Rendezvous, 1, None, 0);
        let line = ev.to_json();
        assert!(line.contains("\"parent\":null"), "{line}");
        assert_eq!(Event::from_json(&line).unwrap().parent, None);
    }

    #[test]
    fn malformed_lines_are_rejected_not_panicked() {
        for bad in [
            "",
            "not json",
            "{}",
            "{\"ev\":\"spawn\"}",
            "{\"ev\":\"nonsense\",\"world\":1,\"parent\":null,\"vt\":0,\"wt\":0}",
            "{\"ev\":\"spawn\",\"world\":-1,\"parent\":null,\"vt\":0,\"wt\":0,\"alt\":0}",
            "{\"ev\":\"spawn\",\"world\":1,\"parent\":null,\"vt\":0,\"wt\":0,\"alt\":\"x\"}",
            "{\"ev\":\"spawn\",\"world\":1",
        ] {
            assert!(Event::from_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn guard_without_duration_parses_as_zero() {
        // Captures written before `dur` existed must still replay.
        let line = "{\"ev\":\"guard\",\"world\":4,\"parent\":1,\"vt\":50,\"wt\":0,\"pass\":true}";
        let ev = Event::from_json(line).unwrap();
        assert_eq!(
            ev.kind,
            EventKind::GuardVerdict {
                pass: true,
                duration_ns: 0,
                alt: None,
                site: None,
            }
        );
    }

    #[test]
    fn unlabelled_events_carry_no_site_field() {
        // Site-less emission must stay byte-identical to pre-site
        // captures, so golden fixtures and diff-based tests never move.
        let ev = Event::new(
            EventKind::EliminateSync {
                overhead_ns: 3,
                site: None,
            },
            2,
            Some(1),
            0,
        );
        assert!(!ev.to_json().contains("site"), "{}", ev.to_json());
        let labelled = Event::new(
            EventKind::EliminateSync {
                overhead_ns: 3,
                site: Some(7),
            },
            2,
            Some(1),
            0,
        );
        assert!(
            labelled.to_json().contains("\"site\":7"),
            "{}",
            labelled.to_json()
        );
    }

    #[test]
    fn whitespace_tolerant_parse() {
        let line = "{ \"ev\" : \"zero_fill\" , \"world\" : 3 , \"parent\" : 1 , \"vt\" : 9 , \"wt\" : 0 , \"vpn\" : 4 }";
        let ev = Event::from_json(line).unwrap();
        assert_eq!(ev.kind, EventKind::ZeroFill { vpn: 4 });
        assert_eq!(ev.world, 3);
    }
}
