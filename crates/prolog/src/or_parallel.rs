//! OR-parallel resolution through Multiple Worlds (§4.2).
//!
//! The top-level goal's matching clauses form the choice point. Each
//! clause becomes one *alternative*: a world that resolves the goal
//! against that clause and then runs the ordinary sequential engine on
//! what remains. The first world to derive a solution wins the block; its
//! bindings are committed into speculative state and its siblings are
//! eliminated — the committed-choice nondeterminism the paper argues for
//! ("since we choose only one alternative, no merging is necessary").

use std::time::Duration;

use worlds::{AltBlock, AltError, ElimMode, RunOutcome, Speculation};

use crate::db::Database;
use crate::solve::{solve_first, Bindings, SolveConfig};
use crate::term::Term;
use crate::unify::{unify, Subst};

/// Result of an OR-parallel query.
#[derive(Debug)]
pub struct OrParallelOutcome {
    /// The committed solution, if any branch succeeded.
    pub solution: Option<Bindings>,
    /// Which clause (index into the choice point's clause list) won.
    pub winning_clause: Option<usize>,
    /// Resolution steps spent by the winner.
    pub steps: u64,
    /// Labels of branches that failed.
    pub failed_branches: Vec<String>,
}

/// Solve `goals` with the **first** goal's choice point explored
/// OR-parallel: one world per matching clause, first solution committed.
///
/// Sequential-semantics note: sequential Prolog returns the first solution
/// in *program order*; committed-choice OR-parallelism returns the first
/// in *time order*. Both are solutions of the same goal — this is exactly
/// the nondeterministic selection the paper's §1.1 block semantics allow.
pub fn or_parallel_solve(
    spec: &Speculation,
    db: &Database,
    goals: &[Term],
    cfg: &SolveConfig,
    timeout: Option<Duration>,
) -> OrParallelOutcome {
    let Some((first, rest)) = goals.split_first() else {
        return OrParallelOutcome {
            solution: Some(Bindings::new()),
            winning_clause: None,
            steps: 0,
            failed_branches: Vec::new(),
        };
    };

    // Build the choice point.
    let clauses: Vec<_> = db.matching(first).into_iter().cloned().collect();
    if clauses.is_empty() {
        return OrParallelOutcome {
            solution: None,
            winning_clause: None,
            steps: 0,
            failed_branches: vec!["<no matching clauses>".into()],
        };
    }

    let query_vars: Vec<String> = {
        let mut vs = Vec::new();
        for g in goals {
            for v in g.vars() {
                if !vs.contains(&v) {
                    vs.push(v);
                }
            }
        }
        vs
    };

    let mut block: AltBlock<(usize, Bindings, u64)> = AltBlock::new().elim(ElimMode::Sync);
    if let Some(t) = timeout {
        block = block.timeout(t);
    }

    for (ci, clause) in clauses.iter().enumerate() {
        let clause = clause.clone();
        let db = db.clone();
        let first = first.clone();
        let rest: Vec<Term> = rest.to_vec();
        let cfg = *cfg;
        let query_vars = query_vars.clone();
        let label = format!("clause#{ci}:{}", clause.head);
        block = block.alt(label, move |ctx| {
            ctx.checkpoint()?;
            // Resolve the first goal against this clause only.
            let fresh = clause.rename(1_000_000 + ci as u64);
            let mut s = Subst::new();
            if !unify(&mut s, &first, &fresh.head) {
                return Err(AltError::GuardFailed(format!(
                    "clause #{ci} head does not unify"
                )));
            }
            // Remaining work: the clause body then the rest of the query,
            // all resolved sequentially inside this world.
            let mut remaining: Vec<Term> = fresh.body.iter().map(|t| s.resolve(t)).collect();
            remaining.extend(rest.iter().map(|t| s.resolve(t)));
            ctx.checkpoint()?;
            let (sol, steps) = solve_first(&db, &remaining, &cfg);
            let Some(tail_bindings) = sol else {
                return Err(AltError::GuardFailed(format!(
                    "clause #{ci} derivation failed"
                )));
            };
            // Compose: query vars resolved through s, then through the
            // tail solution's bindings.
            let mut out = Bindings::new();
            for v in &query_vars {
                let through_s = s.resolve(&Term::Var(v.clone()));
                out.insert(v.clone(), substitute(&through_s, &tail_bindings));
            }
            // Record the answer in speculative state: committed iff we win.
            let rendered: String = if out.is_empty() {
                "true".to_string() // ground query: provable, no bindings
            } else {
                out.iter()
                    .map(|(k, t)| format!("{k}={t}"))
                    .collect::<Vec<_>>()
                    .join(",")
            };
            ctx.put_str("prolog_answer", &rendered)?;
            Ok((ci, out, steps))
        });
    }

    let report = spec.run(block);
    let failed_branches = report
        .alts
        .iter()
        .filter(|a| matches!(a.status, worlds::AltRunStatus::Failed(_)))
        .map(|a| a.label.clone())
        .collect();

    match (report.outcome, report.value) {
        (RunOutcome::Winner { .. }, Some((ci, bindings, steps))) => OrParallelOutcome {
            solution: Some(bindings),
            winning_clause: Some(ci),
            steps,
            failed_branches,
        },
        _ => OrParallelOutcome {
            solution: None,
            winning_clause: None,
            steps: 0,
            failed_branches,
        },
    }
}

/// OR-parallelism at **every** choice point down to `parallel_depth`:
/// each goal's matching clauses race in a nested Multiple-Worlds block
/// (predicates and worlds inherited per §2.3's nesting rule); below the
/// depth limit the ordinary sequential engine takes over.
///
/// Exploiting parallelism at this granularity is exactly the trade-off
/// the paper flags — "how aggressively available parallelism is exploited
/// is a function of the overhead associated with maintaining a process"
/// — so the depth limit is the caller's granularity knob.
pub fn or_parallel_solve_deep(
    spec: &Speculation,
    db: &Database,
    goals: &[Term],
    cfg: &SolveConfig,
    parallel_depth: usize,
) -> Option<Bindings> {
    let query_vars: Vec<String> = {
        let mut vs = Vec::new();
        for g in goals {
            for v in g.vars() {
                if !vs.contains(&v) {
                    vs.push(v);
                }
            }
        }
        vs
    };
    let root = spec.read(|ctx| ctx.world_id());
    let s = deep_solve(
        spec,
        db,
        goals.to_vec(),
        Subst::new(),
        cfg,
        parallel_depth,
        root,
        &worlds::PredicateSet::empty(),
        0,
    )?;
    let mut out = Bindings::new();
    for v in &query_vars {
        out.insert(v.clone(), s.resolve(&Term::Var(v.clone())));
    }
    Some(out)
}

/// Recursive committed-choice search. Returns the solving substitution.
#[allow(clippy::too_many_arguments)] // an internal worker threading executor context
fn deep_solve(
    spec: &Speculation,
    db: &Database,
    goals: Vec<Term>,
    s: Subst,
    cfg: &SolveConfig,
    depth_left: usize,
    world: worlds::WorldId,
    preds: &worlds::PredicateSet,
    fresh_base: u64,
) -> Option<Subst> {
    let Some((goal, rest)) = goals.split_first() else {
        return Some(s);
    };
    let goal = s.resolve(goal);

    if depth_left == 0 {
        // Sequential tail: resolve the remaining conjunction entirely with
        // the ordinary engine, then splice its bindings back.
        let mut remaining = vec![goal.clone()];
        remaining.extend(rest.iter().map(|t| s.resolve(t)));
        let (sol, _) = solve_first(db, &remaining, cfg);
        let tail = sol?;
        let mut s2 = s.clone();
        for (v, t) in &tail {
            if !unify(&mut s2, &Term::Var(v.clone()), t) {
                return None;
            }
        }
        return Some(s2);
    }

    let clauses: Vec<_> = db.matching(&goal).into_iter().cloned().collect();
    if clauses.is_empty() {
        return None;
    }
    if clauses.len() == 1 {
        // Deterministic goal: no block needed, resolve in place.
        let fresh = clauses[0].rename(fresh_base * 131 + 1);
        let mut s2 = s.clone();
        if !unify(&mut s2, &goal, &fresh.head) {
            return None;
        }
        let mut next: Vec<Term> = fresh.body.clone();
        next.extend_from_slice(rest);
        return deep_solve(
            spec,
            db,
            next,
            s2,
            cfg,
            depth_left,
            world,
            preds,
            fresh_base + 1,
        );
    }

    // A real choice point: race the clauses in a nested block.
    let mut block: AltBlock<Subst> = AltBlock::new().elim(ElimMode::Sync);
    for (ci, clause) in clauses.iter().enumerate() {
        let clause = clause.clone();
        let db = db.clone();
        let goal = goal.clone();
        let rest: Vec<Term> = rest.to_vec();
        let s = s.clone();
        let cfg = *cfg;
        let session = spec.clone();
        let label = format!("d{depth_left}c{ci}");
        block = block.alt(label, move |ctx| {
            ctx.checkpoint()?;
            let fresh = clause.rename(fresh_base * 131 + 2 + ci as u64);
            let mut s2 = s.clone();
            if !unify(&mut s2, &goal, &fresh.head) {
                return Err(AltError::GuardFailed("head mismatch".into()));
            }
            let mut next: Vec<Term> = fresh.body.clone();
            next.extend_from_slice(&rest);
            deep_solve(
                &session,
                &db,
                next,
                s2,
                &cfg,
                depth_left - 1,
                ctx.world_id(),
                ctx.predicates(),
                fresh_base + 17,
            )
            .ok_or_else(|| AltError::GuardFailed("branch failed".into()))
        });
    }
    let report = spec.run_in(world, preds, block);
    report.value
}

/// Replace variables in `t` by their bindings in `b` (variables bound to
/// themselves or absent stay as-is).
fn substitute(t: &Term, b: &Bindings) -> Term {
    match t {
        Term::Var(v) => match b.get(v) {
            Some(bound) if bound != t => substitute(bound, b),
            _ => t.clone(),
        },
        Term::Compound(f, args) => {
            Term::Compound(f.clone(), args.iter().map(|a| substitute(a, b)).collect())
        }
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use crate::solve::solve;

    const FAMILY: &str = "\
        parent(tom, bob).\n\
        parent(tom, liz).\n\
        parent(bob, ann).\n\
        parent(bob, pat).\n\
        grand(X, Z) :- parent(X, Y), parent(Y, Z).";

    #[test]
    fn or_parallel_finds_a_valid_solution() {
        let db = Database::consult(FAMILY).unwrap();
        let goals = parse_query("parent(tom, X)").unwrap();
        let spec = Speculation::new();
        let out = or_parallel_solve(&spec, &db, &goals, &SolveConfig::default(), None);
        let sol = out.solution.expect("some branch succeeds");
        let x = sol["X"].to_string();
        // Any sequential solution is acceptable (committed choice).
        let (seq, _) = solve(&db, &goals, &SolveConfig::default());
        let valid: Vec<String> = seq.iter().map(|b| b["X"].to_string()).collect();
        assert!(valid.contains(&x), "{x} must be one of {valid:?}");
        // The committed world carries the same rendered answer.
        let committed = spec.read(|c| c.get_str("prolog_answer")).unwrap();
        assert!(committed.contains(&format!("X={x}")));
    }

    #[test]
    fn failing_branches_are_reported() {
        let db = Database::consult(FAMILY).unwrap();
        // grand(tom, ann) matches only via Y=bob; the rule has one clause,
        // so race parent/2 instead where liz-branch fails the conjunction.
        let goals = parse_query("parent(tom, Y), parent(Y, ann)").unwrap();
        let spec = Speculation::new();
        let out = or_parallel_solve(&spec, &db, &goals, &SolveConfig::default(), None);
        let sol = out.solution.expect("bob branch succeeds");
        assert_eq!(sol["Y"].to_string(), "bob");
        // liz and the two non-tom facts fail.
        assert!(!out.failed_branches.is_empty());
    }

    #[test]
    fn unsolvable_goal_fails_every_branch() {
        let db = Database::consult(FAMILY).unwrap();
        let goals = parse_query("parent(ann, Q)").unwrap();
        let spec = Speculation::new();
        let out = or_parallel_solve(&spec, &db, &goals, &SolveConfig::default(), None);
        assert!(out.solution.is_none());
    }

    #[test]
    fn unknown_predicate_reports_no_choice_point() {
        let db = Database::consult(FAMILY).unwrap();
        let goals = parse_query("married(a, b)").unwrap();
        let spec = Speculation::new();
        let out = or_parallel_solve(&spec, &db, &goals, &SolveConfig::default(), None);
        assert!(out.solution.is_none());
        assert_eq!(out.failed_branches, vec!["<no matching clauses>"]);
    }

    #[test]
    fn deep_or_parallel_agrees_with_sequential() {
        let db = Database::consult(FAMILY).unwrap();
        let cfg = SolveConfig::default();
        for (query, provable) in [
            ("grand(tom, ann)", true),
            ("grand(tom, Z)", true),
            ("grand(ann, Z)", false),
            ("parent(tom, X), parent(X, pat)", true),
        ] {
            let goals = crate::parser::parse_query(query).unwrap();
            let spec = Speculation::new();
            let deep = or_parallel_solve_deep(&spec, &db, &goals, &cfg, 3);
            let (seq, _) = crate::solve::solve(&db, &goals, &cfg);
            assert_eq!(
                deep.is_some(),
                !seq.is_empty(),
                "provability mismatch on {query}"
            );
            assert_eq!(provable, !seq.is_empty(), "fixture sanity for {query}");
            if let Some(b) = deep {
                // The deep answer must be one of the sequential answers.
                let rendered: Vec<String> = seq.iter().map(|m| format!("{m:?}")).collect();
                assert!(
                    rendered.contains(&format!("{b:?}")),
                    "deep answer {b:?} not among sequential {rendered:?}"
                );
            }
        }
    }

    #[test]
    fn deep_depth_zero_is_purely_sequential() {
        let db = Database::consult(FAMILY).unwrap();
        let goals = crate::parser::parse_query("grand(tom, Z)").unwrap();
        let spec = Speculation::new();
        let b = or_parallel_solve_deep(&spec, &db, &goals, &SolveConfig::default(), 0)
            .expect("solvable");
        assert_eq!(
            b["Z"].to_string(),
            "ann",
            "depth 0 = program-order first solution"
        );
    }

    #[test]
    fn deep_nested_choice_points_spawn_nested_blocks() {
        // Recursion through path/2 creates a choice point at each level;
        // parallel_depth 2 races the first two levels and solves the rest
        // sequentially.
        let db = Database::consult(
            "edge(a, b). edge(b, c). edge(c, d). edge(a, x).\n\
             path(U, V) :- edge(U, V).\n\
             path(U, V) :- edge(U, W), path(W, V).",
        )
        .unwrap();
        let goals = crate::parser::parse_query("path(a, d)").unwrap();
        let spec = Speculation::new();
        let b = or_parallel_solve_deep(&spec, &db, &goals, &SolveConfig::default(), 2);
        assert!(b.is_some(), "a->b->c->d must be derivable");
        // Unsolvable goal still fails cleanly through the nested blocks.
        let goals = crate::parser::parse_query("path(d, a)").unwrap();
        assert!(or_parallel_solve_deep(&spec, &db, &goals, &SolveConfig::default(), 2).is_none());
    }

    #[test]
    fn empty_goal_list_is_trivially_true() {
        let db = Database::consult(FAMILY).unwrap();
        let spec = Speculation::new();
        let out = or_parallel_solve(&spec, &db, &[], &SolveConfig::default(), None);
        assert_eq!(out.solution, Some(Bindings::new()));
    }

    #[test]
    fn or_parallel_timeout_reports_no_solution() {
        // A wide, unsolvable search that takes well over the timeout to
        // exhaust: the alt_wait timeout must cut the block off first.
        let mut src = String::from("edge(a, c0).\n");
        for i in 0..120 {
            src.push_str(&format!("edge(c{i}, c{}).\n", i + 1));
        }
        src.push_str("path(U, V) :- edge(U, V).\npath(U, V) :- edge(U, W), path(W, V).\n");
        let db = Database::consult(&src).unwrap();
        let goals = crate::parser::parse_query("path(a, nowhere)").unwrap();
        let spec = Speculation::new();
        let t0 = std::time::Instant::now();
        let out = or_parallel_solve(
            &spec,
            &db,
            &goals,
            &SolveConfig::default(),
            Some(std::time::Duration::from_millis(100)),
        );
        assert!(out.solution.is_none(), "'nowhere' is unreachable");
        // The timeout fired before the exhaustive search finished (the
        // join of cancelled-but-uncooperative workers may add time after
        // the verdict; the verdict itself must not take the full search).
        assert!(t0.elapsed() < std::time::Duration::from_secs(30));
    }

    #[test]
    fn agrees_with_sequential_on_deterministic_query() {
        let db = Database::consult(FAMILY).unwrap();
        let goals = parse_query("grand(tom, ann)").unwrap();
        let spec = Speculation::new();
        let out = or_parallel_solve(&spec, &db, &goals, &SolveConfig::default(), None);
        assert!(out.solution.is_some(), "sequential finds it, so must we");
    }
}
