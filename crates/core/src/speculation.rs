//! The speculation session and its pooled executor.
//!
//! A [`Speculation`] plays the role of the paper's parent process plus
//! kernel: it owns the single-level store (all sink state), the teletype
//! (source state), and a root world. [`Speculation::run`] is
//! `alt_spawn(n)` + `alt_wait(TIMEOUT)`:
//!
//! 1. every alternative gets a fresh pid, sibling-rivalry predicates, and a
//!    COW fork of the root world, and runs as a task on a persistent
//!    work-stealing pool ([`worlds_exec::Executor`]) shared by every block
//!    — see [`ExecMode`] for the thread-per-alternative ablation mode;
//! 2. the parent blocks; the **first** alternative to report success wins
//!    the rendezvous — "`alt_wait()` is an 'at most once' operation for any
//!    group of child processes" (§2.2.1);
//! 3. the winner's world is adopted into the root world (atomic page-map
//!    replacement) and its buffered teletype output becomes observable;
//! 4. the siblings are eliminated: cancelled cooperatively (observed at
//!    checkpoint and page-write boundaries) and their worlds torn down —
//!    already-finished losers in one batched [`PageStore::drop_worlds`]
//!    call ([`ElimMode::Sync`]) or handed to the background
//!    [`worlds_exec::Reaper`] ([`ElimMode::Async`], the paper's faster
//!    choice); still-running losers dispose of themselves when they reach
//!    their sync point.

use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use worlds_exec::{Executor, Reaper};
use worlds_ipc::{SourceDevice, Teletype};
use worlds_obs::{Event as ObsEvent, EventKind, Registry, TraceCtx};
use worlds_pagestore::{FileSystem, PageStore, WorldId, PAGE_SIZE_DEFAULT};
use worlds_predicate::{Pid, PredicateSet};

use crate::block::{AltBlock, ElimMode};
use crate::ctx::{CancelToken, WorldCtx};
use crate::error::AltError;
use crate::report::{AltRun, AltRunStatus, RunOutcome, RunReport};

/// How a [`Speculation`] dispatches its alternatives.
#[derive(Clone, Debug)]
pub enum ExecMode {
    /// Run alternatives as tasks on a persistent work-stealing pool. The
    /// default is the process-wide [`Executor::global`]; sessions can be
    /// pinned to a private pool with [`Speculation::with_executor`].
    Pooled(Executor),
    /// Spawn one OS thread per alternative — the pre-pool behaviour,
    /// kept as the ablation baseline for `bench-exec`.
    ThreadPerAlt,
}

/// A speculation session: persistent state plus the block executor.
pub struct Speculation {
    store: PageStore,
    fs: FileSystem,
    tty: Teletype,
    root_world: WorldId,
    root_pid: Pid,
    exec: ExecMode,
}

impl Clone for Speculation {
    fn clone(&self) -> Self {
        // A clone shares the same store/files/teletype/root world — it is
        // another handle on the same session, which is what lets an
        // alternative closure capture one and run *nested* blocks against
        // its own world via [`Speculation::run_in`].
        Speculation {
            store: self.store.clone(),
            fs: self.fs.clone(),
            tty: self.tty.clone(),
            root_world: self.root_world,
            root_pid: self.root_pid,
            exec: self.exec.clone(),
        }
    }
}

impl Default for Speculation {
    fn default() -> Self {
        Speculation::new()
    }
}

/// What each child task reports back at its synchronization attempt.
struct ChildReport<T> {
    index: usize,
    result: Result<T, AltError>,
    world: WorldId,
    output: Vec<String>,
    elapsed: Duration,
}

/// The elimination handshake between the parent and its child tasks,
/// replacing the per-child verdict channels of the thread-per-alternative
/// executor. A loser's world is torn down by whichever side learns the
/// outcome *last*: children finishing before the decision park their
/// world in `finished` for the parent to dispose **in one batch**;
/// children finishing after it see `decided` and dispose of their own
/// world (off the parent's critical path).
struct ElimShared {
    decided: bool,
    /// The winner's (pre-adoption) world id, if any.
    winner: Option<WorldId>,
    /// Worlds of children that reached their sync point before the
    /// parent decided the block.
    finished: Vec<WorldId>,
}

/// A countdown latch the parent waits on in [`ElimMode::Sync`]: one count
/// per spawned child, counted down by a drop guard so a panicking
/// alternative still releases the parent.
struct Latch {
    count: Mutex<usize>,
    cv: Condvar,
}

impl Latch {
    fn new() -> Arc<Latch> {
        Arc::new(Latch {
            count: Mutex::new(0),
            cv: Condvar::new(),
        })
    }

    fn add(&self) {
        *self.count.lock().unwrap() += 1;
    }

    fn done(&self) {
        let mut c = self.count.lock().unwrap();
        *c -= 1;
        if *c == 0 {
            self.cv.notify_all();
        }
    }

    fn wait(&self) {
        let c = self.count.lock().unwrap();
        let _done = self.cv.wait_while(c, |c| *c > 0).unwrap();
    }
}

/// Counts a [`Latch`] down when dropped — normal return or unwind alike.
struct CountsDown(Arc<Latch>);

impl Drop for CountsDown {
    fn drop(&mut self) {
        self.0.done();
    }
}

impl Speculation {
    /// A session with a default (4 KiB) page size.
    pub fn new() -> Self {
        Speculation::with_page_size(PAGE_SIZE_DEFAULT)
    }

    /// A session with an explicit page size (the paper's machines used
    /// 2 KiB and 4 KiB). Observability comes from the environment
    /// ([`Registry::from_env`]): unset means a disabled, zero-cost
    /// registry.
    pub fn with_page_size(page_size: usize) -> Self {
        Speculation::with_obs(page_size, Registry::from_env())
    }

    /// A session with an explicit observability registry; the page store
    /// and every block executed through [`Speculation::run`] report into
    /// it.
    ///
    /// `WORLDS_DEDUPE=1` arms the store's content index
    /// ([`PageStore::set_dedupe`]), the same environment-switch idiom
    /// as `WORLDS_OBS`/`WORLDS_PROF`.
    pub fn with_obs(page_size: usize, obs: Registry) -> Self {
        // WORLDS_PROF=1 gets a sampler without bespoke wiring: the first
        // session's registry receives the flushes.
        worlds_prof::autostart_from_env(&obs);
        let store = PageStore::with_obs(page_size, obs);
        if std::env::var_os("WORLDS_DEDUPE").is_some_and(|v| v != "0") {
            store.set_dedupe(true);
        }
        let root_world = store.create_world();
        let fs = FileSystem::new(store.clone());
        Speculation {
            store,
            fs,
            tty: Teletype::new(),
            root_world,
            root_pid: Pid::fresh(),
            exec: ExecMode::Pooled(Executor::global()),
        }
    }

    /// A session **rooted at an existing world of an existing store** —
    /// the run-as-session constructor the multi-tenant front door
    /// (`worlds-server`) builds on. Unlike [`Speculation::with_obs`],
    /// nothing is created: the returned session is a view whose root is
    /// `root`, so many sessions can share one store (and one executor,
    /// one reaper) while each speculates against its own root world.
    /// The caller keeps ownership of the world's lifecycle — dropping
    /// the `Speculation` does not drop `root`.
    ///
    /// The view starts with a fresh, empty file-name table (directory
    /// metadata is per-`FileSystem`, not in the store's pages); keep one
    /// view alive per session, or share a directory across views with
    /// [`Speculation::with_fs`].
    pub fn in_store(store: &PageStore, root: WorldId) -> Self {
        let store = store.clone();
        let fs = FileSystem::new(store.clone());
        Speculation {
            store,
            fs,
            tty: Teletype::new(),
            root_world: root,
            root_pid: Pid::fresh(),
            exec: ExecMode::Pooled(Executor::global()),
        }
    }

    /// This session's root world.
    pub fn root_world(&self) -> WorldId {
        self.root_world
    }

    /// The session's file system (named state cells ride on it). Clone
    /// it into [`Speculation::with_fs`] to share one directory across
    /// several session views.
    pub fn fs(&self) -> &FileSystem {
        &self.fs
    }

    /// Use `fs` (and its name table) instead of a fresh one — the
    /// directory-sharing half of [`Speculation::in_store`]. The file
    /// system must wrap the same store ([`PageStore::same_store`]).
    pub fn with_fs(mut self, fs: FileSystem) -> Self {
        assert!(
            fs.store().same_store(&self.store),
            "FileSystem wraps a different PageStore"
        );
        self.fs = fs;
        self
    }

    /// Pin this session to a private work-stealing pool instead of the
    /// process-wide [`Executor::global`].
    pub fn with_executor(mut self, exec: Executor) -> Self {
        self.exec = ExecMode::Pooled(exec);
        self
    }

    /// Dispatch one OS thread per alternative (the pre-pool executor),
    /// for ablation measurements.
    pub fn with_thread_per_alt(mut self) -> Self {
        self.exec = ExecMode::ThreadPerAlt;
        self
    }

    /// How this session dispatches alternatives.
    pub fn exec_mode(&self) -> &ExecMode {
        &self.exec
    }

    /// The session's page store (for stats and diagnostics).
    pub fn store(&self) -> &PageStore {
        &self.store
    }

    /// The session's observability registry (disabled unless configured).
    pub fn obs(&self) -> &Registry {
        self.store.obs()
    }

    /// The session teletype: only committed output ever appears here.
    pub fn tty(&self) -> &Teletype {
        &self.tty
    }

    /// Run non-speculative code against the root world (initialise shared
    /// state before a block). Output prints immediately — the root runs
    /// under no assumptions.
    pub fn setup<R>(
        &self,
        f: impl FnOnce(&mut WorldCtx) -> Result<R, AltError>,
    ) -> Result<R, AltError> {
        let mut ctx = WorldCtx::new(
            self.fs.clone(),
            self.root_world,
            self.root_pid,
            PredicateSet::empty(),
            CancelToken::new(),
            self.root_trace(),
        );
        let r = f(&mut ctx)?;
        for line in &ctx.output {
            self.tty
                .emit(&PredicateSet::empty(), line.as_bytes())
                .expect("root world is resolved");
        }
        Ok(r)
    }

    /// Read the committed state (the root world's current view).
    pub fn read<R>(&self, f: impl FnOnce(&WorldCtx) -> R) -> R {
        let ctx = WorldCtx::new(
            self.fs.clone(),
            self.root_world,
            self.root_pid,
            PredicateSet::empty(),
            CancelToken::new(),
            self.root_trace(),
        );
        f(&ctx)
    }

    /// The root world's trace context (root causes itself).
    fn root_trace(&self) -> TraceCtx {
        TraceCtx {
            root: self.root_world.raw(),
            world: self.root_world.raw(),
        }
    }

    /// Execute an alternative block: run every alternative concurrently in
    /// its own world, commit at most one.
    pub fn run<T: Send + 'static>(&self, block: AltBlock<T>) -> RunReport<T> {
        self.run_in(self.root_world, &PredicateSet::empty(), block)
    }

    /// Execute a block **nested inside an existing world**: alternatives
    /// fork from `parent_world`, inherit `parent_preds` ("the predicates
    /// of a 'child' process consist of those of the 'parent'; this allows
    /// for nesting and potentially complex dependencies", §2.3), and the
    /// winner commits into `parent_world`.
    ///
    /// An alternative closure nests by capturing a clone of the session
    /// and calling this with its own [`WorldCtx::world_id`] /
    /// [`WorldCtx::predicates`]. When `parent_preds` is unresolved (a
    /// speculative caller), the winner's output is **not** released to
    /// the teletype — it is returned in
    /// [`RunReport::committed_output`] for the caller to re-buffer into
    /// its own context.
    pub fn run_in<T: Send + 'static>(
        &self,
        parent_world: WorldId,
        parent_preds: &PredicateSet,
        block: AltBlock<T>,
    ) -> RunReport<T> {
        let n = block.alts.len();
        let start = Instant::now();
        let stats_before = self.store.stats();
        // Real threads have no discrete-event clock: virtual time is wall
        // time since the registry was enabled. The store clock is advanced
        // at every parent-side step so COW events carry sane stamps.
        let obs = self.store.obs().clone();
        let obs_on = obs.is_enabled();
        if obs_on {
            self.store.set_clock_ns(obs.now_ns());
        }

        if n == 0 {
            return RunReport {
                outcome: RunOutcome::AllFailed,
                value: None,
                wall: start.elapsed(),
                alts: Vec::new(),
                store_delta: self.store.stats().delta_since(&stats_before),
                committed_output: Vec::new(),
            };
        }

        let site = block.site.map(|s| s.0);
        if let Some(s) = block.site {
            // Captures must be renderable in other processes: the label
            // behind this interned id rides the stream once.
            obs.announce_site(s);
        }
        let cancel = CancelToken::new();
        let (report_tx, report_rx) = mpsc::channel::<ChildReport<T>>();
        let shared = Arc::new(Mutex::new(ElimShared {
            decided: false,
            winner: None,
            finished: Vec::new(),
        }));
        let latch = Latch::new();
        let reaper = Reaper::global();

        // Pids first: sibling-rivalry predicates need the whole cohort.
        let pids: Vec<Pid> = (0..n).map(|_| Pid::fresh()).collect();

        let mut labels: Vec<String> = Vec::with_capacity(n);
        let mut skipped: Vec<bool> = Vec::with_capacity(n);
        let mut child_worlds: Vec<Option<WorldId>> = Vec::with_capacity(n);
        for (i, alt) in block.alts.into_iter().enumerate() {
            labels.push(alt.label.clone());
            // Pre-spawn guards run serially in the parent; failing
            // alternatives never get a world or a task.
            if let Some(g) = &alt.pre_spawn_guard {
                let guard_start = Instant::now();
                if !g() {
                    skipped.push(true);
                    child_worlds.push(None);
                    obs.emit(|| {
                        ObsEvent::new(
                            EventKind::GuardVerdict {
                                pass: false,
                                duration_ns: guard_start.elapsed().as_nanos() as u64,
                                alt: Some(i as u64),
                                site,
                            },
                            parent_world.raw(),
                            None,
                            obs.now_ns(),
                        )
                    });
                    continue;
                }
            }
            skipped.push(false);
            let world = self
                .store
                .fork_world(parent_world)
                .expect("parent world is live");
            child_worlds.push(Some(world));
            obs.emit(|| {
                ObsEvent::new(
                    EventKind::Spawn { alt: i as u64 },
                    world.raw(),
                    Some(parent_world.raw()),
                    obs.now_ns(),
                )
            });
            let preds = PredicateSet::for_spawned_child(parent_preds, pids[i], &pids);
            let trace = TraceCtx {
                root: self.root_world.raw(),
                world: world.raw(),
            };
            let fs = self.fs.clone();
            let store = self.store.clone();
            let cancel = cancel.clone();
            let tx = report_tx.clone();
            let shared = shared.clone();
            let reaper = reaper.clone();
            let elim = block.elim;
            let pid = pids[i];
            let child_start = start;
            latch.add();
            let counts_down = CountsDown(latch.clone());

            let task = move || {
                // Declared after the latch guard, so disposal (a local
                // drop) happens before the parent is released.
                let _counts_down = counts_down;
                // Refine the executor's bare `Task` marker: this worker is
                // now a specific alternative in a specific world.
                worlds_prof::mark(
                    Some(world.raw()),
                    site,
                    Some(i as u64),
                    worlds_prof::Phase::Guard,
                );
                let mut ctx = WorldCtx::new(fs, world, pid, preds, cancel, trace);
                let result = alt.execute(&mut ctx);
                let output = std::mem::take(&mut ctx.output);
                let _ = tx.send(ChildReport {
                    index: i,
                    result,
                    world,
                    output,
                    elapsed: child_start.elapsed(),
                });
                // Elimination handshake: if the parent has already decided
                // the block, this world's fate is known — a loser tears it
                // down right here, off the parent's critical path (queued
                // to the batching reaper in async mode). Otherwise park it
                // for the parent's batched disposal at decision time.
                let mut st = shared.lock().unwrap();
                if st.decided {
                    let lost = st.winner != Some(world);
                    drop(st);
                    if lost && store.world_exists(world) {
                        match elim {
                            ElimMode::Sync => {
                                let _ = store.drop_world(world);
                            }
                            ElimMode::Async => reaper.enqueue(&store, world),
                        }
                    }
                } else {
                    st.finished.push(world);
                }
            };
            match &self.exec {
                ExecMode::Pooled(exec) => exec.spawn(&obs, task),
                ExecMode::ThreadPerAlt => {
                    std::thread::spawn(task);
                }
            }
        }
        drop(report_tx);

        let deadline = block.timeout.map(|t| start + t);
        let mut alt_runs: Vec<AltRun> = labels
            .iter()
            .enumerate()
            .map(|(i, l)| AltRun {
                label: l.clone(),
                status: if skipped[i] {
                    AltRunStatus::Failed("pre-spawn guard failed; never spawned".into())
                } else {
                    AltRunStatus::StillRunning
                },
                reported_after: None,
                pages_dirtied: None,
            })
            .collect();

        let spawned_count = skipped.iter().filter(|&&s| !s).count();
        if spawned_count == 0 {
            // Every alternative was rejected before spawning.
            cancel.cancel();
            return RunReport {
                outcome: RunOutcome::AllFailed,
                value: None,
                wall: start.elapsed(),
                alts: alt_runs,
                store_delta: self.store.stats().delta_since(&stats_before),
                committed_output: Vec::new(),
            };
        }

        let mut outcome = RunOutcome::AllFailed;
        let mut value: Option<T> = None;
        let mut committed_output: Vec<String> = Vec::new();
        let mut reported = 0usize;

        // The parent is off-CPU by intent while the children race; a
        // nested caller's own (Guard) marker is put back at the end.
        let outer_mark = worlds_prof::current_mark();
        worlds_prof::mark(
            Some(parent_world.raw()),
            site,
            None,
            worlds_prof::Phase::Wait,
        );

        // alt_wait(TIMEOUT): wait for the first success, a full set of
        // failures, or the deadline.
        loop {
            let msg = match deadline {
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        outcome = RunOutcome::TimedOut;
                        break;
                    }
                    match report_rx.recv_timeout(d - now) {
                        Ok(m) => m,
                        Err(mpsc::RecvTimeoutError::Timeout) => {
                            outcome = RunOutcome::TimedOut;
                            break;
                        }
                        Err(mpsc::RecvTimeoutError::Disconnected) => break,
                    }
                }
                None => match report_rx.recv() {
                    Ok(m) => m,
                    Err(_) => break,
                },
            };

            reported += 1;
            let i = msg.index;
            alt_runs[i].reported_after = Some(msg.elapsed);
            alt_runs[i].pages_dirtied = self
                .store
                .world_stats(msg.world)
                .ok()
                .map(|s| s.pages_cowed + s.pages_zero_filled);
            if obs_on {
                self.store.set_clock_ns(obs.now_ns());
                let pass = msg.result.is_ok();
                // In the thread executor the whole alternative is the
                // guard: its verdict is the run's success, its duration
                // the child's measured run time.
                let duration_ns = msg.elapsed.as_nanos() as u64;
                obs.emit(|| {
                    ObsEvent::new(
                        EventKind::GuardVerdict {
                            pass,
                            duration_ns,
                            alt: Some(i as u64),
                            site,
                        },
                        msg.world.raw(),
                        Some(parent_world.raw()),
                        obs.now_ns(),
                    )
                });
            }

            match msg.result {
                Ok(v) => {
                    // First success wins: commit.
                    alt_runs[i].status = AltRunStatus::Won;
                    obs.emit(|| {
                        ObsEvent::new(
                            EventKind::Rendezvous,
                            msg.world.raw(),
                            Some(parent_world.raw()),
                            obs.now_ns(),
                        )
                    });
                    outcome = RunOutcome::Winner {
                        index: i,
                        label: labels[i].clone(),
                    };
                    value = Some(v);
                    worlds_prof::mark(
                        Some(parent_world.raw()),
                        site,
                        None,
                        worlds_prof::Phase::Commit,
                    );
                    let adopt_start = Instant::now();
                    self.store
                        .adopt(parent_world, msg.world)
                        .expect("winner world is a child of the parent");
                    let dirty_pages = alt_runs[i].pages_dirtied.unwrap_or(0);
                    obs.emit(|| {
                        ObsEvent::new(
                            EventKind::Commit {
                                dirty_pages,
                                overhead_ns: adopt_start.elapsed().as_nanos() as u64,
                                site,
                            },
                            msg.world.raw(),
                            Some(parent_world.raw()),
                            obs.now_ns(),
                        )
                    });
                    if parent_preds.is_resolved() {
                        for line in &msg.output {
                            self.tty
                                .emit(parent_preds, line.as_bytes())
                                .expect("committed world is resolved");
                        }
                    }
                    committed_output = msg.output;
                    break;
                }
                Err(e) => {
                    alt_runs[i].status = AltRunStatus::Failed(e.to_string());
                    if reported == spawned_count {
                        outcome = RunOutcome::AllFailed;
                        break;
                    }
                }
            }
        }

        // Eliminate the siblings: cancel cooperatively, publish the
        // decision, and dispose of every loser that already finished in
        // one batch.
        cancel.cancel();
        let winner_index = match &outcome {
            RunOutcome::Winner { index, .. } => Some(*index),
            _ => None,
        };
        if obs_on {
            self.store.set_clock_ns(obs.now_ns());
            if matches!(outcome, RunOutcome::TimedOut) {
                obs.emit(|| {
                    ObsEvent::new(EventKind::Timeout, parent_world.raw(), None, obs.now_ns())
                });
            }
        }
        let winner_world = winner_index.and_then(|i| child_worlds[i]);
        let ready: Vec<WorldId> = {
            let mut st = shared.lock().unwrap();
            st.decided = true;
            st.winner = winner_world;
            std::mem::take(&mut st.finished)
        };
        // The winner may have parked itself before we decided; its world
        // was consumed by `adopt` and must not be disposed of.
        let losers: Vec<WorldId> = ready
            .into_iter()
            .filter(|&w| Some(w) != winner_world)
            .collect();
        let elim_start = Instant::now();

        if block.elim == ElimMode::Sync {
            // Synchronous elimination: one batched drop for the finished
            // losers (a single recycler acquisition), then wait for every
            // still-running sibling to reach its sync point and dispose
            // of itself (§2.2.1's slower option).
            worlds_prof::mark(
                Some(parent_world.raw()),
                site,
                None,
                worlds_prof::Phase::Elim,
            );
            self.store.drop_worlds(&losers);
            // The join below is blocking, not teardown work.
            worlds_prof::mark(
                Some(parent_world.raw()),
                site,
                None,
                worlds_prof::Phase::Wait,
            );
            latch.wait();
            // Late reports tell us how the losers ended. Each is that
            // child's only report, so its guard verdict has not been
            // recorded yet; losers that reached the sync point with a
            // passing guard still count as a rendezvous.
            while let Ok(msg) = report_rx.try_recv() {
                let i = msg.index;
                if alt_runs[i].reported_after.is_none() {
                    alt_runs[i].reported_after = Some(msg.elapsed);
                }
                if obs_on {
                    let pass = msg.result.is_ok();
                    let duration_ns = msg.elapsed.as_nanos() as u64;
                    obs.emit(|| {
                        ObsEvent::new(
                            EventKind::GuardVerdict {
                                pass,
                                duration_ns,
                                alt: Some(i as u64),
                                site,
                            },
                            msg.world.raw(),
                            Some(parent_world.raw()),
                            obs.now_ns(),
                        )
                    });
                    if pass {
                        obs.emit(|| {
                            ObsEvent::new(
                                EventKind::Rendezvous,
                                msg.world.raw(),
                                Some(parent_world.raw()),
                                obs.now_ns(),
                            )
                        });
                    }
                }
                if matches!(alt_runs[i].status, AltRunStatus::StillRunning) {
                    alt_runs[i].status = match msg.result {
                        Ok(_) => AltRunStatus::Eliminated,
                        Err(e) => AltRunStatus::Failed(e.to_string()),
                    };
                }
            }
        } else {
            // Asynchronous elimination: hand the finished losers to the
            // background reaper (batched frame recycling) and return;
            // still-running losers queue themselves when they finish.
            reaper.enqueue_many(&self.store, &losers);
        }

        if obs_on {
            // Every spawned world that did not commit is eliminated —
            // exactly once, whatever state its thread was in. Sync mode
            // charges the join wait; async elimination is off the
            // parent's critical path and charges nothing.
            let overhead_ns = match block.elim {
                ElimMode::Sync => elim_start.elapsed().as_nanos() as u64,
                ElimMode::Async => 0,
            };
            self.store.set_clock_ns(obs.now_ns());
            for (i, world) in child_worlds.iter().enumerate() {
                let Some(world) = world else { continue };
                if Some(i) == winner_index {
                    continue;
                }
                let kind = match block.elim {
                    ElimMode::Sync => EventKind::EliminateSync { overhead_ns, site },
                    ElimMode::Async => EventKind::EliminateAsync,
                };
                obs.emit(|| {
                    ObsEvent::new(
                        kind.clone(),
                        world.raw(),
                        Some(parent_world.raw()),
                        obs.now_ns(),
                    )
                });
            }
            obs.flush();
        }

        worlds_prof::restore_mark(outer_mark);

        RunReport {
            outcome,
            value,
            wall: start.elapsed(),
            alts: alt_runs,
            store_delta: self.store.stats().delta_since(&stats_before),
            committed_output,
        }
    }
}

impl std::fmt::Debug for Speculation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Speculation")
            .field("root_world", &self.root_world)
            .field("store", &self.store)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alternative::Alternative;

    #[test]
    fn single_alternative_commits() {
        let spec = Speculation::new();
        let r = spec.run(AltBlock::new().alt("only", |ctx| {
            ctx.put_u64("x", 7)?;
            Ok(7u64)
        }));
        assert_eq!(r.value, Some(7));
        assert!(r.succeeded());
        assert_eq!(spec.read(|c| c.get_u64("x")), Some(7));
    }

    #[test]
    fn loser_state_never_leaks() {
        let spec = Speculation::new();
        spec.setup(|ctx| ctx.put_str("who", "nobody")).unwrap();
        let r = spec.run(
            AltBlock::new()
                .alt("fast", |ctx| {
                    ctx.put_str("who", "fast")?;
                    Ok(1u32)
                })
                .alt("slow", |ctx| {
                    std::thread::sleep(Duration::from_millis(300));
                    ctx.checkpoint()?; // sees cancellation, aborts
                    ctx.put_str("who", "slow")?;
                    Ok(2)
                })
                .elim(ElimMode::Sync),
        );
        assert_eq!(r.winner_label(), Some("fast"));
        assert_eq!(spec.read(|c| c.get_str("who")).as_deref(), Some("fast"));
    }

    #[test]
    fn all_failures_reported() {
        let spec = Speculation::new();
        let r: RunReport<u32> = spec.run(
            AltBlock::new()
                .alt("a", |_| Err(AltError::GuardFailed("a bad".into())))
                .alt("b", |_| Err(AltError::GuardFailed("b bad".into())))
                .elim(ElimMode::Sync),
        );
        assert_eq!(r.outcome, RunOutcome::AllFailed);
        assert_eq!(r.failures(), 2);
        assert_eq!(r.value, None);
    }

    #[test]
    fn at_sync_guard_rejects_and_other_wins() {
        let spec = Speculation::new();
        let r = spec.run(
            AltBlock::new()
                .alternative(Alternative::new("bogus", |_| Ok(-1i64)).guard(|v| *v >= 0))
                .alternative(Alternative::new("valid", |_| {
                    std::thread::sleep(Duration::from_millis(20));
                    Ok(10i64)
                }))
                .elim(ElimMode::Sync),
        );
        assert_eq!(r.winner_label(), Some("valid"));
        assert_eq!(r.value, Some(10));
    }

    #[test]
    fn timeout_fails_the_block() {
        let spec = Speculation::new();
        let r: RunReport<u32> = spec.run(
            AltBlock::new()
                .alt("glacial", |ctx| {
                    for _ in 0..200 {
                        std::thread::sleep(Duration::from_millis(10));
                        ctx.checkpoint()?;
                    }
                    Ok(1)
                })
                .timeout(Duration::from_millis(50))
                .elim(ElimMode::Sync),
        );
        assert_eq!(r.outcome, RunOutcome::TimedOut);
        assert!(
            r.wall < Duration::from_millis(1500),
            "timeout must not hang"
        );
    }

    #[test]
    fn losers_output_is_never_observable() {
        let spec = Speculation::new();
        let r = spec.run(
            AltBlock::new()
                .alt("winner", |ctx| {
                    ctx.print("winner speaks");
                    Ok(1u8)
                })
                .alt("loser", |ctx| {
                    ctx.print("loser speaks");
                    std::thread::sleep(Duration::from_millis(200));
                    Ok(2)
                })
                .elim(ElimMode::Sync),
        );
        assert_eq!(r.winner_label(), Some("winner"));
        assert_eq!(spec.tty().output_strings(), vec!["winner speaks"]);
        assert_eq!(r.committed_output, vec!["winner speaks"]);
    }

    #[test]
    fn empty_block_is_failure() {
        let spec = Speculation::new();
        let r: RunReport<u8> = spec.run(AltBlock::new());
        assert_eq!(r.outcome, RunOutcome::AllFailed);
    }

    #[test]
    fn sequential_blocks_accumulate_state() {
        let spec = Speculation::new();
        spec.setup(|c| c.put_u64("acc", 0)).unwrap();
        for i in 1..=3u64 {
            let r = spec.run(AltBlock::new().alt("inc", move |ctx| {
                let cur = ctx.get_u64("acc").unwrap();
                ctx.put_u64("acc", cur + i)?;
                Ok(cur + i)
            }));
            assert!(r.succeeded());
        }
        assert_eq!(spec.read(|c| c.get_u64("acc")), Some(6));
    }

    #[test]
    fn store_accounting_shows_cow_traffic() {
        let spec = Speculation::new();
        spec.setup(|c| c.put_bytes("blob", &[1u8; 4096])).unwrap();
        let r = spec.run(
            AltBlock::new()
                .alt("toucher", |ctx| {
                    ctx.put_bytes("blob", &[2u8; 4096])?;
                    Ok(())
                })
                .elim(ElimMode::Sync),
        );
        assert!(r.store_delta.forks >= 1);
        assert!(r.store_delta.cow_faults >= 1, "rewriting the blob must COW");
    }

    #[test]
    fn async_elim_returns_before_losers_finish() {
        let spec = Speculation::new();
        let t0 = Instant::now();
        let r = spec.run(
            AltBlock::new()
                .alt("instant", |_| Ok(1u8))
                .alt("sleepy", |_| {
                    std::thread::sleep(Duration::from_millis(400));
                    Ok(2)
                })
                .elim(ElimMode::Async),
        );
        assert_eq!(r.winner_label(), Some("instant"));
        assert!(
            t0.elapsed() < Duration::from_millis(300),
            "async elimination must not wait for the sleeper"
        );
        assert_eq!(
            r.alts[1].status,
            AltRunStatus::StillRunning,
            "the loser was still running at commit"
        );
    }

    #[test]
    fn nested_blocks_commit_into_the_outer_alternative() {
        // An outer block whose alternative runs an inner block against its
        // own speculative world: the inner winner's state must be visible
        // to the outer alternative, and committed to the root only if the
        // outer alternative wins.
        let spec = Speculation::new();
        spec.setup(|c| c.put_u64("x", 1)).unwrap();
        let session = spec.clone();
        let report = spec.run(
            AltBlock::new()
                .alt("outer", move |ctx| {
                    ctx.put_u64("outer_mark", 7)?;
                    let inner = session.run_in(
                        ctx.world_id(),
                        ctx.predicates(),
                        AltBlock::new()
                            .alt("inner-a", |ictx| {
                                let x = ictx.get_u64("x").unwrap();
                                let m = ictx.get_u64("outer_mark").unwrap();
                                ictx.put_u64("x", x + m)?;
                                Ok(1u8)
                            })
                            .alt("inner-b", |ictx| {
                                let x = ictx.get_u64("x").unwrap();
                                let m = ictx.get_u64("outer_mark").unwrap();
                                ictx.put_u64("x", x + m)?;
                                Ok(2u8)
                            })
                            .elim(ElimMode::Sync),
                    );
                    assert!(inner.succeeded(), "an inner alternative must win");
                    // The inner commit is visible here, pre-outer-commit.
                    assert_eq!(ctx.get_u64("x"), Some(8));
                    Ok(inner.value.unwrap())
                })
                .elim(ElimMode::Sync),
        );
        assert!(report.succeeded());
        assert_eq!(
            spec.read(|c| c.get_u64("x")),
            Some(8),
            "nested result committed to root"
        );
    }

    #[test]
    fn nested_block_in_losing_alternative_never_escapes() {
        let spec = Speculation::new();
        spec.setup(|c| c.put_u64("x", 100)).unwrap();
        let session = spec.clone();
        let report = spec.run(
            AltBlock::new()
                .alt("fast-winner", |ctx| {
                    ctx.put_u64("x", 200)?;
                    Ok("winner")
                })
                .alt("slow-nester", move |ctx| {
                    std::thread::sleep(Duration::from_millis(100));
                    let inner = session.run_in(
                        ctx.world_id(),
                        ctx.predicates(),
                        AltBlock::new()
                            .alt("inner", |ictx| {
                                ictx.put_u64("x", 999)?;
                                Ok(0u8)
                            })
                            .elim(ElimMode::Sync),
                    );
                    let _ = inner;
                    ctx.checkpoint()?;
                    Ok("nester")
                })
                .elim(ElimMode::Sync),
        );
        assert_eq!(report.winner_label(), Some("fast-winner"));
        assert_eq!(
            spec.read(|c| c.get_u64("x")),
            Some(200),
            "the losing alternative's nested commit died with its world"
        );
    }

    #[test]
    fn nested_output_is_not_released_by_speculative_parents() {
        let spec = Speculation::new();
        let session = spec.clone();
        let report = spec.run(
            AltBlock::new()
                .alt("outer", move |ctx| {
                    let inner = session.run_in(
                        ctx.world_id(),
                        ctx.predicates(),
                        AltBlock::new()
                            .alt("inner", |ictx| {
                                ictx.print("inner speaks");
                                Ok(0u8)
                            })
                            .elim(ElimMode::Sync),
                    );
                    // The inner output is handed back, not printed; the
                    // outer alternative re-buffers it.
                    for line in &inner.committed_output {
                        ctx.print(format!("relayed: {line}"));
                    }
                    Ok(0u8)
                })
                .elim(ElimMode::Sync),
        );
        assert!(report.succeeded());
        assert_eq!(spec.tty().output_strings(), vec!["relayed: inner speaks"]);
    }

    #[test]
    fn pre_spawn_guards_skip_alternatives_without_forking() {
        let spec = Speculation::new();
        let before = spec.store().stats();
        let r = spec.run(
            AltBlock::new()
                .alternative(Alternative::new("rejected", |_| Ok(1u32)).pre_guard(|| false))
                .alternative(Alternative::new("accepted", |_| Ok(2u32)).pre_guard(|| true))
                .elim(ElimMode::Sync),
        );
        assert_eq!(r.value, Some(2));
        assert_eq!(
            spec.store().stats().delta_since(&before).forks,
            1,
            "the rejected alternative must never fork a world"
        );
        assert!(matches!(r.alts[0].status, AltRunStatus::Failed(_)));
    }

    #[test]
    fn all_pre_spawn_rejections_fail_the_block() {
        let spec = Speculation::new();
        let r: RunReport<u8> = spec.run(
            AltBlock::new()
                .alternative(Alternative::new("a", |_| Ok(1u8)).pre_guard(|| false))
                .alternative(Alternative::new("b", |_| Ok(2u8)).pre_guard(|| false))
                .elim(ElimMode::Sync),
        );
        assert_eq!(r.outcome, RunOutcome::AllFailed);
        assert_eq!(r.failures(), 2);
        assert_eq!(spec.store().world_count(), 1, "no worlds created");
    }

    #[test]
    fn mixed_pre_spawn_and_runtime_failures() {
        let spec = Speculation::new();
        let r: RunReport<u8> = spec.run(
            AltBlock::new()
                .alternative(Alternative::new("never", |_| Ok(1u8)).pre_guard(|| false))
                .alt("errors", |_| Err(AltError::GuardFailed("later".into())))
                .elim(ElimMode::Sync),
        );
        // One skipped + one runtime failure = AllFailed, promptly (the
        // reported-count bookkeeping must use spawned, not total, count).
        assert_eq!(r.outcome, RunOutcome::AllFailed);
    }

    #[test]
    fn obs_accounts_for_every_world_in_real_thread_mode() {
        let spec = Speculation::with_obs(PAGE_SIZE_DEFAULT, Registry::enabled());
        spec.setup(|c| c.put_u64("x", 1)).unwrap();
        let r = spec.run(
            AltBlock::new()
                .alternative(Alternative::new("skipped", |_| Ok(0u8)).pre_guard(|| false))
                .alt("fails", |_| Err(AltError::GuardFailed("no".into())))
                .alt("wins", |ctx| {
                    ctx.put_u64("x", 2)?;
                    Ok(1u8)
                })
                .alt("loses", |ctx| {
                    std::thread::sleep(Duration::from_millis(150));
                    ctx.checkpoint()?;
                    Ok(2)
                })
                .elim(ElimMode::Sync),
        );
        assert_eq!(r.winner_label(), Some("wins"));
        let s = spec.obs().stats().expect("registry is enabled");
        let spawned = s.kernel.worlds_spawned.get();
        assert_eq!(spawned, 3, "three alternatives pass the pre-spawn guard");
        assert_eq!(
            s.kernel.commits.get()
                + s.kernel.eliminations_sync.get()
                + s.kernel.eliminations_async.get(),
            spawned,
            "every spawned world commits or is eliminated"
        );
        assert_eq!(s.kernel.commits.get(), 1);
        assert!(
            s.kernel.guard_fail.get() >= 2,
            "pre-spawn + runtime failures"
        );
        assert!(
            s.pagestore.page_copies.get() >= 1,
            "the winner rewrote a shared page"
        );
    }

    #[test]
    fn worlds_are_reclaimed_after_sync_block() {
        let spec = Speculation::new();
        spec.setup(|c| c.put_u64("x", 1)).unwrap();
        let _ = spec.run(
            AltBlock::new()
                .alt("a", |ctx| {
                    ctx.put_u64("x", 2)?;
                    Ok(())
                })
                .alt("b", |ctx| {
                    ctx.put_u64("x", 3)?;
                    Ok(())
                })
                .elim(ElimMode::Sync),
        );
        assert_eq!(
            spec.store().world_count(),
            1,
            "only the root world survives"
        );
    }

    /// Regression: async elimination drops the loser's world from a detached
    /// thread *after* the winner has been adopted into the root. That drop
    /// must release only frames the loser held privately — never a frame the
    /// winner (now the root) still maps, even though both worlds forked the
    /// same pages.
    #[test]
    fn async_elimination_never_frees_winner_mapped_frames() {
        let spec = Speculation::new();
        spec.setup(|c| {
            c.put_u64("a", 100)?;
            c.put_u64("b", 101)?;
            c.put_u64("c", 102)?;
            c.put_u64("d", 103)
        })
        .unwrap();
        let r = spec.run(
            AltBlock::new()
                .alt("wins", |ctx| {
                    ctx.put_u64("a", 42)?;
                    Ok(1u8)
                })
                .alt("slow-loser", |ctx| {
                    // Touch the same shared pages as the winner, then outlive
                    // the commit so this world is torn down in the background
                    // while the root already maps the winner's frames.
                    ctx.put_u64("a", 7)?;
                    ctx.put_u64("b", 8)?;
                    std::thread::sleep(Duration::from_millis(60));
                    ctx.put_u64("c", 9)?;
                    Ok(2u8)
                })
                .elim(ElimMode::Async),
        );
        assert_eq!(r.winner_label(), Some("wins"));

        // Wait for the detached loser thread to finish its drop_world.
        for _ in 0..400 {
            if spec.store().world_count() == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(spec.store().world_count(), 1, "loser world reclaimed");

        // Every page the winner committed is still readable with the
        // winner's content — nothing was freed out from under the root.
        assert_eq!(spec.read(|c| c.get_u64("a")), Some(42));
        assert_eq!(spec.read(|c| c.get_u64("b")), Some(101));
        assert_eq!(spec.read(|c| c.get_u64("c")), Some(102));
        assert_eq!(spec.read(|c| c.get_u64("d")), Some(103));

        // And the frame table balances exactly: the surviving root accounts
        // for every live frame, so the loser freed its frames and no others.
        let live = spec
            .store()
            .verify_refcounts()
            .expect("refcount invariant after async elimination");
        assert_eq!(live, spec.store().live_frames());
    }

    /// The pool-reuse stress of the executor PR: a session pinned to a
    /// **one-worker** pool runs nested blocks whose outer alternative
    /// blocks on its inner block. Without the reserve-or-spawn fallback
    /// this deadlocks instantly (the only worker is occupied by the task
    /// that is waiting for the queued ones); with it, every iteration
    /// completes.
    #[test]
    fn nested_blocks_share_a_one_worker_pool_without_deadlock() {
        let pool = Executor::new(1);
        let spec = Speculation::new().with_executor(pool.clone());
        spec.setup(|c| c.put_u64("x", 0)).unwrap();
        for round in 1..=10u64 {
            let session = spec.clone();
            let r = spec.run(
                AltBlock::new()
                    .alt("outer", move |ctx| {
                        let inner = session.run_in(
                            ctx.world_id(),
                            ctx.predicates(),
                            AltBlock::new()
                                .alt("inner-a", move |ictx| {
                                    let x = ictx.get_u64("x").unwrap();
                                    ictx.put_u64("x", x + round)?;
                                    Ok(1u8)
                                })
                                .alt("inner-b", move |ictx| {
                                    let x = ictx.get_u64("x").unwrap();
                                    ictx.put_u64("x", x + round)?;
                                    Ok(2u8)
                                })
                                .elim(ElimMode::Sync),
                        );
                        assert!(inner.succeeded(), "inner block must win");
                        Ok(inner.value.unwrap())
                    })
                    .elim(ElimMode::Sync),
            );
            assert!(r.succeeded(), "round {round} must commit");
        }
        assert_eq!(spec.read(|c| c.get_u64("x")), Some((1..=10u64).sum()));
        assert_eq!(spec.store().world_count(), 1, "no leaked worlds");
        pool.shutdown();
    }

    /// Regression for the cancellation point at the page-write boundary:
    /// a loser that wakes up *after* the winner has committed must be
    /// refused at its next write — no page of a decided-against world is
    /// ever dirtied again, in either executor mode.
    #[test]
    fn cancelled_loser_never_writes_after_winner_commits() {
        for spec in [Speculation::new(), Speculation::new().with_thread_per_alt()] {
            spec.setup(|c| c.put_u64("poison", 0)).unwrap();
            let r = spec.run(
                AltBlock::new()
                    .alt("wins", |ctx| {
                        ctx.put_u64("x", 1)?;
                        Ok(1u8)
                    })
                    .alt("late-writer", |ctx| {
                        // Deterministically outlive the commit, then try
                        // to write.
                        while !ctx.is_cancelled() {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        match ctx.put_u64("poison", 99) {
                            Err(AltError::Cancelled) => Err(AltError::Cancelled),
                            other => panic!("write after cancel must be refused, got {other:?}"),
                        }
                    })
                    .elim(ElimMode::Sync),
            );
            assert_eq!(r.winner_label(), Some("wins"));
            assert_eq!(spec.read(|c| c.get_u64("poison")), Some(0));
            assert_eq!(spec.store().world_count(), 1);
        }
    }

    /// Spans from a pooled-executor run must reconstruct exactly like
    /// thread-per-alternative ones did: one committed span carrying its
    /// alternative index, the loser eliminated, and nothing orphaned.
    #[test]
    fn pool_run_events_reconstruct_into_a_span_tree() {
        use worlds_obs::{SpanOutcome, SpanTree};
        let (obs, ring) = Registry::with_ring(4096);
        let spec = Speculation::with_obs(PAGE_SIZE_DEFAULT, obs);
        spec.setup(|c| c.put_u64("x", 1)).unwrap();
        let root = spec.read(|c| c.world_id().raw());
        let r = spec.run(
            AltBlock::new()
                .alt("wins", |ctx| {
                    assert_eq!(ctx.trace_ctx().world, ctx.world_id().raw());
                    ctx.put_u64("x", 2)?;
                    Ok(1u8)
                })
                .alt("loses", |ctx| {
                    ctx.put_u64("x", 3)?;
                    std::thread::sleep(Duration::from_millis(50));
                    Ok(2u8)
                })
                .elim(ElimMode::Sync),
        );
        assert_eq!(r.winner_label(), Some("wins"));
        let events = ring.events();
        let tree = SpanTree::build(events.iter());
        let committed: Vec<_> = tree
            .spans()
            .filter(|s| s.outcome == SpanOutcome::Committed)
            .collect();
        assert_eq!(committed.len(), 1, "exactly one world commits");
        assert_eq!(committed[0].alt, Some(0), "the winner is alternative 0");
        assert_eq!(committed[0].parent, Some(root));
        let eliminated = tree
            .spans()
            .filter(|s| s.outcome == SpanOutcome::EliminatedSync)
            .count();
        assert_eq!(eliminated, 1, "the loser is eliminated synchronously");
        for s in tree.spans() {
            if s.world != root {
                assert_eq!(s.parent, Some(root), "no orphan spans from pool runs");
            }
        }
    }
}
