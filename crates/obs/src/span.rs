//! worlds-trace: the speculation tree reconstructed as spans.
//!
//! The event stream ([`crate::Event`]) is flat; this module folds it
//! back into the shape operators think in — one [`WorldSpan`] per world
//! (spawn → guard → rendezvous → commit/eliminate), linked into the
//! speculation tree by the `parent` field, with CoW faults, checkpoints
//! and message routing attached as sub-events. On top of the tree sit
//! the two analyses the paper's accounting argument needs:
//!
//! * [`SpanTree::critical_path`] — the commit winner's lineage and its
//!   wall time (what the run actually waited for), and
//! * [`SpanTree::waste`] — virtual time and pages burned by everything
//!   *off* that lineage, broken down per alternative index.
//!
//! The builder is replay-tolerant by design: it accepts truncated and
//! interleaved streams (a capture cut mid-run, or several subsystems
//! writing one JSONL). A span missing its terminal event is closed at
//! the end of the stream, and children are clamped inside their parents,
//! so "every span nests inside its parent" holds for any input.

use std::collections::BTreeMap;

use crate::event::{Event, EventKind};
use crate::fmt_ns;

/// Trace context carried across causal boundaries (predicated messages,
/// remote RPCs): which run this belongs to and which world caused it.
/// Receivers stamp `world` as the `parent` of the events they emit, so
/// message-induced splits and cross-node forks join the sender's tree
/// instead of starting orphan roots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// The root world of the run that originated this causal chain.
    pub root: u64,
    /// The world on the causing side of the edge (sender / fork origin).
    pub world: u64,
}

/// How a world came to exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanOrigin {
    /// No spawn-like event seen — a run root, or a truncated capture.
    Root,
    /// Forked by the kernel to run alternative `alt`.
    Spawned {
        /// Alternative index within the block.
        alt: u64,
    },
    /// The accepting copy of a message-induced receiver split.
    SplitCopy,
    /// Restored from a checkpoint on remote node `node`.
    RemoteForked {
        /// Destination node id.
        node: u64,
    },
}

/// How a world's span ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanOutcome {
    /// No terminal event in the stream (run root, or truncated capture).
    Open,
    /// Won the rendezvous and was adopted into its parent.
    Committed,
    /// Eliminated while the parent waited.
    EliminatedSync,
    /// Handed to background elimination.
    EliminatedAsync,
    /// Guard failed; the world self-aborted.
    GuardFailed,
}

impl SpanOutcome {
    /// Short label for rendering.
    pub fn label(&self) -> &'static str {
        match self {
            SpanOutcome::Open => "open",
            SpanOutcome::Committed => "committed",
            SpanOutcome::EliminatedSync => "elim_sync",
            SpanOutcome::EliminatedAsync => "elim_async",
            SpanOutcome::GuardFailed => "guard_failed",
        }
    }
}

/// The guard evaluation inside a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuardSpan {
    /// When evaluation began (verdict time minus duration, saturating).
    pub start_ns: u64,
    /// When the verdict landed.
    pub end_ns: u64,
    /// The verdict.
    pub pass: bool,
}

/// One write fault attached to a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultMark {
    /// Virtual time of the fault.
    pub vt_ns: u64,
    /// Virtual page number.
    pub vpn: u64,
    /// Bytes physically copied (0 for zero fills).
    pub bytes: u64,
    /// True for zero fills, false for CoW copies.
    pub zero_fill: bool,
}

/// One checkpoint serialisation attached to a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointSpan {
    /// When serialisation started.
    pub start_ns: u64,
    /// Start plus measured duration.
    pub end_ns: u64,
    /// Pages in the image.
    pub pages: u64,
    /// Image bytes.
    pub bytes: u64,
}

/// A message-routing or RPC moment attached to a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mark {
    /// Virtual time of the moment.
    pub vt_ns: u64,
    /// The wire name of the underlying event (`msg_accept`, `rpc_send`…).
    pub what: &'static str,
    /// The causing world on the far side of the edge, when the event
    /// carried one (message sender via [`TraceCtx`]).
    pub from: Option<u64>,
}

/// One world's reconstructed lifetime.
#[derive(Debug, Clone)]
pub struct WorldSpan {
    /// The world id.
    pub world: u64,
    /// Parent world in the speculation tree, if the stream named one.
    pub parent: Option<u64>,
    /// Alternative index, when the world was spawned for one.
    pub alt: Option<u64>,
    /// How the world came to exist.
    pub origin: SpanOrigin,
    /// First moment attributed to this world.
    pub start_ns: u64,
    /// Last moment: terminal event, or end-of-stream for open spans.
    pub end_ns: u64,
    /// How the span ended.
    pub outcome: SpanOutcome,
    /// The guard evaluation, if observed.
    pub guard: Option<GuardSpan>,
    /// When the world reached the rendezvous point.
    pub rendezvous_ns: Option<u64>,
    /// Dirty pages reported by the commit, when this world won.
    pub commit_dirty_pages: Option<u64>,
    /// Write faults (CoW copies and zero fills) charged to this world.
    pub faults: Vec<FaultMark>,
    /// Checkpoint serialisations of this world.
    pub checkpoints: Vec<CheckpointSpan>,
    /// Message-routing and RPC moments on this world.
    pub marks: Vec<Mark>,
    /// Child worlds (tree order = first-seen order).
    pub children: Vec<u64>,
    /// Profiler samples attributed to this world (`cpu` flush events).
    pub cpu_samples: u64,
    /// Estimated on-CPU nanoseconds (`Σ samples × period`). Raw sum —
    /// sampling error can nudge it past the span's wall time, so
    /// renders use [`WorldSpan::est_cpu_capped_ns`].
    pub est_cpu_ns: u64,
}

impl WorldSpan {
    fn new(world: u64, start_ns: u64) -> WorldSpan {
        WorldSpan {
            world,
            parent: None,
            alt: None,
            origin: SpanOrigin::Root,
            start_ns,
            end_ns: start_ns,
            outcome: SpanOutcome::Open,
            guard: None,
            rendezvous_ns: None,
            commit_dirty_pages: None,
            faults: Vec::new(),
            checkpoints: Vec::new(),
            marks: Vec::new(),
            children: Vec::new(),
            cpu_samples: 0,
            est_cpu_ns: 0,
        }
    }

    /// Span duration (virtual ns).
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Pages this world materialised (CoW copies + zero fills).
    pub fn pages_faulted(&self) -> u64 {
        self.faults.len() as u64
    }

    /// Bytes this world physically copied on CoW faults.
    pub fn bytes_copied(&self) -> u64 {
        self.faults.iter().map(|f| f.bytes).sum()
    }

    /// Estimated on-CPU time, capped at the span's wall time: a span
    /// can never have burned more CPU than it existed for, but ±1
    /// sample of quantisation error (and flush lag on short spans) can
    /// push the raw estimate past the wall clock.
    pub fn est_cpu_capped_ns(&self) -> u64 {
        self.est_cpu_ns.min(self.duration_ns())
    }
}

/// One per-worker utilization point from a profiler flush (`wutil`
/// event): worker `worker` was on-CPU for `busy` of `total` sampler
/// ticks in the flush window ending at `vt_ns`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerUtilPoint {
    /// Virtual time of the flush.
    pub vt_ns: u64,
    /// Marker-registry slot index of the worker.
    pub worker: u64,
    /// On-CPU sampler ticks in the window.
    pub busy: u64,
    /// Total sampler ticks in the window.
    pub total: u64,
}

/// What a causal flow arrow means.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Parent forked a speculative child.
    Spawn,
    /// Winner adopted back into its parent.
    Commit,
    /// Message-induced receiver split.
    Split,
    /// Cross-node checkpoint/restore fork.
    RemoteFork,
    /// Predicated message delivery (sender → receiver).
    Message,
}

impl EdgeKind {
    /// Short label for rendering.
    pub fn label(&self) -> &'static str {
        match self {
            EdgeKind::Spawn => "spawn",
            EdgeKind::Commit => "commit",
            EdgeKind::Split => "split",
            EdgeKind::RemoteFork => "rfork",
            EdgeKind::Message => "msg",
        }
    }
}

/// One causal edge between two worlds, for flow arrows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CausalEdge {
    /// What the edge means.
    pub kind: EdgeKind,
    /// Causing world.
    pub src: u64,
    /// Caused world.
    pub dst: u64,
    /// When the edge fired.
    pub vt_ns: u64,
}

/// The winner lineage: every span on the root-to-commit chain.
#[derive(Debug, Clone)]
pub struct CriticalPath {
    /// Worlds on the path, root first, commit winner last.
    pub worlds: Vec<u64>,
    /// The committing world.
    pub commit_world: u64,
    /// When the commit landed.
    pub commit_ns: u64,
    /// Root start → commit: the wall time the run actually waited for.
    pub total_ns: u64,
}

/// Waste charged to one alternative index (or to `alt: None` when the
/// stream never said which alternative a subtree belonged to).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WasteBucket {
    /// Worlds attributed to this alternative.
    pub worlds: u64,
    /// Summed span durations (virtual ns) of those worlds.
    pub vt_ns: u64,
    /// Pages they materialised.
    pub pages: u64,
    /// Bytes they physically copied.
    pub bytes: u64,
    /// Estimated on-CPU nanoseconds (capped per span; 0 without a
    /// profiler capture).
    pub cpu_ns: u64,
}

/// Per-run waste attribution. The partition is exact by construction:
/// every span is charged either to the winner lineage or to exactly one
/// alternative bucket, so `lineage.vt_ns + Σ buckets.vt_ns ==
/// total_vt_ns` — the run's total virtual time, defined as the summed
/// lifetime of every world (a cost integral, like CPU-seconds).
#[derive(Debug, Clone)]
pub struct WasteReport {
    /// The winner lineage's totals (worlds, vt, pages, bytes).
    pub lineage: WasteBucket,
    /// Waste per alternative index; `None` = subtree with no known alt.
    pub buckets: Vec<(Option<u64>, WasteBucket)>,
    /// Summed lifetime of every world in the run.
    pub total_vt_ns: u64,
}

/// The reconstructed speculation tree.
#[derive(Debug, Clone, Default)]
pub struct SpanTree {
    spans: BTreeMap<u64, WorldSpan>,
    edges: Vec<CausalEdge>,
    roots: Vec<u64>,
    max_vt_ns: u64,
    worker_util: Vec<WorkerUtilPoint>,
}

impl SpanTree {
    /// Reconstruct spans from an event stream. Events are sorted by
    /// virtual time internally, so interleaved multi-subsystem captures
    /// are fine; truncation only yields open spans, never an error.
    pub fn build<'a>(events: impl IntoIterator<Item = &'a Event>) -> SpanTree {
        let mut sorted: Vec<&Event> = events.into_iter().collect();
        sorted.sort_by_key(|ev| ev.vt_ns);
        let mut tree = SpanTree::default();
        for ev in sorted {
            tree.absorb(ev);
        }
        tree.finish();
        tree
    }

    fn ensure(&mut self, world: u64, vt: u64) -> &mut WorldSpan {
        self.spans
            .entry(world)
            .or_insert_with(|| WorldSpan::new(world, vt))
    }

    /// Record a spawn-like event: open (or re-parent) `world` under
    /// `parent` and record the causal edge.
    fn open_child(
        &mut self,
        world: u64,
        parent: Option<u64>,
        vt: u64,
        origin: SpanOrigin,
        kind: EdgeKind,
    ) {
        let span = self.ensure(world, vt);
        span.start_ns = span.start_ns.min(vt);
        span.origin = origin;
        if let SpanOrigin::Spawned { alt } = origin {
            span.alt = Some(alt);
        }
        if let Some(p) = parent {
            if p != world && span.parent.is_none() {
                span.parent = Some(p);
                let pspan = self.ensure(p, vt);
                if !pspan.children.contains(&world) {
                    pspan.children.push(world);
                }
                self.edges.push(CausalEdge {
                    kind,
                    src: p,
                    dst: world,
                    vt_ns: vt,
                });
            }
        }
    }

    fn close(&mut self, world: u64, vt: u64, outcome: SpanOutcome) {
        let span = self.ensure(world, vt);
        span.end_ns = span.end_ns.max(vt);
        if span.outcome == SpanOutcome::Open {
            span.outcome = outcome;
        }
    }

    fn absorb(&mut self, ev: &Event) {
        let (w, vt) = (ev.world, ev.vt_ns);
        self.max_vt_ns = self.max_vt_ns.max(vt);
        match &ev.kind {
            EventKind::Spawn { alt } => {
                self.open_child(
                    w,
                    ev.parent,
                    vt,
                    SpanOrigin::Spawned { alt: *alt },
                    EdgeKind::Spawn,
                );
            }
            EventKind::SplitSpawn => {
                self.open_child(w, ev.parent, vt, SpanOrigin::SplitCopy, EdgeKind::Split);
            }
            EventKind::RemoteFork { node } => {
                self.open_child(
                    w,
                    ev.parent,
                    vt,
                    SpanOrigin::RemoteForked { node: *node },
                    EdgeKind::RemoteFork,
                );
            }
            EventKind::GuardVerdict {
                pass, duration_ns, ..
            } => {
                let span = self.ensure(w, vt);
                span.guard = Some(GuardSpan {
                    start_ns: vt.saturating_sub(*duration_ns),
                    end_ns: vt,
                    pass: *pass,
                });
                if !pass {
                    // The terminal elimination (if any) overrides this.
                    span.end_ns = span.end_ns.max(vt);
                }
            }
            EventKind::Rendezvous => {
                let span = self.ensure(w, vt);
                span.rendezvous_ns = Some(vt);
                span.end_ns = span.end_ns.max(vt);
            }
            EventKind::Commit { dirty_pages, .. } => {
                let dirty = *dirty_pages;
                self.close(w, vt, SpanOutcome::Committed);
                let span = self.ensure(w, vt);
                span.commit_dirty_pages = Some(dirty);
                if let Some(p) = span.parent {
                    self.edges.push(CausalEdge {
                        kind: EdgeKind::Commit,
                        src: w,
                        dst: p,
                        vt_ns: vt,
                    });
                }
            }
            EventKind::EliminateSync { .. } => self.close(w, vt, SpanOutcome::EliminatedSync),
            EventKind::EliminateAsync => self.close(w, vt, SpanOutcome::EliminatedAsync),
            EventKind::Timeout => {
                // Emitted against the waiting parent; the killed children
                // get their own elimination events. A mark, not a close.
                let span = self.ensure(w, vt);
                span.marks.push(Mark {
                    vt_ns: vt,
                    what: "timeout",
                    from: None,
                });
            }
            EventKind::CowCopy { vpn, bytes } => {
                let span = self.ensure(w, vt);
                span.faults.push(FaultMark {
                    vt_ns: vt,
                    vpn: *vpn,
                    bytes: *bytes,
                    zero_fill: false,
                });
                span.end_ns = span.end_ns.max(vt);
            }
            EventKind::ZeroFill { vpn } => {
                let span = self.ensure(w, vt);
                span.faults.push(FaultMark {
                    vt_ns: vt,
                    vpn: *vpn,
                    bytes: 0,
                    zero_fill: true,
                });
                span.end_ns = span.end_ns.max(vt);
            }
            EventKind::Checkpoint {
                pages,
                bytes,
                duration_ns,
            } => {
                // Duration is wall time (serialisation is real work even
                // in the simulator); anchor the sub-span at vt and give it
                // the measured width so it renders as work, not a tick.
                let dur = *duration_ns;
                let span = self.ensure(w, vt);
                span.checkpoints.push(CheckpointSpan {
                    start_ns: vt,
                    end_ns: vt + dur,
                    pages: *pages,
                    bytes: *bytes,
                });
                span.end_ns = span.end_ns.max(vt);
            }
            EventKind::MsgAccept
            | EventKind::MsgExtend
            | EventKind::MsgIgnore
            | EventKind::MsgSplit => {
                // Message events overload `parent` as the *sender* world
                // (the TraceCtx causal edge) — never a tree edge.
                let what = ev.kind.name();
                let from = ev.parent.filter(|&p| p != w);
                if let Some(src) = from {
                    self.ensure(src, vt);
                    self.edges.push(CausalEdge {
                        kind: EdgeKind::Message,
                        src,
                        dst: w,
                        vt_ns: vt,
                    });
                }
                let span = self.ensure(w, vt);
                span.marks.push(Mark {
                    vt_ns: vt,
                    what,
                    from,
                });
                span.end_ns = span.end_ns.max(vt);
            }
            EventKind::RpcSend { .. }
            | EventKind::RpcRetry { .. }
            | EventKind::RpcTimeout { .. }
            | EventKind::NetSend { .. }
            | EventKind::NetRecv { .. }
            | EventKind::NetRetry { .. }
            | EventKind::NetTimeout { .. }
            | EventKind::NetNack { .. } => {
                let span = self.ensure(w, vt);
                span.marks.push(Mark {
                    vt_ns: vt,
                    what: ev.kind.name(),
                    from: None,
                });
                span.end_ns = span.end_ns.max(vt);
            }
            EventKind::FrameDedup { .. } => {
                let span = self.ensure(w, vt);
                span.marks.push(Mark {
                    vt_ns: vt,
                    what: "frame_dedup",
                    from: None,
                });
                span.end_ns = span.end_ns.max(vt);
            }
            EventKind::FrameFree { .. } | EventKind::PageHashSkip { .. } => {
                // Frame accounting has no per-world span meaning (the
                // freeing world is often already closed).
            }
            EventKind::NetCacheEvict { .. } => {
                // Cache housekeeping on the sender; no world to pin it to.
            }
            EventKind::Meta { .. } | EventKind::SiteLabel { .. } => {
                // Stream metadata: world 0 here is a placeholder, not
                // a span — opening one would fabricate an orphan root.
            }
            EventKind::CpuSamples {
                samples, period_ns, ..
            } => {
                // Profiler flushes lag the work they measured, so they
                // attribute CPU but never extend a span's wall clock.
                let span = self.ensure(w, vt);
                span.cpu_samples += samples;
                span.est_cpu_ns += samples.saturating_mul(*period_ns);
            }
            EventKind::WorkerUtil {
                worker,
                busy,
                total,
            } => {
                // Worker-level, not world-level: kept as counter points
                // for trace export, never a span.
                self.worker_util.push(WorkerUtilPoint {
                    vt_ns: vt,
                    worker: *worker,
                    busy: *busy,
                    total: *total,
                });
            }
            EventKind::Stall { .. } => {
                // A watchdog bark against a live world; world 0 means the
                // wedged worker held no world — nothing to pin it on.
                if let Some(span) = self.spans.get_mut(&w) {
                    span.marks.push(Mark {
                        vt_ns: vt,
                        what: "stall",
                        from: None,
                    });
                }
            }
        }
    }

    /// Close open spans at end-of-stream and clamp children inside their
    /// parents, making the nesting invariant hold for truncated input:
    /// an open span under a closed parent would otherwise outlive it.
    fn finish(&mut self) {
        let worlds: Vec<u64> = self.spans.keys().copied().collect();
        for w in &worlds {
            let span = self.spans.get_mut(w).expect("listed world");
            if span.outcome == SpanOutcome::Open {
                span.end_ns = span.end_ns.max(self.max_vt_ns);
                if matches!(span.guard, Some(GuardSpan { pass: false, .. })) {
                    span.outcome = SpanOutcome::GuardFailed;
                }
            }
        }
        self.roots = worlds
            .iter()
            .copied()
            .filter(|w| self.spans[w].parent.is_none())
            .collect();
        // Top-down clamp, breadth-first from the roots.
        let mut queue: Vec<u64> = self.roots.clone();
        while let Some(w) = queue.pop() {
            let (pstart, pend, children) = {
                let s = &self.spans[&w];
                (s.start_ns, s.end_ns, s.children.clone())
            };
            for c in children {
                let child = self.spans.get_mut(&c).expect("child span exists");
                child.start_ns = child.start_ns.clamp(pstart, pend);
                child.end_ns = child.end_ns.clamp(child.start_ns, pend);
                queue.push(c);
            }
        }
    }

    /// All spans, ascending world id.
    pub fn spans(&self) -> impl Iterator<Item = &WorldSpan> {
        self.spans.values()
    }

    /// One span by world id.
    pub fn get(&self, world: u64) -> Option<&WorldSpan> {
        self.spans.get(&world)
    }

    /// Worlds with no parent (run roots — or orphans from truncation).
    pub fn roots(&self) -> &[u64] {
        &self.roots
    }

    /// Causal edges in emission order.
    pub fn edges(&self) -> &[CausalEdge] {
        &self.edges
    }

    /// Number of worlds seen.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when no events were absorbed.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Largest virtual timestamp in the stream.
    pub fn max_vt_ns(&self) -> u64 {
        self.max_vt_ns
    }

    /// Per-worker utilization points from profiler flushes, in stream
    /// order. Empty without a profiler capture.
    pub fn worker_util(&self) -> &[WorkerUtilPoint] {
        &self.worker_util
    }

    /// Total profiler samples attributed to worlds in this tree.
    pub fn total_cpu_samples(&self) -> u64 {
        self.spans.values().map(|s| s.cpu_samples).sum()
    }

    /// The winner lineage: from the latest committing world up to its
    /// root. `None` when the stream carries no commit (timeout, all
    /// guards failed, or the tail was cut before the commit).
    pub fn critical_path(&self) -> Option<CriticalPath> {
        let winner = self
            .spans
            .values()
            .filter(|s| s.outcome == SpanOutcome::Committed)
            .max_by_key(|s| (s.end_ns, s.world))?;
        let mut worlds = vec![winner.world];
        let mut cur = winner;
        while let Some(p) = cur.parent {
            let Some(pspan) = self.spans.get(&p) else {
                break;
            };
            // Malformed input could cycle; a world never repeats on a
            // real lineage.
            if worlds.contains(&p) {
                break;
            }
            worlds.push(p);
            cur = pspan;
        }
        worlds.reverse();
        let root_start = self.spans[&worlds[0]].start_ns;
        Some(CriticalPath {
            worlds,
            commit_world: winner.world,
            commit_ns: winner.end_ns,
            total_ns: winner.end_ns.saturating_sub(root_start),
        })
    }

    /// Attribute every world to the winner lineage or to one alternative
    /// bucket. A world inherits the nearest ancestor's alt index when it
    /// has none of its own (split copies, remote restores).
    pub fn waste(&self) -> WasteReport {
        let lineage_set: Vec<u64> = self.critical_path().map(|cp| cp.worlds).unwrap_or_default();
        let mut lineage = WasteBucket::default();
        let mut buckets: BTreeMap<Option<u64>, WasteBucket> = BTreeMap::new();
        let mut total_vt = 0u64;
        for span in self.spans.values() {
            total_vt += span.duration_ns();
            let target = if lineage_set.contains(&span.world) {
                &mut lineage
            } else {
                buckets.entry(self.attributed_alt(span)).or_default()
            };
            target.worlds += 1;
            target.vt_ns += span.duration_ns();
            target.pages += span.pages_faulted();
            target.bytes += span.bytes_copied();
            target.cpu_ns += span.est_cpu_capped_ns();
        }
        WasteReport {
            lineage,
            buckets: buckets.into_iter().collect(),
            total_vt_ns: total_vt,
        }
    }

    fn attributed_alt(&self, span: &WorldSpan) -> Option<u64> {
        let mut cur = span;
        let mut hops = 0;
        loop {
            if let Some(alt) = cur.alt {
                return Some(alt);
            }
            let p = cur.parent?;
            cur = self.spans.get(&p)?;
            hops += 1;
            if hops > self.spans.len() {
                return None; // malformed parent cycle
            }
        }
    }

    /// Human-readable critical-path table.
    pub fn render_critical_path(&self) -> String {
        let mut out = String::from("== critical path (winner lineage) ==\n");
        match self.critical_path() {
            None => out.push_str("  no commit in stream\n"),
            Some(cp) => {
                let mut path_cpu = 0u64;
                for w in &cp.worlds {
                    let s = &self.spans[w];
                    let role = match s.alt {
                        Some(a) => format!("alt {a}"),
                        None => "root".to_string(),
                    };
                    let cpu = s.est_cpu_capped_ns();
                    path_cpu += cpu;
                    out.push_str(&format!(
                        "  world {:<6} {:<12} [{} .. {}]  wall={:<9} cpu={:<9} {}\n",
                        s.world,
                        role,
                        fmt_ns(s.start_ns),
                        fmt_ns(s.end_ns),
                        fmt_ns(s.duration_ns()),
                        fmt_ns(cpu),
                        s.outcome.label(),
                    ));
                }
                out.push_str(&format!(
                    "  commit at {} — path wall time {}, est on-CPU {}\n",
                    fmt_ns(cp.commit_ns),
                    fmt_ns(cp.total_ns),
                    fmt_ns(path_cpu),
                ));
            }
        }
        out
    }

    /// Human-readable waste-attribution table. Rows grow an est. CPU
    /// share column when the capture carries profiler samples.
    pub fn render_waste(&self) -> String {
        let w = self.waste();
        let total_cpu: u64 =
            w.lineage.cpu_ns + w.buckets.iter().map(|(_, b)| b.cpu_ns).sum::<u64>();
        // Without samples the bytes column stays last and unpadded, so
        // pre-prof captures replay byte-identically.
        let cpu_col = |b: &WasteBucket| -> String {
            if total_cpu == 0 {
                return String::new();
            }
            format!(
                " cpu={:<9} ({:>3.0}%)",
                fmt_ns(b.cpu_ns),
                100.0 * b.cpu_ns as f64 / total_cpu as f64
            )
        };
        let bytes_col = |b: &WasteBucket| -> String {
            if total_cpu == 0 {
                b.bytes.to_string()
            } else {
                format!("{:<9}", b.bytes)
            }
        };
        let mut out = String::from("== waste attribution ==\n");
        out.push_str(&format!(
            "  {:<14} worlds={:<4} vt={:<10} pages={:<6} bytes={}{}\n",
            "winner-lineage",
            w.lineage.worlds,
            fmt_ns(w.lineage.vt_ns),
            w.lineage.pages,
            bytes_col(&w.lineage),
            cpu_col(&w.lineage),
        ));
        for (alt, b) in &w.buckets {
            let name = match alt {
                Some(a) => format!("alt {a}"),
                None => "unattributed".to_string(),
            };
            out.push_str(&format!(
                "  {:<14} worlds={:<4} vt={:<10} pages={:<6} bytes={}{}\n",
                name,
                b.worlds,
                fmt_ns(b.vt_ns),
                b.pages,
                bytes_col(b),
                cpu_col(b),
            ));
        }
        out.push_str(&format!(
            "  total world-lifetime vt: {} (lineage {} + waste {})\n",
            fmt_ns(w.total_vt_ns),
            fmt_ns(w.lineage.vt_ns),
            fmt_ns(w.total_vt_ns.saturating_sub(w.lineage.vt_ns)),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, world: u64, parent: Option<u64>, vt: u64) -> Event {
        Event::new(kind, world, parent, vt)
    }

    /// A complete 2-alt run: world 1 is the parent, 2 loses, 3 wins.
    fn small_run() -> Vec<Event> {
        vec![
            ev(EventKind::Spawn { alt: 0 }, 2, Some(1), 10),
            ev(EventKind::Spawn { alt: 1 }, 3, Some(1), 20),
            ev(EventKind::ZeroFill { vpn: 0 }, 2, Some(1), 30),
            ev(
                EventKind::CowCopy {
                    vpn: 1,
                    bytes: 4096,
                },
                3,
                Some(1),
                40,
            ),
            ev(
                EventKind::GuardVerdict {
                    pass: true,
                    duration_ns: 5,
                    alt: None,
                    site: None,
                },
                3,
                Some(1),
                50,
            ),
            ev(EventKind::Rendezvous, 3, Some(1), 60),
            ev(
                EventKind::Commit {
                    dirty_pages: 1,
                    overhead_ns: 7,
                    site: None,
                },
                3,
                Some(1),
                70,
            ),
            ev(
                EventKind::EliminateSync {
                    overhead_ns: 3,
                    site: None,
                },
                2,
                Some(1),
                70,
            ),
        ]
    }

    #[test]
    fn builds_one_span_per_world_with_tree_edges() {
        let events = small_run();
        let tree = SpanTree::build(&events);
        assert_eq!(tree.len(), 3);
        assert_eq!(tree.roots(), &[1]);
        let winner = tree.get(3).unwrap();
        assert_eq!(winner.parent, Some(1));
        assert_eq!(winner.alt, Some(1));
        assert_eq!(winner.outcome, SpanOutcome::Committed);
        assert_eq!(winner.guard.unwrap().start_ns, 45);
        assert_eq!(winner.rendezvous_ns, Some(60));
        assert_eq!(winner.commit_dirty_pages, Some(1));
        assert_eq!(tree.get(2).unwrap().outcome, SpanOutcome::EliminatedSync);
        assert_eq!(tree.get(1).unwrap().children, vec![2, 3]);
        // Two spawn edges + one commit edge.
        let spawns = tree
            .edges()
            .iter()
            .filter(|e| e.kind == EdgeKind::Spawn)
            .count();
        assert_eq!(spawns, 2);
        assert!(tree
            .edges()
            .iter()
            .any(|e| e.kind == EdgeKind::Commit && e.src == 3 && e.dst == 1));
    }

    #[test]
    fn critical_path_is_root_to_commit() {
        let tree = SpanTree::build(&small_run());
        let cp = tree.critical_path().unwrap();
        assert_eq!(cp.worlds, vec![1, 3]);
        assert_eq!(cp.commit_world, 3);
        assert_eq!(cp.commit_ns, 70);
        assert_eq!(cp.total_ns, 60, "root opens at 10, commit at 70");
    }

    #[test]
    fn waste_partitions_total_virtual_time_exactly() {
        let tree = SpanTree::build(&small_run());
        let w = tree.waste();
        let bucket_sum: u64 = w.buckets.iter().map(|(_, b)| b.vt_ns).sum();
        assert_eq!(w.lineage.vt_ns + bucket_sum, w.total_vt_ns);
        // The loser (alt 0) burned one page.
        let alt0 = &w.buckets.iter().find(|(a, _)| *a == Some(0)).unwrap().1;
        assert_eq!(alt0.pages, 1);
        assert_eq!(alt0.worlds, 1);
        // The winner's fault is on the lineage, not in waste.
        assert_eq!(w.lineage.pages, 1);
        assert_eq!(w.lineage.bytes, 4096);
    }

    #[test]
    fn truncated_stream_yields_open_nested_spans() {
        let mut events = small_run();
        events.truncate(4); // cut before any verdict/commit
        let tree = SpanTree::build(&events);
        assert!(tree.critical_path().is_none());
        for span in tree.spans() {
            assert_eq!(span.outcome, SpanOutcome::Open);
            if let Some(p) = span.parent {
                let parent = tree.get(p).unwrap();
                assert!(parent.start_ns <= span.start_ns);
                assert!(span.end_ns <= parent.end_ns, "child escapes parent");
            }
        }
    }

    #[test]
    fn message_parent_is_a_causal_edge_not_a_tree_edge() {
        let events = vec![
            ev(EventKind::Spawn { alt: 0 }, 2, Some(1), 10),
            // World 5 receives a message *sent by* world 2.
            ev(EventKind::MsgAccept, 5, Some(2), 20),
        ];
        let tree = SpanTree::build(&events);
        assert_eq!(tree.get(5).unwrap().parent, None, "sender is not a parent");
        assert!(tree
            .edges()
            .iter()
            .any(|e| e.kind == EdgeKind::Message && e.src == 2 && e.dst == 5));
        assert_eq!(tree.get(5).unwrap().marks[0].from, Some(2));
    }

    #[test]
    fn split_and_remote_forks_are_tree_edges() {
        let events = vec![
            ev(EventKind::Spawn { alt: 0 }, 2, Some(1), 10),
            ev(EventKind::SplitSpawn, 7, Some(2), 20),
            ev(EventKind::RemoteFork { node: 3 }, 9, Some(7), 30),
        ];
        let tree = SpanTree::build(&events);
        assert_eq!(tree.get(7).unwrap().origin, SpanOrigin::SplitCopy);
        assert_eq!(tree.get(7).unwrap().parent, Some(2));
        assert_eq!(
            tree.get(9).unwrap().origin,
            SpanOrigin::RemoteForked { node: 3 }
        );
        assert_eq!(tree.roots(), &[1], "no orphan roots");
        // Split copies inherit the nearest ancestor's alt for waste.
        let w = tree.waste();
        let alt0 = &w.buckets.iter().find(|(a, _)| *a == Some(0)).unwrap().1;
        assert_eq!(alt0.worlds, 3, "alt subtree: spawned + split + rfork");
    }

    #[test]
    fn renders_mention_key_facts() {
        let tree = SpanTree::build(&small_run());
        let cp = tree.render_critical_path();
        assert!(cp.contains("world 3"), "{cp}");
        assert!(cp.contains("alt 1"), "{cp}");
        assert!(cp.contains("wall="), "{cp}");
        assert!(cp.contains("cpu="), "{cp}");
        let waste = tree.render_waste();
        assert!(waste.contains("winner-lineage"), "{waste}");
        assert!(waste.contains("alt 0"), "{waste}");
        assert!(
            !waste.contains("cpu="),
            "no samples, no cpu column: {waste}"
        );
    }

    /// `small_run` plus profiler flushes: 3 samples on the winner, 2 on
    /// the loser, one worker-util point, one stall on the loser.
    fn profiled_run() -> Vec<Event> {
        let mut events = small_run();
        events.push(ev(
            EventKind::CpuSamples {
                samples: 3,
                period_ns: 10,
                site: Some(1),
                alt: Some(1),
                phase: 2,
            },
            3,
            None,
            65,
        ));
        events.push(ev(
            EventKind::CpuSamples {
                samples: 2,
                period_ns: 10,
                site: Some(1),
                alt: Some(0),
                phase: 2,
            },
            2,
            None,
            65,
        ));
        events.push(ev(
            EventKind::WorkerUtil {
                worker: 0,
                busy: 5,
                total: 8,
            },
            0,
            None,
            65,
        ));
        events.push(ev(
            EventKind::Stall {
                site: Some(1),
                phase: 2,
                waited_ns: 40,
            },
            2,
            None,
            66,
        ));
        events
    }

    #[test]
    fn cpu_samples_attribute_without_extending_spans() {
        let plain = SpanTree::build(&small_run());
        let tree = SpanTree::build(&profiled_run());
        let winner = tree.get(3).unwrap();
        assert_eq!(winner.cpu_samples, 3);
        assert_eq!(winner.est_cpu_ns, 30);
        assert_eq!(
            winner.end_ns,
            plain.get(3).unwrap().end_ns,
            "flush must not move the wall clock"
        );
        assert_eq!(tree.total_cpu_samples(), 5);
        // The stall landed as a mark on the loser, not a new span.
        assert!(tree.get(2).unwrap().marks.iter().any(|m| m.what == "stall"));
        assert!(tree.get(0).is_none(), "world-0 events must not open spans");
        assert_eq!(
            tree.worker_util(),
            &[WorkerUtilPoint {
                vt_ns: 65,
                worker: 0,
                busy: 5,
                total: 8,
            }]
        );
    }

    #[test]
    fn est_cpu_is_capped_at_wall_time() {
        let mut events = small_run();
        // 1000 samples × 10ns ≫ the loser's 60ns lifetime.
        events.push(ev(
            EventKind::CpuSamples {
                samples: 1000,
                period_ns: 10,
                site: None,
                alt: Some(0),
                phase: 2,
            },
            2,
            None,
            65,
        ));
        let tree = SpanTree::build(&events);
        let loser = tree.get(2).unwrap();
        assert_eq!(loser.est_cpu_ns, 10_000, "raw sum is kept");
        assert_eq!(loser.est_cpu_capped_ns(), loser.duration_ns());
        // The waste table charges the capped value.
        let w = tree.waste();
        let alt0 = &w.buckets.iter().find(|(a, _)| *a == Some(0)).unwrap().1;
        assert_eq!(alt0.cpu_ns, loser.duration_ns());
    }

    #[test]
    fn renders_grow_cpu_columns_with_samples() {
        let tree = SpanTree::build(&profiled_run());
        let cp = tree.render_critical_path();
        assert!(cp.contains("cpu=30ns"), "{cp}");
        assert!(cp.contains("est on-CPU"), "{cp}");
        let waste = tree.render_waste();
        assert!(waste.contains("cpu="), "{waste}");
        assert!(waste.contains("%"), "{waste}");
    }
}
