//! The page store: worlds, COW faults, fork and adopt.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

use parking_lot::RwLock;
use worlds_obs::{Event, EventKind, Registry};

use crate::error::{PageStoreError, Result};
use crate::frame::{FrameId, FrameTable};
use crate::map::PageMap;
use crate::page::{PageData, Vpn};
use crate::stats::{StatsInner, StoreStats, WorldStats};

/// Identifier of a world (a speculative address space).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WorldId(pub(crate) u64);

impl WorldId {
    /// Raw id, for diagnostics.
    pub fn raw(self) -> u64 {
        self.0
    }
}

#[derive(Debug)]
struct World {
    map: PageMap,
    parent: Option<WorldId>,
    stats: WorldStats,
}

#[derive(Debug)]
struct Inner {
    frames: FrameTable,
    worlds: HashMap<u64, World>,
    /// Parent at creation time for every world ever created. Survives world
    /// drops so `adopt` can verify descent through eliminated intermediates.
    lineage: HashMap<u64, Option<u64>>,
    next_world: u64,
}

/// A thread-safe single-level store of fixed-size pages with copy-on-write
/// world forking.
///
/// Cloning a `PageStore` is cheap: clones share the same underlying store
/// (it is an `Arc` internally), so the thread executor can hand one to each
/// alternative.
#[derive(Clone)]
pub struct PageStore {
    inner: Arc<RwLock<Inner>>,
    stats: Arc<StatsInner>,
    page_size: usize,
    obs: Registry,
    /// Virtual-time stamp for emitted events, settable by whoever owns the
    /// clock (the kernel simulator); standalone users leave it at 0.
    clock: Arc<AtomicU64>,
}

impl std::fmt::Debug for PageStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.read();
        f.debug_struct("PageStore")
            .field("page_size", &self.page_size)
            .field("worlds", &inner.worlds.len())
            .field("live_frames", &inner.frames.live_frames())
            .finish()
    }
}

impl PageStore {
    /// A new, empty store with the given page size (bytes). Page size must
    /// be nonzero; the paper's machines used 2 KiB (3B2) and 4 KiB (HP).
    pub fn new(page_size: usize) -> Self {
        Self::with_obs(page_size, Registry::disabled())
    }

    /// Like [`PageStore::new`], with an observability registry: every CoW
    /// copy, zero fill, and checkpoint emits an event, and the registry's
    /// `frames_resident` gauge tracks live frames.
    pub fn with_obs(page_size: usize, obs: Registry) -> Self {
        assert!(page_size > 0, "page size must be nonzero");
        PageStore {
            inner: Arc::new(RwLock::new(Inner {
                frames: FrameTable::new(),
                worlds: HashMap::new(),
                lineage: HashMap::new(),
                next_world: 1,
            })),
            stats: Arc::new(StatsInner::default()),
            page_size,
            obs,
            clock: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The store's observability registry (disabled unless constructed
    /// with [`PageStore::with_obs`] / [`PageStore::set_obs`]).
    pub fn obs(&self) -> &Registry {
        &self.obs
    }

    /// Attach a registry after construction. Call before handing out
    /// clones: clones made earlier keep the registry they were built with.
    pub fn set_obs(&mut self, obs: Registry) {
        self.obs = obs;
    }

    /// Set the virtual-time stamp applied to subsequently emitted events.
    /// Shared by all clones of this store.
    pub fn set_clock_ns(&self, ns: u64) {
        self.clock.store(ns, Relaxed);
    }

    /// The current virtual-time stamp (last [`PageStore::set_clock_ns`]).
    pub fn clock_ns(&self) -> u64 {
        self.vt()
    }

    fn vt(&self) -> u64 {
        self.clock.load(Relaxed)
    }

    fn sync_frames_gauge(&self, inner: &Inner) {
        self.obs.with(|o| {
            o.stats
                .frames_resident
                .set(inner.frames.live_frames() as u64)
        });
    }

    /// The store's page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Create a fresh root world with an empty (all demand-zero) map.
    pub fn create_world(&self) -> WorldId {
        let mut inner = self.inner.write();
        let id = WorldId(inner.next_world);
        inner.next_world += 1;
        inner.lineage.insert(id.0, None);
        inner.worlds.insert(
            id.0,
            World {
                map: PageMap::new(),
                parent: None,
                stats: WorldStats::default(),
            },
        );
        id
    }

    /// Fork `parent` into a new child world that shares every page
    /// copy-on-write. Only the page map is copied (page-map inheritance,
    /// §2.3); no page bytes move.
    pub fn fork_world(&self, parent: WorldId) -> Result<WorldId> {
        let mut inner = self.inner.write();
        let (map, inherited) = {
            let p = inner
                .worlds
                .get(&parent.0)
                .ok_or(PageStoreError::NoSuchWorld(parent.0))?;
            (p.map.clone(), p.map.mapped_pages() as u64)
        };
        for (_, frame) in map.iter() {
            inner.frames.incref(frame);
        }
        let id = WorldId(inner.next_world);
        inner.next_world += 1;
        inner.lineage.insert(id.0, Some(parent.0));
        inner.worlds.insert(
            id.0,
            World {
                map,
                parent: Some(parent),
                stats: WorldStats {
                    pages_inherited: inherited,
                    ..WorldStats::default()
                },
            },
        );
        self.stats.forks.incr();
        Ok(id)
    }

    /// Read `len` bytes at `offset` within page `vpn` of `world`. Unmapped
    /// pages read as zeroes (demand-zero semantics).
    pub fn read(&self, world: WorldId, vpn: Vpn, offset: usize, buf: &mut [u8]) -> Result<()> {
        self.check_bounds(offset, buf.len())?;
        let inner = self.inner.read();
        let w = inner
            .worlds
            .get(&world.0)
            .ok_or(PageStoreError::NoSuchWorld(world.0))?;
        match w.map.get(vpn) {
            Some(frame) => {
                buf.copy_from_slice(&inner.frames.data(frame).bytes()[offset..offset + buf.len()]);
            }
            None => buf.fill(0),
        }
        self.stats.reads.incr();
        Ok(())
    }

    /// Convenience: read into a freshly allocated `Vec`.
    pub fn read_vec(&self, world: WorldId, vpn: Vpn, offset: usize, len: usize) -> Result<Vec<u8>> {
        let mut v = vec![0u8; len];
        self.read(world, vpn, offset, &mut v)?;
        Ok(v)
    }

    /// Write `data` at `offset` within page `vpn` of `world`, taking a COW
    /// fault if the page is shared with any other world.
    pub fn write(&self, world: WorldId, vpn: Vpn, offset: usize, data: &[u8]) -> Result<()> {
        self.check_bounds(offset, data.len())?;
        let mut inner = self.inner.write();
        if !inner.worlds.contains_key(&world.0) {
            return Err(PageStoreError::NoSuchWorld(world.0));
        }
        let frame = self.ensure_private_page(&mut inner, world, vpn);
        inner.frames.data_mut(frame).bytes_mut()[offset..offset + data.len()].copy_from_slice(data);
        self.stats.writes.incr();
        Ok(())
    }

    /// Atomically replace `parent`'s page map with `child`'s and destroy the
    /// child: the `alt_wait` commit. After `adopt`, reads in `parent` see
    /// exactly what the child saw; the child id is gone. The child must be a
    /// descendant of `parent` (transitively), mirroring the paper's
    /// parent/child rendezvous.
    pub fn adopt(&self, parent: WorldId, child: WorldId) -> Result<()> {
        let mut inner = self.inner.write();
        if !inner.worlds.contains_key(&parent.0) {
            return Err(PageStoreError::NoSuchWorld(parent.0));
        }
        if !inner.worlds.contains_key(&child.0) {
            return Err(PageStoreError::NoSuchWorld(child.0));
        }
        // Verify lineage: walk the child's parent chain up to `parent`,
        // through intermediates even if they were already eliminated.
        let mut cur = child.0;
        let mut is_descendant = false;
        while let Some(&Some(p)) = inner.lineage.get(&cur) {
            if p == parent.0 {
                is_descendant = true;
                break;
            }
            cur = p;
        }
        if !is_descendant {
            return Err(PageStoreError::NotAChild {
                parent: parent.0,
                child: child.0,
            });
        }

        // Remove the child world; its map (with its refcounts) transfers to
        // the parent wholesale, so no refcount traffic is needed for it.
        let child_world = inner.worlds.remove(&child.0).expect("checked above");
        let old_map = {
            let p = inner.worlds.get_mut(&parent.0).expect("checked above");
            std::mem::replace(&mut p.map, child_world.map)
        };
        for (_, frame) in old_map.iter() {
            inner.frames.decref(frame);
        }
        // Fold the child's copy accounting into the parent so write-fraction
        // measurements survive the commit.
        let p = inner.worlds.get_mut(&parent.0).expect("checked above");
        p.stats.pages_cowed += child_world.stats.pages_cowed;
        p.stats.pages_zero_filled += child_world.stats.pages_zero_filled;
        self.stats.adopts.incr();
        self.sync_frames_gauge(&inner);
        Ok(())
    }

    /// Destroy a world (sibling elimination). All of its map's references
    /// are dropped; frames shared with survivors live on.
    pub fn drop_world(&self, world: WorldId) -> Result<()> {
        let mut inner = self.inner.write();
        let w = inner
            .worlds
            .remove(&world.0)
            .ok_or(PageStoreError::NoSuchWorld(world.0))?;
        for (_, frame) in w.map.iter() {
            inner.frames.decref(frame);
        }
        self.stats.worlds_dropped.incr();
        self.sync_frames_gauge(&inner);
        Ok(())
    }

    /// Does this world currently exist?
    pub fn world_exists(&self, world: WorldId) -> bool {
        self.inner.read().worlds.contains_key(&world.0)
    }

    /// Number of live worlds.
    pub fn world_count(&self) -> usize {
        self.inner.read().worlds.len()
    }

    /// Number of live physical frames (for leak checks and memory
    /// accounting: `live_frames * page_size` bytes of page data).
    pub fn live_frames(&self) -> usize {
        self.inner.read().frames.live_frames()
    }

    /// The VPNs currently mapped in `world`, ascending.
    pub fn mapped_vpns(&self, world: WorldId) -> Result<Vec<Vpn>> {
        let inner = self.inner.read();
        inner
            .worlds
            .get(&world.0)
            .map(|w| w.map.iter().map(|(v, _)| v).collect())
            .ok_or(PageStoreError::NoSuchWorld(world.0))
    }

    /// Number of pages mapped in `world`.
    pub fn mapped_pages(&self, world: WorldId) -> Result<usize> {
        let inner = self.inner.read();
        inner
            .worlds
            .get(&world.0)
            .map(|w| w.map.mapped_pages())
            .ok_or(PageStoreError::NoSuchWorld(world.0))
    }

    /// VPNs at which `a` and `b` differ (see [`PageMap::diff`]).
    pub fn diff_worlds(&self, a: WorldId, b: WorldId) -> Result<Vec<Vpn>> {
        let inner = self.inner.read();
        let wa = inner
            .worlds
            .get(&a.0)
            .ok_or(PageStoreError::NoSuchWorld(a.0))?;
        let wb = inner
            .worlds
            .get(&b.0)
            .ok_or(PageStoreError::NoSuchWorld(b.0))?;
        Ok(wa.map.diff(&wb.map))
    }

    /// Frame-sharing histogram: `histogram[k]` = number of live frames
    /// referenced by exactly `k+1` worlds. The paper's memory argument in
    /// one structure: heavy sharing (mass at high `k`) is what makes
    /// speculation affordable.
    pub fn sharing_histogram(&self) -> Vec<usize> {
        let inner = self.inner.read();
        let mut counts: HashMap<u32, usize> = HashMap::new();
        for w in inner.worlds.values() {
            for (_, frame) in w.map.iter() {
                *counts.entry(frame.index()).or_insert(0) += 1;
            }
        }
        let mut hist = Vec::new();
        for (_, refs) in counts {
            if hist.len() < refs {
                hist.resize(refs, 0);
            }
            hist[refs - 1] += 1;
        }
        hist
    }

    /// Mean number of worlds referencing each live frame (1.0 = no
    /// sharing at all; higher = more COW leverage).
    pub fn sharing_factor(&self) -> f64 {
        let hist = self.sharing_histogram();
        let frames: usize = hist.iter().sum();
        if frames == 0 {
            return 1.0;
        }
        let refs: usize = hist.iter().enumerate().map(|(i, &n)| (i + 1) * n).sum();
        refs as f64 / frames as f64
    }

    /// Store-wide counters snapshot.
    pub fn stats(&self) -> StoreStats {
        self.stats.snapshot()
    }

    /// Per-world counters snapshot.
    pub fn world_stats(&self, world: WorldId) -> Result<WorldStats> {
        let inner = self.inner.read();
        inner
            .worlds
            .get(&world.0)
            .map(|w| w.stats)
            .ok_or(PageStoreError::NoSuchWorld(world.0))
    }

    /// Parent of `world`, if it was forked rather than created.
    pub fn parent_of(&self, world: WorldId) -> Result<Option<WorldId>> {
        let inner = self.inner.read();
        inner
            .worlds
            .get(&world.0)
            .map(|w| w.parent)
            .ok_or(PageStoreError::NoSuchWorld(world.0))
    }

    fn check_bounds(&self, offset: usize, len: usize) -> Result<()> {
        if offset
            .checked_add(len)
            .is_none_or(|end| end > self.page_size)
        {
            Err(PageStoreError::OutOfPageBounds {
                offset,
                len,
                page_size: self.page_size,
            })
        } else {
            Ok(())
        }
    }

    /// Make page `vpn` of `world` privately writable, taking a zero-fill or
    /// COW fault as needed, and return its frame.
    fn ensure_private_page(&self, inner: &mut Inner, world: WorldId, vpn: Vpn) -> FrameId {
        let existing = inner.worlds[&world.0].map.get(vpn);
        match existing {
            None => {
                // Demand-zero fill.
                let frame = inner.frames.alloc(PageData::zeroed(self.page_size));
                let w = inner
                    .worlds
                    .get_mut(&world.0)
                    .expect("world checked by caller");
                w.map.insert(vpn, frame);
                w.stats.pages_zero_filled += 1;
                self.stats.zero_fills.incr();
                if self.obs.is_enabled() {
                    let parent = inner.worlds[&world.0].parent.map(WorldId::raw);
                    self.obs.emit(|| {
                        Event::new(EventKind::ZeroFill { vpn }, world.0, parent, self.vt())
                    });
                    self.sync_frames_gauge(inner);
                }
                frame
            }
            Some(frame) if inner.frames.refs(frame) == 1 => frame, // already private
            Some(shared) => {
                // COW fault: copy one page, remap, drop one ref on the old.
                let copy = inner.frames.data(shared).clone();
                let new_frame = inner.frames.alloc(copy);
                let w = inner
                    .worlds
                    .get_mut(&world.0)
                    .expect("world checked by caller");
                w.map.insert(vpn, new_frame);
                w.stats.pages_cowed += 1;
                inner.frames.decref(shared);
                self.stats.cow_faults.incr();
                self.stats.bytes_copied.add(self.page_size as u64);
                if self.obs.is_enabled() {
                    let parent = inner.worlds[&world.0].parent.map(WorldId::raw);
                    let bytes = self.page_size as u64;
                    self.obs.emit(|| {
                        Event::new(
                            EventKind::CowCopy { vpn, bytes },
                            world.0,
                            parent,
                            self.vt(),
                        )
                    });
                    self.sync_frames_gauge(inner);
                }
                new_frame
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PAGE_SIZE_DEFAULT;

    fn store() -> PageStore {
        PageStore::new(64)
    }

    #[test]
    fn demand_zero_reads() {
        let s = store();
        let w = s.create_world();
        assert_eq!(s.read_vec(w, 99, 0, 8).unwrap(), vec![0u8; 8]);
        assert_eq!(
            s.mapped_pages(w).unwrap(),
            0,
            "reads must not materialise pages"
        );
    }

    #[test]
    fn write_then_read_round_trip() {
        let s = store();
        let w = s.create_world();
        s.write(w, 3, 10, b"hello").unwrap();
        assert_eq!(s.read_vec(w, 3, 10, 5).unwrap(), b"hello");
        assert_eq!(s.mapped_pages(w).unwrap(), 1);
        assert_eq!(s.stats().zero_fills, 1);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let s = store();
        let w = s.create_world();
        let err = s.write(w, 0, 60, b"too long").unwrap_err();
        assert!(matches!(err, PageStoreError::OutOfPageBounds { .. }));
        let mut buf = [0u8; 8];
        let err = s.read(w, 0, 60, &mut buf).unwrap_err();
        assert!(matches!(err, PageStoreError::OutOfPageBounds { .. }));
    }

    #[test]
    fn offset_plus_len_overflow_rejected() {
        let s = store();
        let w = s.create_world();
        let err = s.write(w, 0, usize::MAX, b"x").unwrap_err();
        assert!(matches!(err, PageStoreError::OutOfPageBounds { .. }));
    }

    #[test]
    fn fork_shares_pages_without_copying() {
        let s = store();
        let parent = s.create_world();
        for vpn in 0..10 {
            s.write(parent, vpn, 0, &[vpn as u8]).unwrap();
        }
        let before = s.stats();
        let child = s.fork_world(parent).unwrap();
        let after = s.stats();
        assert_eq!(
            after.delta_since(&before).bytes_copied,
            0,
            "fork must copy no page bytes"
        );
        assert_eq!(s.live_frames(), 10, "no new frames at fork");
        for vpn in 0..10 {
            assert_eq!(s.read_vec(child, vpn, 0, 1).unwrap(), vec![vpn as u8]);
        }
        assert_eq!(s.world_stats(child).unwrap().pages_inherited, 10);
    }

    #[test]
    fn cow_fault_copies_exactly_one_page() {
        let s = store();
        let parent = s.create_world();
        for vpn in 0..10 {
            s.write(parent, vpn, 0, &[1]).unwrap();
        }
        let child = s.fork_world(parent).unwrap();
        let before = s.stats();
        s.write(child, 4, 0, &[2]).unwrap();
        let d = s.stats().delta_since(&before);
        assert_eq!(d.cow_faults, 1);
        assert_eq!(d.bytes_copied, 64);
        // Parent unchanged; child sees its write.
        assert_eq!(s.read_vec(parent, 4, 0, 1).unwrap(), vec![1]);
        assert_eq!(s.read_vec(child, 4, 0, 1).unwrap(), vec![2]);
        assert_eq!(s.live_frames(), 11);
    }

    #[test]
    fn second_write_to_private_page_takes_no_fault() {
        let s = store();
        let parent = s.create_world();
        s.write(parent, 0, 0, &[1]).unwrap();
        let child = s.fork_world(parent).unwrap();
        s.write(child, 0, 0, &[2]).unwrap();
        let before = s.stats();
        s.write(child, 0, 1, &[3]).unwrap();
        assert_eq!(s.stats().delta_since(&before).cow_faults, 0);
    }

    #[test]
    fn parent_write_also_cows_when_shared() {
        // COW is symmetric: if the *parent* writes a shared page first, the
        // child must keep the pre-fork contents.
        let s = store();
        let parent = s.create_world();
        s.write(parent, 0, 0, &[1]).unwrap();
        let child = s.fork_world(parent).unwrap();
        s.write(parent, 0, 0, &[9]).unwrap();
        assert_eq!(s.read_vec(child, 0, 0, 1).unwrap(), vec![1]);
        assert_eq!(s.read_vec(parent, 0, 0, 1).unwrap(), vec![9]);
    }

    #[test]
    fn adopt_commits_child_state_atomically() {
        let s = store();
        let parent = s.create_world();
        s.write(parent, 0, 0, b"AAAA").unwrap();
        s.write(parent, 1, 0, b"BBBB").unwrap();
        let child = s.fork_world(parent).unwrap();
        s.write(child, 1, 0, b"CCCC").unwrap();
        s.write(child, 2, 0, b"DDDD").unwrap();
        s.adopt(parent, child).unwrap();
        assert!(!s.world_exists(child));
        assert_eq!(s.read_vec(parent, 0, 0, 4).unwrap(), b"AAAA");
        assert_eq!(s.read_vec(parent, 1, 0, 4).unwrap(), b"CCCC");
        assert_eq!(s.read_vec(parent, 2, 0, 4).unwrap(), b"DDDD");
        assert_eq!(s.stats().adopts, 1);
    }

    #[test]
    fn adopt_frees_replaced_frames() {
        let s = store();
        let parent = s.create_world();
        s.write(parent, 0, 0, &[1]).unwrap();
        let child = s.fork_world(parent).unwrap();
        s.write(child, 0, 0, &[2]).unwrap(); // now 2 frames
        assert_eq!(s.live_frames(), 2);
        s.adopt(parent, child).unwrap();
        assert_eq!(s.live_frames(), 1, "parent's old frame must be freed");
    }

    #[test]
    fn adopt_accepts_grandchildren() {
        let s = store();
        let a = s.create_world();
        let b = s.fork_world(a).unwrap();
        let c = s.fork_world(b).unwrap();
        s.write(c, 0, 0, &[7]).unwrap();
        s.drop_world(b).unwrap();
        s.adopt(a, c).unwrap();
        assert_eq!(s.read_vec(a, 0, 0, 1).unwrap(), vec![7]);
    }

    #[test]
    fn adopt_rejects_unrelated_worlds() {
        let s = store();
        let a = s.create_world();
        let b = s.create_world();
        let err = s.adopt(a, b).unwrap_err();
        assert!(matches!(err, PageStoreError::NotAChild { .. }));
        // Sibling is not a child either.
        let p = s.create_world();
        let c1 = s.fork_world(p).unwrap();
        let c2 = s.fork_world(p).unwrap();
        assert!(matches!(
            s.adopt(c1, c2),
            Err(PageStoreError::NotAChild { .. })
        ));
    }

    #[test]
    fn drop_world_releases_private_frames_only() {
        let s = store();
        let parent = s.create_world();
        s.write(parent, 0, 0, &[1]).unwrap();
        let child = s.fork_world(parent).unwrap();
        s.write(child, 1, 0, &[2]).unwrap();
        assert_eq!(s.live_frames(), 2);
        s.drop_world(child).unwrap();
        assert_eq!(
            s.live_frames(),
            1,
            "shared frame survives, private frame freed"
        );
        assert_eq!(s.read_vec(parent, 0, 0, 1).unwrap(), vec![1]);
    }

    #[test]
    fn operations_on_dead_world_fail() {
        let s = store();
        let w = s.create_world();
        s.drop_world(w).unwrap();
        assert!(matches!(
            s.write(w, 0, 0, &[1]),
            Err(PageStoreError::NoSuchWorld(_))
        ));
        assert!(matches!(
            s.read_vec(w, 0, 0, 1),
            Err(PageStoreError::NoSuchWorld(_))
        ));
        assert!(matches!(
            s.drop_world(w),
            Err(PageStoreError::NoSuchWorld(_))
        ));
        assert!(matches!(
            s.fork_world(w),
            Err(PageStoreError::NoSuchWorld(_))
        ));
    }

    #[test]
    fn write_fraction_accounting() {
        let s = store();
        let parent = s.create_world();
        for vpn in 0..10 {
            s.write(parent, vpn, 0, &[1]).unwrap();
        }
        let child = s.fork_world(parent).unwrap();
        for vpn in 0..3 {
            s.write(child, vpn, 0, &[2]).unwrap();
        }
        let ws = s.world_stats(child).unwrap();
        assert_eq!(ws.write_fraction(), Some(0.3));
    }

    #[test]
    fn diff_worlds_reports_divergence() {
        let s = store();
        let parent = s.create_world();
        s.write(parent, 0, 0, &[1]).unwrap();
        s.write(parent, 1, 0, &[1]).unwrap();
        let child = s.fork_world(parent).unwrap();
        s.write(child, 1, 0, &[2]).unwrap();
        s.write(child, 5, 0, &[2]).unwrap();
        assert_eq!(s.diff_worlds(parent, child).unwrap(), vec![1, 5]);
    }

    #[test]
    fn many_sibling_worlds_share_state() {
        let s = store();
        let parent = s.create_world();
        for vpn in 0..8 {
            s.write(parent, vpn, 0, &[0xEE]).unwrap();
        }
        let kids: Vec<_> = (0..16).map(|_| s.fork_world(parent).unwrap()).collect();
        assert_eq!(s.live_frames(), 8, "16 forks, zero page copies");
        for (i, &k) in kids.iter().enumerate() {
            s.write(k, 0, 0, &[i as u8]).unwrap();
        }
        assert_eq!(s.live_frames(), 8 + 16);
        // Eliminate all siblings.
        for &k in &kids {
            s.drop_world(k).unwrap();
        }
        assert_eq!(s.live_frames(), 8);
        assert_eq!(s.stats().worlds_dropped, 16);
    }

    #[test]
    fn default_page_size_store() {
        let s = PageStore::new(PAGE_SIZE_DEFAULT);
        assert_eq!(s.page_size(), 4096);
        let w = s.create_world();
        s.write(w, 0, 4090, &[1, 2, 3, 4, 5, 6]).unwrap();
        assert_eq!(s.read_vec(w, 0, 4090, 6).unwrap(), vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn parent_of_tracks_lineage() {
        let s = store();
        let a = s.create_world();
        let b = s.fork_world(a).unwrap();
        assert_eq!(s.parent_of(a).unwrap(), None);
        assert_eq!(s.parent_of(b).unwrap(), Some(a));
    }

    #[test]
    fn sharing_histogram_reflects_cow_structure() {
        let s = store();
        let parent = s.create_world();
        for vpn in 0..4 {
            s.write(parent, vpn, 0, &[1]).unwrap();
        }
        assert_eq!(
            s.sharing_histogram(),
            vec![4],
            "4 frames, each singly referenced"
        );
        assert_eq!(s.sharing_factor(), 1.0);

        let c1 = s.fork_world(parent).unwrap();
        let _c2 = s.fork_world(parent).unwrap();
        // All 4 frames now shared by 3 worlds.
        assert_eq!(s.sharing_histogram(), vec![0, 0, 4]);
        assert_eq!(s.sharing_factor(), 3.0);

        s.write(c1, 0, 0, &[2]).unwrap();
        // Frame 0 split: one private (c1) + one shared by 2 (parent, c2);
        // frames 1..3 still shared by 3.
        let h = s.sharing_histogram();
        assert_eq!(h, vec![1, 1, 3]);
        assert!(s.sharing_factor() > 2.0 && s.sharing_factor() < 3.0);
    }

    #[test]
    fn concurrent_children_do_not_interfere() {
        use std::thread;
        let s = PageStore::new(256);
        let parent = s.create_world();
        for vpn in 0..32 {
            s.write(parent, vpn, 0, &[0xFF]).unwrap();
        }
        let kids: Vec<_> = (0..4).map(|_| s.fork_world(parent).unwrap()).collect();
        let handles: Vec<_> = kids
            .iter()
            .map(|&k| {
                let s = s.clone();
                thread::spawn(move || {
                    for vpn in 0..32u64 {
                        s.write(k, vpn, 0, &[k.raw() as u8]).unwrap();
                        let got = s.read_vec(k, vpn, 0, 1).unwrap();
                        assert_eq!(got, vec![k.raw() as u8]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Parent still sees pre-fork bytes everywhere.
        for vpn in 0..32 {
            assert_eq!(s.read_vec(parent, vpn, 0, 1).unwrap(), vec![0xFF]);
        }
    }
}
