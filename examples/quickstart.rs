//! Quickstart: run mutually exclusive alternatives in parallel, commit
//! exactly one.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Three methods race to "solve" the same problem over shared speculative
//! state; the fastest one whose guard holds wins, its state and output are
//! committed, and the losers' side effects vanish as if they never ran.

use std::time::Duration;

use worlds::{AltBlock, Alternative, ElimMode, Speculation};

fn main() {
    let spec = Speculation::new();

    // Shared sink state, visible to every alternative at spawn time.
    spec.setup(|ctx| {
        ctx.put_u64("input", 1_000_000)?;
        ctx.print("parent: state initialised");
        Ok(())
    })
    .expect("setup runs in the resolved root world");

    let report = spec.run(
        AltBlock::new()
            // A slow but reliable method.
            .alt("exhaustive", |ctx| {
                let n = ctx.get_u64("input").expect("setup wrote it");
                let mut acc = 0u64;
                for i in 0..n {
                    acc = acc.wrapping_add(i);
                    if i % 65_536 == 0 {
                        ctx.checkpoint()?; // cooperative elimination point
                    }
                }
                ctx.put_u64("answer", acc)?;
                ctx.print("exhaustive: done the long way");
                Ok(acc)
            })
            // A fast closed-form method.
            .alt("closed-form", |ctx| {
                let n = ctx.get_u64("input").expect("setup wrote it");
                let acc = (n * (n - 1)) / 2;
                ctx.put_u64("answer", acc)?;
                ctx.print("closed-form: n(n-1)/2");
                Ok(acc)
            })
            // A heuristic whose guard rejects its (wrong) result.
            .alternative(
                Alternative::new("bad-heuristic", |ctx| {
                    ctx.put_u64("answer", 42)?; // speculative garbage
                    Ok(42u64)
                })
                .guard(|&v| v > 1_000), // at-sync guard: 42 never commits
            )
            .timeout(Duration::from_secs(10))
            .elim(ElimMode::Sync),
    );

    println!("outcome:  {:?}", report.outcome);
    println!("value:    {:?}", report.value);
    println!("wall:     {:?}", report.wall);
    for alt in &report.alts {
        println!("  alt {:<12} -> {:?}", alt.label, alt.status);
    }

    // Only the winner's writes are visible in the committed world.
    let committed = spec.read(|ctx| ctx.get_u64("answer"));
    println!("committed answer: {committed:?}");
    println!("observable output: {:?}", spec.tty().output_strings());

    let expected = (1_000_000u64 * 999_999) / 2;
    assert_eq!(
        committed,
        Some(expected),
        "exactly one correct result committed"
    );
    let _ = report
        .value
        .map(|v| assert_eq!(v, expected, "the winning value matches the committed state"));

    // The failed heuristic's garbage never leaked, even though it wrote
    // `answer` in its own world.
    let guard_failures: Vec<_> = report
        .alts
        .iter()
        .filter(|a| matches!(a.status, worlds::AltRunStatus::Failed(_)))
        .map(|a| a.label.as_str())
        .collect();
    println!("rejected alternatives: {guard_failures:?}");
}
