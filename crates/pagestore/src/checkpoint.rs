//! World checkpoint/restore — the `rfork()` substrate.
//!
//! §3.4: the distributed case was implemented with a *remote fork* built
//! on checkpoint/restart — "the state of the process was dumped into a
//! file in such a way that the file is executable; a bootstrapping routine
//! restores the registers and data segments and returns control to the
//! caller". We reproduce the state-shipping half: a world's pages
//! serialise to a self-describing byte image and restore into any store
//! (including another store, standing in for another node). The measured
//! image size × link bandwidth is exactly the ~1 s rfork cost the
//! `CostModel::rfork_lan` preset encodes.
//!
//! Image format (little-endian):
//!
//! ```text
//! magic "MWCK" | version u32 | page_size u64 | page_count u64
//! then per page: vpn u64 | page_size bytes
//! ```

use crate::error::{PageStoreError, Result};
use crate::store::{PageStore, WorldId};

const MAGIC: &[u8; 4] = b"MWCK";
const VERSION: u32 = 1;

/// Serialise every mapped page of `world` into a checkpoint image.
pub fn checkpoint(store: &PageStore, world: WorldId) -> Result<Vec<u8>> {
    let started = std::time::Instant::now();
    let pages = store.mapped_vpns(world)?;
    let page_size = store.page_size();
    let mut out = Vec::with_capacity(24 + pages.len() * (8 + page_size));
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(page_size as u64).to_le_bytes());
    out.extend_from_slice(&(pages.len() as u64).to_le_bytes());
    let mut buf = vec![0u8; page_size];
    let page_count = pages.len() as u64;
    for vpn in pages {
        out.extend_from_slice(&vpn.to_le_bytes());
        store.read(world, vpn, 0, &mut buf)?;
        out.extend_from_slice(&buf);
    }
    store.obs().emit(|| {
        let parent = store.parent_of(world).ok().flatten().map(WorldId::raw);
        worlds_obs::Event::new(
            worlds_obs::EventKind::Checkpoint {
                pages: page_count,
                bytes: out.len() as u64,
                // Serialisation is real work (not simulated), so the
                // duration is measured wall time.
                duration_ns: started.elapsed().as_nanos() as u64,
            },
            world.raw(),
            parent,
            0,
        )
    });
    Ok(out)
}

/// Restore a checkpoint image into a **new world** of `store`. The target
/// store must have the same page size as the image.
pub fn restore(store: &PageStore, image: &[u8]) -> Result<WorldId> {
    let err = |msg: &str| PageStoreError::NoSuchFile(format!("checkpoint: {msg}"));
    if image.len() < 24 || &image[0..4] != MAGIC {
        return Err(err("bad magic"));
    }
    let version = u32::from_le_bytes(image[4..8].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(err("unsupported version"));
    }
    let page_size = u64::from_le_bytes(image[8..16].try_into().expect("8 bytes")) as usize;
    if page_size != store.page_size() {
        return Err(err("page size mismatch"));
    }
    let count = u64::from_le_bytes(image[16..24].try_into().expect("8 bytes")) as usize;
    let record = 8 + page_size;
    if image.len() != 24 + count * record {
        return Err(err("truncated image"));
    }
    let world = store.create_world();
    for i in 0..count {
        let off = 24 + i * record;
        let vpn = u64::from_le_bytes(image[off..off + 8].try_into().expect("8 bytes"));
        store.write(world, vpn, 0, &image[off + 8..off + record])?;
    }
    Ok(world)
}

/// Size in bytes a checkpoint of `world` would occupy — the quantity the
/// remote-fork cost is proportional to (the paper shipped a 70 KB
/// process in ≈ 1 s).
pub fn checkpoint_size(store: &PageStore, world: WorldId) -> Result<usize> {
    let pages = store.mapped_pages(world)?;
    Ok(24 + pages * (8 + store.page_size()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_same_store() {
        let store = PageStore::new(64);
        let w = store.create_world();
        store.write(w, 3, 10, b"alpha").unwrap();
        store.write(w, 9, 0, b"beta").unwrap();
        let image = checkpoint(&store, w).unwrap();
        assert_eq!(image.len(), checkpoint_size(&store, w).unwrap());

        let r = restore(&store, &image).unwrap();
        assert_eq!(store.read_vec(r, 3, 10, 5).unwrap(), b"alpha");
        assert_eq!(store.read_vec(r, 9, 0, 4).unwrap(), b"beta");
        assert_eq!(
            store.read_vec(r, 0, 0, 1).unwrap(),
            vec![0],
            "unmapped stays zero"
        );
        assert_eq!(store.mapped_pages(r).unwrap(), 2);
    }

    #[test]
    fn round_trip_across_stores_simulates_remote_fork() {
        let here = PageStore::new(128);
        let there = PageStore::new(128); // "another node"
        let w = here.create_world();
        for vpn in 0..10 {
            here.write(w, vpn, 0, &[vpn as u8 + 1]).unwrap();
        }
        let image = checkpoint(&here, w).unwrap();
        let remote = restore(&there, &image).unwrap();
        for vpn in 0..10 {
            assert_eq!(
                there.read_vec(remote, vpn, 0, 1).unwrap(),
                vec![vpn as u8 + 1]
            );
        }
        // The two worlds are fully independent.
        there.write(remote, 0, 0, &[99]).unwrap();
        assert_eq!(here.read_vec(w, 0, 0, 1).unwrap(), vec![1]);
    }

    #[test]
    fn empty_world_checkpoints_to_header_only() {
        let store = PageStore::new(64);
        let w = store.create_world();
        let image = checkpoint(&store, w).unwrap();
        assert_eq!(image.len(), 24);
        let r = restore(&store, &image).unwrap();
        assert_eq!(store.mapped_pages(r).unwrap(), 0);
    }

    #[test]
    fn corrupt_images_are_rejected() {
        let store = PageStore::new(64);
        assert!(restore(&store, b"BOGUS").is_err());
        assert!(
            restore(&store, b"MWCK\x02\x00\x00\x00").is_err(),
            "short header"
        );
        // Valid header, wrong page size.
        let other = PageStore::new(128);
        let w = other.create_world();
        other.write(w, 0, 0, &[1]).unwrap();
        let image = checkpoint(&other, w).unwrap();
        assert!(restore(&store, &image).is_err(), "page size mismatch");
        // Truncated payload.
        let w2 = store.create_world();
        store.write(w2, 0, 0, &[1]).unwrap();
        let mut image = checkpoint(&store, w2).unwrap();
        image.truncate(image.len() - 1);
        assert!(restore(&store, &image).is_err());
    }

    #[test]
    fn seventy_kb_process_image_size() {
        // The paper's rfork shipped a 70 KB process; at 4 KiB pages that
        // is 18 pages ≈ 72 KiB + per-page headers.
        let store = PageStore::new(4096);
        let w = store.create_world();
        for vpn in 0..18 {
            store.write(w, vpn, 0, &[0xAB]).unwrap();
        }
        let size = checkpoint_size(&store, w).unwrap();
        assert!(size > 70 * 1024 && size < 80 * 1024, "size {size}");
    }
}
