//! Error vocabulary for the wire transport.

use std::fmt;
use std::io;

/// Anything that can go wrong between "caller has a request" and "caller
/// has a reply". Codec-level variants (`BadMagic`…`TooLarge`) mean the
/// *stream* is unusable and must be dropped; `Nack` means the transport
/// worked and the remote node refused the operation; `RetriesExhausted`
/// is the client giving up after its whole deadline/backoff budget.
#[derive(Debug)]
pub enum NetError {
    /// Underlying socket error (includes timeouts and resets).
    Io(io::Error),
    /// Frame did not start with `MWNF`.
    BadMagic,
    /// Frame spoke a protocol version this build does not.
    BadVersion(u8),
    /// Frame shorter than its header claims.
    Truncated,
    /// Checksum mismatch: truncation or corruption in flight.
    BadCrc,
    /// Length field exceeds [`crate::frame::MAX_PAYLOAD`].
    TooLarge(usize),
    /// Payload did not parse as the RPC its kind byte claims.
    Protocol(String),
    /// The remote node processed the request and refused it.
    Nack { code: u32, detail: String },
    /// Every attempt failed; `last` is the final attempt's error.
    RetriesExhausted { attempts: u32, last: Box<NetError> },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "io: {e}"),
            NetError::BadMagic => f.write_str("bad frame magic"),
            NetError::BadVersion(v) => write!(f, "unsupported frame version {v}"),
            NetError::Truncated => f.write_str("truncated frame"),
            NetError::BadCrc => f.write_str("frame checksum mismatch"),
            NetError::TooLarge(n) => write!(f, "frame payload of {n} bytes exceeds cap"),
            NetError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            NetError::Nack { code, detail } => write!(
                f,
                "remote nack ({} code {code}): {detail}",
                crate::rpc::nack::reason(*code)
            ),
            NetError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts: {last}")
            }
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

impl NetError {
    /// Whether the failure is worth a retry on a fresh connection.
    /// Nacks are not: the server spoke, and asking again with the same
    /// correlation id would just replay the same answer.
    pub fn is_retryable(&self) -> bool {
        !matches!(self, NetError::Nack { .. } | NetError::BadVersion(_))
    }

    /// The nack reason code, if the remote refused the operation.
    pub fn nack_code(&self) -> Option<u32> {
        match self {
            NetError::Nack { code, .. } => Some(*code),
            NetError::RetriesExhausted { last, .. } => last.nack_code(),
            _ => None,
        }
    }

    /// Whether the failure was a read/write deadline expiring.
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            NetError::Io(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
        )
    }
}

pub type Result<T> = std::result::Result<T, NetError>;
