//! The persistent work-stealing pool.
//!
//! One [`Executor`] outlives every speculation block that runs on it, so
//! the per-block cost of `alt_spawn` drops from "create an OS thread per
//! alternative" to "push a closure onto a deque". The layout is the
//! classic work-stealing shape:
//!
//! * each permanent worker owns a **LIFO deque**: it pushes and pops at
//!   the back, so nested speculation (a task spawning sub-tasks) runs
//!   depth-first with warm caches;
//! * other workers **steal from the front** of a victim's deque, taking
//!   the oldest — and therefore likely largest — piece of work;
//! * submissions from threads outside the pool land in a shared
//!   **injector** queue that every worker drains before stealing.
//!
//! # Reserve-or-spawn: why blocking tasks cannot starve the pool
//!
//! Speculation tasks are arbitrary closures: they sleep, wait on
//! channels, and run *nested* blocks whose parent waits for its own
//! children. A fixed pool would deadlock the moment every worker blocks
//! while the tasks that would unblock them sit queued. This pool makes a
//! stronger guarantee, enforced at submission time: **after every
//! `spawn`, the number of queued tasks never exceeds the number of
//! workers not currently running a task.** If it would, the pool spawns
//! a temporary *fallback* worker (counted in
//! `ExecCounters::fallback_threads`) that drains queues and exits once
//! they are empty. Free workers only become busy by taking a queued
//! task, only go idle when the queue is empty, and fallback workers only
//! exit when the queue is empty — so every queued task always has a
//! runner reserved for it, no matter what the executing tasks do. The
//! common case (blocks no wider than the pool, submitted from a quiet
//! pool) runs entirely on persistent workers; the pathological case
//! degrades to exactly the old thread-per-alternative behaviour.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

use worlds_obs::Registry;

/// Environment variable overriding the global pool's worker count.
pub const WORKERS_ENV: &str = "WORLDS_EXEC_THREADS";

type TaskFn = Box<dyn FnOnce() + Send + 'static>;

/// A unit of work plus the registry its execution is attributed to.
struct Task {
    run: TaskFn,
    obs: Registry,
}

/// Where a worker found the task it is about to run.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Provenance {
    /// Popped from the worker's own deque (LIFO fast path).
    Own,
    /// Taken from the shared injector queue.
    Injector,
    /// Stolen from another worker's deque.
    Stolen,
}

/// Counters the submission/pickup protocol keeps consistent under one
/// mutex. `queued` is incremented *before* the task is pushed and
/// decremented *after* it is popped, so it is always an upper bound on
/// visible tasks and never underflows.
struct State {
    /// Tasks announced but not yet picked up.
    queued: usize,
    /// Tasks currently inside a worker (running or blocked).
    executing: usize,
    /// Workers alive: permanent + fallback.
    live: usize,
    /// Permanent workers asleep on the condvar.
    idle: usize,
    shutdown: bool,
}

struct Inner {
    /// One deque per permanent worker; `deques[i]` is owned by slot `i`.
    deques: Vec<Mutex<VecDeque<Task>>>,
    /// Overflow / external-submission queue, drained by everyone.
    injector: Mutex<VecDeque<Task>>,
    state: Mutex<State>,
    /// Wakes idle permanent workers when `queued` becomes nonzero.
    cv: Condvar,
    handles: Mutex<Vec<JoinHandle<()>>>,
    workers: usize,
}

/// Identity of the pool thread the current OS thread belongs to, if any.
#[derive(Clone, Copy)]
struct WorkerId {
    /// `Arc::as_ptr` of the owning pool's `Inner`.
    pool: usize,
    /// Deque slot; `None` for fallback workers (they own no deque).
    slot: Option<usize>,
}

thread_local! {
    static CURRENT: std::cell::Cell<Option<WorkerId>> = const { std::cell::Cell::new(None) };
}

/// A persistent work-stealing executor. Cloning is a refcount bump; all
/// clones share the same workers and queues.
#[derive(Clone)]
pub struct Executor {
    inner: Arc<Inner>,
}

impl Executor {
    /// A pool with `workers` permanent workers (at least one).
    pub fn new(workers: usize) -> Executor {
        let workers = workers.max(1);
        let inner = Arc::new(Inner {
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            state: Mutex::new(State {
                queued: 0,
                executing: 0,
                live: workers,
                idle: 0,
                shutdown: false,
            }),
            cv: Condvar::new(),
            handles: Mutex::new(Vec::new()),
            workers,
        });
        let mut handles = Vec::with_capacity(workers);
        for slot in 0..workers {
            let inner = inner.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("worlds-exec-{slot}"))
                    .spawn(move || worker_loop(inner, slot))
                    .expect("spawn pool worker"),
            );
        }
        *inner.handles.lock().unwrap() = handles;
        Executor { inner }
    }

    /// The process-wide pool every [`Speculation`] uses by default, sized
    /// to `effective_cores` (`std::thread::available_parallelism`) unless
    /// [`WORKERS_ENV`] overrides it. Never shut down.
    ///
    /// [`Speculation`]: https://docs.rs/worlds
    pub fn global() -> Executor {
        static GLOBAL: OnceLock<Executor> = OnceLock::new();
        GLOBAL
            .get_or_init(|| Executor::new(default_workers()))
            .clone()
    }

    /// Number of permanent workers.
    pub fn workers(&self) -> usize {
        self.inner.workers
    }

    /// Submit a task. Attribution: queue-depth / steal / run counters for
    /// this task land in `obs` (`RunStats::exec`), which is free when the
    /// registry is disabled.
    ///
    /// A submission from a pool worker goes to that worker's own deque
    /// (LIFO, depth-first); any other thread's goes to the injector.
    pub fn spawn(&self, obs: &Registry, f: impl FnOnce() + Send + 'static) {
        self.submit(Task {
            run: Box::new(f),
            obs: obs.clone(),
        });
    }

    /// Run `f`, with every closure it hands to [`Scope::spawn`] allowed to
    /// borrow from the enclosing frame: `scope` does not return until all
    /// scoped tasks have finished (even if `f` panics), which is what
    /// makes the borrows sound. Scoped tasks run on the same pool and are
    /// attributed to `obs`.
    pub fn scope<'env, R>(&self, obs: &Registry, f: impl FnOnce(&Scope<'_, 'env>) -> R) -> R {
        let scope = Scope {
            exec: self,
            obs,
            latch: Latch::new(),
            _env: std::marker::PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // The wait must happen on the panic path too: a scoped task may
        // still be using borrows owned by our caller's frame.
        scope.latch.wait();
        match result {
            Ok(r) => r,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }

    /// Stop the permanent workers and join them. Intended for tests and
    /// ordered teardown of private pools **after** the pool is quiescent;
    /// tasks still queued at shutdown may be dropped unrun. Must not be
    /// called from one of the pool's own workers.
    pub fn shutdown(&self) {
        {
            let mut st = self.inner.state.lock().unwrap();
            st.shutdown = true;
        }
        self.inner.cv.notify_all();
        let handles = std::mem::take(&mut *self.inner.handles.lock().unwrap());
        let me = std::thread::current().id();
        for h in handles {
            if h.thread().id() != me {
                let _ = h.join();
            }
        }
    }

    fn id(&self) -> usize {
        Arc::as_ptr(&self.inner) as usize
    }

    /// The current thread's deque slot, if it is a permanent worker of
    /// *this* pool.
    fn current_slot(&self) -> Option<usize> {
        CURRENT
            .get()
            .and_then(|w| if w.pool == self.id() { w.slot } else { None })
    }

    fn submit(&self, task: Task) {
        task.obs.with(|i| i.stats.exec_queue_depth.add(1));
        let own_slot = self.current_slot();
        let obs = task.obs.clone();
        // Announce before pushing: `queued` must never under-count a
        // pushed task, or the reserve-or-spawn check could strand it.
        {
            let mut st = self.inner.state.lock().unwrap();
            st.queued += 1;
            // Reserve-or-spawn: every queued task needs a worker that is
            // not occupied by a task (idle, scanning, or a fallback).
            while st.queued > st.live - st.executing {
                st.live += 1;
                obs.with(|i| i.stats.exec.fallback_threads.incr());
                let inner = self.inner.clone();
                std::thread::Builder::new()
                    .name("worlds-exec-fallback".into())
                    .spawn(move || fallback_loop(inner))
                    .expect("spawn fallback worker");
            }
            if st.idle > 0 {
                self.inner.cv.notify_one();
            }
        }
        match own_slot {
            Some(slot) => self.inner.deques[slot].lock().unwrap().push_back(task),
            None => {
                task.obs.with(|i| i.stats.exec.tasks_injected.incr());
                self.inner.injector.lock().unwrap().push_back(task);
            }
        }
    }
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("workers", &self.inner.workers)
            .finish()
    }
}

fn default_workers() -> usize {
    std::env::var(WORKERS_ENV)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Find one task: own deque back (permanent workers), then injector
/// front, then steal from other deques front.
fn find_task(inner: &Inner, slot: Option<usize>) -> Option<(Task, Provenance)> {
    if let Some(s) = slot {
        if let Some(task) = inner.deques[s].lock().unwrap().pop_back() {
            return Some((task, Provenance::Own));
        }
    }
    if let Some(task) = inner.injector.lock().unwrap().pop_front() {
        return Some((task, Provenance::Injector));
    }
    let n = inner.deques.len();
    let start = slot.map_or(0, |s| s + 1);
    for k in 0..n {
        let victim = (start + k) % n;
        if Some(victim) == slot {
            continue;
        }
        if let Some(task) = inner.deques[victim].lock().unwrap().pop_front() {
            return Some((task, Provenance::Stolen));
        }
    }
    None
}

fn run_task(inner: &Inner, task: Task, how: Provenance) {
    {
        let mut st = inner.state.lock().unwrap();
        st.queued -= 1;
        st.executing += 1;
    }
    task.obs.with(|i| {
        i.stats.exec_queue_depth.sub(1);
        i.stats.exec.tasks_run.incr();
        if how == Provenance::Stolen {
            i.stats.exec.tasks_stolen.incr();
        }
    });
    // Profiler marker: on-CPU in a task from here; the speculation layer
    // refines world/site/phase once it knows them. One relaxed load when
    // no sampler is attached. The matching Idle mark is published by the
    // caller's out-of-work path, not here: between back-to-back tasks
    // the next pickup overwrites the slot anyway, and skipping the flip
    // halves the marker tax on a saturated worker.
    worlds_prof::mark(None, None, None, worlds_prof::Phase::Task);
    // A panicking task must not take its worker down with it.
    let _ = catch_unwind(AssertUnwindSafe(task.run));
    inner.state.lock().unwrap().executing -= 1;
}

fn worker_loop(inner: Arc<Inner>, slot: usize) {
    CURRENT.set(Some(WorkerId {
        pool: Arc::as_ptr(&inner) as usize,
        slot: Some(slot),
    }));
    loop {
        if let Some((task, how)) = find_task(&inner, Some(slot)) {
            run_task(&inner, task, how);
            continue;
        }
        // Out of work: retire the last task's marker before blocking so
        // neither the sampler nor the stall watchdog attributes the wait
        // to a task that already finished.
        worlds_prof::mark_idle();
        let mut st = inner.state.lock().unwrap();
        if st.shutdown {
            st.live -= 1;
            return;
        }
        if st.queued > 0 {
            // Announced but not yet pushed (or sitting in a deque we
            // raced on): rescan rather than sleep past it.
            drop(st);
            std::thread::yield_now();
            continue;
        }
        st.idle += 1;
        let mut st = inner
            .cv
            .wait_while(st, |st| st.queued == 0 && !st.shutdown)
            .unwrap();
        st.idle -= 1;
    }
}

/// A temporary worker spawned when queued tasks outnumber free workers.
/// It owns no deque and exits as soon as the queues are empty; the exit
/// decision is taken under the state lock so it serializes against
/// submissions (a task announced after the check sees the reduced `live`
/// and reserves its own runner).
fn fallback_loop(inner: Arc<Inner>) {
    loop {
        if let Some((task, how)) = find_task(&inner, None) {
            run_task(&inner, task, how);
            continue;
        }
        // Same contract as worker_loop: the marker flips to Idle only
        // when this thread actually runs out of work.
        worlds_prof::mark_idle();
        let mut st = inner.state.lock().unwrap();
        if st.queued > 0 && !st.shutdown {
            drop(st);
            std::thread::yield_now();
            continue;
        }
        st.live -= 1;
        return;
    }
}

/// A countdown latch: `add` before submission, `done` from the task (via
/// a drop guard, so panics still count down), `wait` blocks until zero.
struct Latch {
    count: Mutex<usize>,
    cv: Condvar,
}

impl Latch {
    fn new() -> Arc<Latch> {
        Arc::new(Latch {
            count: Mutex::new(0),
            cv: Condvar::new(),
        })
    }

    fn add(&self, n: usize) {
        *self.count.lock().unwrap() += n;
    }

    fn done(&self) {
        let mut c = self.count.lock().unwrap();
        *c -= 1;
        if *c == 0 {
            self.cv.notify_all();
        }
    }

    fn wait(&self) {
        let c = self.count.lock().unwrap();
        let _unused = self.cv.wait_while(c, |c| *c > 0).unwrap();
    }
}

/// Decrements the latch when dropped — normal return or unwind alike.
struct CountsDown(Arc<Latch>);

impl Drop for CountsDown {
    fn drop(&mut self) {
        self.0.done();
    }
}

/// Handle for spawning borrowing tasks inside [`Executor::scope`].
pub struct Scope<'scope, 'env> {
    exec: &'scope Executor,
    obs: &'scope Registry,
    latch: Arc<Latch>,
    _env: std::marker::PhantomData<&'env mut &'env ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Submit a task that may borrow anything outliving the `scope` call.
    pub fn spawn(&self, f: impl FnOnce() + Send + 'env) {
        self.latch.add(1);
        let guard = CountsDown(self.latch.clone());
        let task: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            let _guard = guard;
            f();
        });
        // SAFETY: `Executor::scope` waits for the latch to reach zero
        // before returning (on the panic path too), so everything the
        // closure borrows ('env) strictly outlives its execution; the
        // lifetime can therefore be erased for the 'static task queue.
        let task: TaskFn = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(task)
        };
        self.exec.submit(Task {
            run: task,
            obs: self.obs.clone(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::{Duration, Instant};

    #[test]
    fn tasks_run_and_pool_survives() {
        let pool = Executor::new(2);
        let hits = Arc::new(AtomicUsize::new(0));
        let latch = Latch::new();
        latch.add(100);
        for _ in 0..100 {
            let hits = hits.clone();
            let guard = CountsDown(latch.clone());
            pool.spawn(&Registry::disabled(), move || {
                let _guard = guard;
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        latch.wait();
        assert_eq!(hits.load(Ordering::Relaxed), 100);
        pool.shutdown();
    }

    #[test]
    fn blocking_tasks_never_starve_queued_work() {
        // One worker, two tasks that can only finish if they run
        // concurrently: the second must get a fallback worker.
        let pool = Executor::new(1);
        let (tx, rx) = std::sync::mpsc::channel::<u32>();
        let (tx2, rx2) = std::sync::mpsc::channel::<u32>();
        pool.spawn(&Registry::disabled(), move || {
            // Blocks until the *other* task sends.
            let v = rx2.recv().unwrap();
            tx.send(v + 1).unwrap();
        });
        pool.spawn(&Registry::disabled(), move || {
            tx2.send(41).unwrap();
        });
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(5)),
            Ok(42),
            "fallback worker must run the unblocking task"
        );
        pool.shutdown();
    }

    #[test]
    fn scope_tasks_borrow_their_environment() {
        let pool = Executor::new(2);
        let results = Mutex::new(Vec::new());
        pool.scope(&Registry::disabled(), |s| {
            for i in 0..16u64 {
                let results = &results;
                s.spawn(move || results.lock().unwrap().push(i * i));
            }
        });
        let mut got = results.into_inner().unwrap();
        got.sort_unstable();
        assert_eq!(got, (0..16u64).map(|i| i * i).collect::<Vec<_>>());
        pool.shutdown();
    }

    #[test]
    fn scope_waits_even_when_body_panics() {
        let pool = Executor::new(1);
        let done = Arc::new(AtomicUsize::new(0));
        let done2 = done.clone();
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(&Registry::disabled(), |s| {
                let done = done2.clone();
                s.spawn(move || {
                    std::thread::sleep(Duration::from_millis(50));
                    done.fetch_add(1, Ordering::SeqCst);
                });
                panic!("body dies");
            })
        }));
        assert!(r.is_err());
        assert_eq!(
            done.load(Ordering::SeqCst),
            1,
            "scope must wait for the task before unwinding"
        );
        pool.shutdown();
    }

    #[test]
    fn panicking_task_does_not_kill_its_worker() {
        let pool = Executor::new(1);
        pool.spawn(&Registry::disabled(), || panic!("boom"));
        let (tx, rx) = std::sync::mpsc::channel::<u8>();
        pool.spawn(&Registry::disabled(), move || tx.send(7).unwrap());
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(7));
        pool.shutdown();
    }

    #[test]
    fn worker_submissions_prefer_own_deque_lifo() {
        // A task spawning sub-tasks runs them on the pool; all complete.
        let pool = Executor::new(2);
        let hits = Arc::new(AtomicUsize::new(0));
        pool.scope(&Registry::disabled(), |s| {
            let hits = &hits;
            let pool_ref = &pool;
            s.spawn(move || {
                pool_ref.scope(&Registry::disabled(), |inner| {
                    for _ in 0..8 {
                        inner.spawn(move || {
                            hits.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
                hits.fetch_add(100, Ordering::Relaxed);
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 108);
        pool.shutdown();
    }

    #[test]
    fn exec_counters_account_for_every_task() {
        let obs = Registry::enabled();
        let pool = Executor::new(2);
        pool.scope(&obs, |s| {
            for _ in 0..50 {
                s.spawn(|| std::hint::black_box(()));
            }
        });
        let stats = obs.stats().unwrap();
        assert_eq!(stats.exec.tasks_run.get(), 50);
        assert_eq!(stats.exec_queue_depth.get(), 0, "all picked up");
        pool.shutdown();
    }

    #[test]
    fn throughput_smoke_pool_reuse_is_fast() {
        // Not a benchmark, just a guard: 200 trivial tasks through a
        // 1-worker pool must finish quickly (no per-task thread spawn on
        // the quiet-pool path).
        let pool = Executor::new(1);
        let t0 = Instant::now();
        for _ in 0..200 {
            pool.scope(&Registry::disabled(), |s| {
                s.spawn(|| {
                    std::hint::black_box(1u64);
                });
            });
        }
        assert!(t0.elapsed() < Duration::from_secs(5));
        pool.shutdown();
    }
}
