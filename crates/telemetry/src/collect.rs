//! Cluster export: exporters push rollup snapshots, a collector
//! aggregates, viewers query.
//!
//! Everything rides the existing worlds-net machinery — framed wire,
//! corr-id retries, reply ledger, fault proxies — via the opaque
//! `Request::Telemetry` RPC:
//!
//! * A [`Collector`] is a plain [`NetNode`] (fresh private
//!   [`PageStore`], so it can also serve pages if anyone asks) with a
//!   telemetry handler that folds `Push` payloads into a per-node
//!   table and answers `Query` with the whole table.
//! * An [`Exporter`] is a thread beside a [`TelemetryHub`] that builds
//!   a [`NodeReport`] every interval and pushes it over one [`Conn`].
//!   Telemetry uses the same retry policy as page traffic; a dead
//!   collector costs the exporter thread its retries, never the
//!   instrumented program anything.
//! * [`install_node_handler`] makes any serving node answer `Query`
//!   directly with its own single-row table, so `worlds-top <addr>`
//!   works against a lone node with no collector in between.
//! * [`query_table`] is the viewer side: one connection, one query,
//!   decoded table.

use crate::rollup::TelemetryHub;
use crate::wire::{
    decode_msg, decode_session_table, decode_table, encode_push, encode_query,
    encode_sessions_query, encode_table, NodeReport, SessionReport, TelemetryMsg,
};
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use worlds_net::{Conn, NetNode, Reply, Request, RetryPolicy};
use worlds_obs::Registry;
use worlds_pagestore::PageStore;

/// Node id a standalone collector serves under — far outside any real
/// cluster's id range, purely diagnostic.
pub const COLLECTOR_NODE_ID: u64 = u64::MAX;

/// Build `node`'s current [`NodeReport`] from its hub.
pub fn node_report(hub: &TelemetryHub, node: u64) -> NodeReport {
    NodeReport::from_snapshots(
        node,
        hub.now_ns(),
        &hub.rates(),
        &hub.gauges(),
        hub.stalls(),
        &hub.site_table(),
    )
}

/// Answer `Query` frames on `node` with its own single-row table, so
/// viewers can point at any exporter-less node directly. `Push` is
/// refused — aggregation is the collector's job.
pub fn install_node_handler(node: &NetNode, hub: Arc<TelemetryHub>) {
    let id = node.node_id();
    node.set_telemetry_handler(Arc::new(move |bytes| match decode_msg(bytes)? {
        TelemetryMsg::Query => Ok(Some(encode_table(&[node_report(&hub, id)]))),
        TelemetryMsg::Push(_) => Err("this node is not a collector".into()),
        TelemetryMsg::SessionsQuery => Err("this node is not a session front door".into()),
    }));
}

/// A telemetry aggregation point: one loopback listener, one table.
pub struct Collector {
    node: NetNode,
    table: Arc<Mutex<BTreeMap<u64, NodeReport>>>,
}

impl Collector {
    /// Bind a collector on a kernel-assigned loopback port. `obs`
    /// instruments the collector's own wire traffic (usually
    /// `Registry::disabled()` — the collector watching itself is
    /// rarely the point).
    pub fn start(obs: Registry) -> std::io::Result<Collector> {
        let node = NetNode::serve(COLLECTOR_NODE_ID, PageStore::new(4096), obs)?;
        let table: Arc<Mutex<BTreeMap<u64, NodeReport>>> = Arc::new(Mutex::new(BTreeMap::new()));
        let shared = table.clone();
        node.set_telemetry_handler(Arc::new(move |bytes| match decode_msg(bytes)? {
            TelemetryMsg::Push(report) => {
                shared
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .insert(report.node, report);
                Ok(None)
            }
            TelemetryMsg::Query => {
                let table: Vec<NodeReport> = shared
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .values()
                    .cloned()
                    .collect();
                Ok(Some(encode_table(&table)))
            }
            TelemetryMsg::SessionsQuery => Err("this node is not a session front door".into()),
        }));
        Ok(Collector { node, table })
    }

    /// Where exporters and viewers connect.
    pub fn addr(&self) -> SocketAddr {
        self.node.addr()
    }

    /// The current table, one row per node that has pushed, node order.
    pub fn table(&self) -> Vec<NodeReport> {
        self.table
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .cloned()
            .collect()
    }

    /// Stop serving (dropping also stops).
    pub fn shutdown(&self) {
        self.node.shutdown();
    }
}

/// A background thread pushing one node's rollups to a collector.
pub struct Exporter {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Exporter {
    /// Push `hub`'s snapshot for cluster node `node` to `collector`
    /// every `interval`, and once more on [`Exporter::stop`] so even a
    /// short run registers. Export traffic is deliberately *not*
    /// instrumented — a telemetry plane that inflates its own
    /// `net_frames_s` would be measuring itself.
    pub fn start(
        hub: Arc<TelemetryHub>,
        node: u64,
        collector: SocketAddr,
        interval: Duration,
    ) -> Exporter {
        let stop = Arc::new(AtomicBool::new(false));
        let stopping = stop.clone();
        let handle = std::thread::Builder::new()
            .name(format!("worlds-export-{node}"))
            .spawn(move || {
                let mut conn = Conn::new(
                    COLLECTOR_NODE_ID,
                    collector,
                    RetryPolicy::fast(),
                    Registry::disabled(),
                );
                loop {
                    let push = Request::Telemetry {
                        payload: encode_push(&node_report(&hub, node)),
                    };
                    let _ = conn.call(&push);
                    if stopping.load(Ordering::Acquire) {
                        return;
                    }
                    // Sleep in short slices so stop() is prompt.
                    let mut left = interval;
                    while !stopping.load(Ordering::Acquire) && left > Duration::ZERO {
                        let step = left.min(Duration::from_millis(25));
                        std::thread::sleep(step);
                        left = left.saturating_sub(step);
                    }
                }
            })
            .expect("spawn exporter thread");
        Exporter {
            stop,
            handle: Some(handle),
        }
    }

    /// Final push, then join the thread.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Exporter {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Ask whatever serves `addr` — collector or lone node — for its
/// telemetry table.
pub fn query_table(addr: SocketAddr) -> Result<Vec<NodeReport>, String> {
    let mut conn = Conn::new(0, addr, RetryPolicy::fast(), Registry::disabled());
    let req = Request::Telemetry {
        payload: encode_query(),
    };
    match conn.call(&req).map_err(|e| e.to_string())? {
        Reply::Telemetry { payload } => decode_table(&payload),
        Reply::Nack { detail, .. } => Err(format!("refused: {detail}")),
        Reply::Ack { .. } | Reply::Present { .. } => {
            Err("peer answered a query with the wrong reply kind".into())
        }
    }
}

/// Ask a worlds-server front door at `addr` for its per-session table.
/// Plain nodes and collectors refuse the query with a Nack.
pub fn query_sessions(addr: SocketAddr) -> Result<Vec<SessionReport>, String> {
    let mut conn = Conn::new(0, addr, RetryPolicy::fast(), Registry::disabled());
    let req = Request::Telemetry {
        payload: encode_sessions_query(),
    };
    match conn.call(&req).map_err(|e| e.to_string())? {
        Reply::Telemetry { payload } => decode_session_table(&payload),
        Reply::Nack { detail, .. } => Err(format!("refused: {detail}")),
        Reply::Ack { .. } | Reply::Present { .. } => {
            Err("peer answered a query with the wrong reply kind".into())
        }
    }
}
