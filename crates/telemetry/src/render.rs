//! Terminal tables for the live telemetry plane, shared by
//! `worlds-top` and `worlds-report --live`.

use crate::wire::NodeReport;
use worlds_obs::fmt_ns;

/// The full cluster view: a per-node table followed by the merged
/// per-site PI table. Plain text, one trailing newline.
pub fn render_cluster(reports: &[NodeReport]) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str(&format!(
        "== worlds cluster telemetry ({} node{}) ==\n",
        reports.len(),
        if reports.len() == 1 { "" } else { "s" }
    ));
    out.push_str(&format!(
        "{:>9}  {:>6}  {:>7}  {:>7}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}\n",
        "node", "live", "frames", "backlog", "events/s", "blocks/s", "elims/s", "net/s", "rtt"
    ));
    for r in reports {
        out.push_str(&format!(
            "{:>9}  {:>6}  {:>7}  {:>7}  {:>9.1}  {:>9.1}  {:>9.1}  {:>9.1}  {:>9}\n",
            node_name(r.node),
            r.live_worlds,
            r.frames_resident,
            r.elim_backlog,
            r.events_s,
            r.commits_s,
            r.elims_s,
            r.net_frames_s,
            fmt_ns(r.rtt_mean_ns as u64),
        ));
    }
    out.push_str(&render_sites(reports));
    out
}

/// The merged per-site PI table: `PI = Rμ/(1+Ro)` per call site per
/// node, the paper's §3.3 model estimated live. Empty string when no
/// node reported a labelled site.
pub fn render_sites(reports: &[NodeReport]) -> String {
    let mut rows: Vec<(u64, &crate::wire::SiteReport)> = reports
        .iter()
        .flat_map(|r| r.sites.iter().map(move |s| (r.node, s)))
        .collect();
    if rows.is_empty() {
        return String::new();
    }
    rows.sort_by(|a, b| (a.1.label.as_str(), a.0).cmp(&(b.1.label.as_str(), b.0)));
    let mut out = String::with_capacity(512);
    out.push_str("-- per-site PI (PI = R\u{3bc}/(1+Ro), \u{a7}3.3) --\n");
    out.push_str(&format!(
        "{:<28}  {:>9}  {:>7}  {:>6}  {:>6}  {:>6}  alts\n",
        "site", "node", "commits", "R\u{3bc}", "Ro", "PI"
    ));
    for (node, site) in rows {
        let alts = site
            .alts
            .iter()
            .map(|a| format!("a{}:{}@{}", a.alt, a.count, fmt_ns(a.mean_ns as u64)))
            .collect::<Vec<_>>()
            .join(" ");
        let mut label = site.label.clone();
        if label.len() > 28 {
            let mut cut = 27;
            while !label.is_char_boundary(cut) {
                cut -= 1;
            }
            label.truncate(cut);
            label.push('\u{2026}');
        }
        out.push_str(&format!(
            "{label:<28}  {:>9}  {:>7}  {:>6.2}  {:>6.2}  {:>6.2}  {alts}\n",
            node_name(node),
            site.commits,
            site.r_mu,
            site.r_o,
            site.pi,
        ));
    }
    out
}

fn node_name(node: u64) -> String {
    if node == crate::COLLECTOR_NODE_ID {
        "collector".into()
    } else {
        node.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{AltReport, SiteReport};

    #[test]
    fn renders_nodes_and_sites() {
        let reports = vec![
            NodeReport {
                node: 0,
                live_worlds: 3,
                events_s: 100.0,
                sites: vec![SiteReport {
                    site: 1,
                    label: "rootfinder/solve".into(),
                    commits: 9,
                    r_mu: 1.8,
                    r_o: 0.05,
                    pi: 1.71,
                    alts: vec![AltReport {
                        alt: 0,
                        count: 12,
                        mean_ns: 1500.0,
                    }],
                }],
                ..NodeReport::default()
            },
            NodeReport {
                node: 1,
                ..NodeReport::default()
            },
        ];
        let text = render_cluster(&reports);
        assert!(text.contains("2 nodes"));
        assert!(text.contains("rootfinder/solve"));
        assert!(text.contains("1.71"));
        assert!(text.contains("a0:12@1.50us"));
        let one_node = render_cluster(&reports[1..]);
        assert!(one_node.contains("1 node"));
        assert!(!one_node.contains("per-site"), "no sites, no site table");
    }
}
