//! The paper's §4.2 scenario: OR-parallel Prolog via Multiple Worlds.
//!
//! ```sh
//! cargo run --example prolog_or
//! ```
//!
//! A path query whose first clause drags sequential search through a long
//! dead-end chain; the OR-parallel race commits the short branch instead.

use std::time::Instant;

use worlds::Speculation;
use worlds_prolog::{or_parallel_solve, parse_query, solve, solve_first, Database, SolveConfig};

fn main() {
    // Knowledge base: a long decoy chain listed first, a short path after.
    let mut src = String::from("% routes\nedge(a, d0).\n");
    for i in 0..80 {
        src.push_str(&format!("edge(d{i}, d{}).\n", i + 1));
    }
    src.push_str("edge(a, s).\nedge(s, goal).\n");
    src.push_str(
        "path(X, Y) :- edge(X, Y).\n\
         path(X, Y) :- edge(X, Z), path(Z, Y).\n",
    );
    let db = Database::consult(&src).expect("valid program");
    let goals = parse_query("path(a, goal)").expect("valid query");
    let cfg = SolveConfig::default();

    println!("database: {} clauses; query: path(a, goal)", db.len());

    // Sequential resolution explores the decoy chain first.
    let t0 = Instant::now();
    let (sol, steps) = solve_first(&db, &goals, &cfg);
    println!(
        "\nsequential: solution {:?} after {steps} resolution steps, {:?}",
        sol.is_some(),
        t0.elapsed()
    );

    // OR-parallel committed choice: the two path/2 clauses race.
    let spec = Speculation::new();
    let t0 = Instant::now();
    let out = or_parallel_solve(&spec, &db, &goals, &cfg, None);
    println!(
        "or-parallel: solution {:?} via clause #{:?} after {} steps (winner only), {:?}",
        out.solution.is_some(),
        out.winning_clause,
        out.steps,
        t0.elapsed()
    );
    println!("failed branches: {:?}", out.failed_branches);
    println!(
        "committed answer cell: {:?}",
        spec.read(|c| c.get_str("prolog_answer"))
    );

    assert!(out.solution.is_some(), "the short branch must be derivable");

    // Both agree the goal is provable; the committed-choice answer is one
    // of the sequential answers.
    let (all, _) = solve(&db, &goals, &cfg);
    assert!(!all.is_empty());
    println!(
        "\n(sequential search pays for the decoy chain before reaching the short \
         branch; the race commits whichever branch proves the goal first)"
    );
}
