//! The frame table: reference-counted physical pages.
//!
//! Worlds share frames until someone writes; the reference count is what
//! tells a write whether it may mutate in place (count == 1) or must copy
//! (count > 1) — the core of copy-on-write.
//!
//! The table is concurrent and its slot-access path is lock-free: slots
//! live in fixed-size chunks that are allocated once and never move, so
//! reaching a slot is two array indexings and one `OnceLock` load — no
//! table-wide lock. Reference counts are atomics; page contents sit behind
//! an `Arc` guarded by a tiny per-frame mutex; freed page buffers are
//! recycled through a bounded pool so sibling elimination returns memory to
//! the next fault instead of the allocator. The store's shard locks (not
//! this table) decide *when* a frame may be mutated; this table only makes
//! each individual operation atomic.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;

use crate::content::{page_hash, ContentIndex};
use crate::page::PageData;

/// Index of a physical frame in the store's frame table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FrameId(pub(crate) u32);

impl FrameId {
    /// Raw index (exposed for diagnostics and tests).
    pub fn index(self) -> u32 {
        self.0
    }
}

/// Freed page buffers kept for reuse; beyond this the allocator takes over.
const POOL_MAX: usize = 256;

/// The recycling state behind the table's single auxiliary mutex: the
/// free list of slot indices and the bounded pool of page buffers. They
/// always travel together — freeing a frame returns both its slot and
/// (usually) its buffer; allocation consumes a slot and the store's
/// staging path consumes a buffer — so one lock covers both and a
/// frame-free is a single acquisition instead of two. The lock is a
/// documented *leaf* in the store's hierarchy: it is never held while
/// acquiring a shard lock, a per-slot data mutex, or anything else.
#[derive(Debug, Default)]
struct Recycler {
    /// Slot indices whose frames have been freed, ready for reuse.
    free: Vec<u32>,
    /// Freed page buffers kept for the next fault (bounded by [`POOL_MAX`]).
    pool: Vec<PageData>,
}

/// Slots per chunk (chunks are allocated whole and never move).
const CHUNK_SIZE: usize = 1024;

/// Upper bound on chunks: 4 Mi frames, far beyond any workload here.
const MAX_CHUNKS: usize = 4096;

/// One slot in the frame table. Slots are never removed, only recycled:
/// `refs == 0` means the slot is on the free list and `data` is `None`.
#[derive(Debug)]
struct FrameSlot {
    /// Number of page-map entries referencing this frame across all worlds.
    refs: AtomicU32,
    /// The page contents. An `Arc` so readers can snapshot a page (clone the
    /// `Arc` under this mutex, copy bytes after releasing it) while writers
    /// use `Arc::make_mut` — a concurrent reader at worst keeps the pre-write
    /// snapshot, never a torn page.
    data: Mutex<Option<Arc<PageData>>>,
    /// Content hash this frame is published under in the content index
    /// (0 = not indexed). The back-pointer that lets an in-place write or
    /// a free clear its own index entry without a reverse scan.
    content_hash: AtomicU64,
}

impl FrameSlot {
    // Used only as an array-initialiser template; every element becomes an
    // independent slot, so the shared-const interior-mutability pitfall
    // (mutating through the const itself) cannot arise.
    #[allow(clippy::declare_interior_mutable_const)]
    const EMPTY: FrameSlot = FrameSlot {
        refs: AtomicU32::new(0),
        data: Mutex::new(None),
        content_hash: AtomicU64::new(0),
    };
}

/// A reference-counted table of physical frames with a free list and a
/// bounded buffer pool. All operations take `&self`; see the module docs
/// for the division of labour between this table and the store's shards.
#[derive(Debug)]
pub(crate) struct FrameTable {
    /// Chunked slot arena. A chunk, once initialised, is never moved or
    /// freed, so `&FrameSlot` references obtained through it stay valid for
    /// the table's lifetime — that is what makes slot access lock-free.
    chunks: Vec<OnceLock<Box<[FrameSlot; CHUNK_SIZE]>>>,
    /// High-water mark: slots handed out so far (free-listed ones included).
    high: AtomicUsize,
    live: AtomicUsize,
    /// Free list + buffer pool under one leaf mutex (see [`Recycler`]).
    recycler: Mutex<Recycler>,
    /// The content index (hash → frame hints), allocated on first insert
    /// so stores that never enable dedupe pay nothing.
    index: OnceLock<ContentIndex>,
    /// Times the recycler mutex has been acquired — the quantity batched
    /// elimination amortizes. Every acquisition goes through
    /// [`FrameTable::lock_recycler`] so the count is exact.
    recycler_locks: AtomicU64,
}

impl Default for FrameTable {
    fn default() -> Self {
        FrameTable::new()
    }
}

impl FrameTable {
    pub(crate) fn new() -> Self {
        FrameTable {
            chunks: (0..MAX_CHUNKS).map(|_| OnceLock::new()).collect(),
            high: AtomicUsize::new(0),
            live: AtomicUsize::new(0),
            recycler: Mutex::new(Recycler::default()),
            index: OnceLock::new(),
            recycler_locks: AtomicU64::new(0),
        }
    }

    /// The one way to acquire the recycler mutex, so
    /// [`FrameTable::recycler_lock_count`] is an exact acquisition count.
    fn lock_recycler(&self) -> parking_lot::MutexGuard<'_, Recycler> {
        self.recycler_locks.fetch_add(1, Ordering::Relaxed);
        self.recycler.lock()
    }

    /// How many times the recycler mutex has been acquired so far.
    pub(crate) fn recycler_lock_count(&self) -> u64 {
        self.recycler_locks.load(Ordering::Relaxed)
    }

    /// Lock-free slot access: two indexings and one `OnceLock` load.
    fn slot(&self, id: FrameId) -> &FrameSlot {
        let idx = id.0 as usize;
        let chunk = self.chunks[idx / CHUNK_SIZE]
            .get()
            .expect("frame beyond initialised chunks");
        &chunk[idx % CHUNK_SIZE]
    }

    /// Allocate a frame holding `data`, with an initial reference count of 1.
    pub(crate) fn alloc(&self, data: PageData) -> FrameId {
        let arc = Arc::new(data);
        self.live.fetch_add(1, Ordering::Relaxed);
        // Bind the pop so the recycler guard drops here: chunk
        // initialisation below must not run under it, and frame-table
        // locks are leaves that never nest (see the store's lock
        // hierarchy).
        let popped = self.lock_recycler().free.pop();
        let idx = match popped {
            Some(idx) => idx,
            None => {
                let idx = self.high.fetch_add(1, Ordering::Relaxed);
                assert!(idx < MAX_CHUNKS * CHUNK_SIZE, "frame table exhausted");
                self.chunks[idx / CHUNK_SIZE]
                    .get_or_init(|| Box::new([FrameSlot::EMPTY; CHUNK_SIZE]));
                idx as u32
            }
        };
        let slot = self.slot(FrameId(idx));
        let mut d = slot.data.lock();
        debug_assert!(d.is_none(), "allocating over a live frame");
        debug_assert_eq!(
            slot.content_hash.load(Ordering::Relaxed),
            0,
            "recycled slot still indexed"
        );
        *d = Some(arc);
        slot.refs.store(1, Ordering::Release);
        FrameId(idx)
    }

    /// Bump the reference count (a new page-map entry now points here).
    /// `Relaxed` suffices: the caller already holds a reference (it read the
    /// frame id out of a live page map under a shard lock), so this can
    /// never race with the final decref — the same argument `Arc::clone`
    /// uses for its relaxed increment.
    #[allow(dead_code)] // single-frame form of incref_sweep; exercised in tests
    pub(crate) fn incref(&self, id: FrameId) {
        let prev = self.slot(id).refs.fetch_add(1, Ordering::Relaxed);
        debug_assert!(prev > 0, "incref of a freed frame {}", id.0);
    }

    /// Bulk incref for a fork's map sweep: one pass over the ids with the
    /// chunk pointer cached, so consecutive frames (the common case — a
    /// parent's pages allocate sequentially) skip the per-call chunk lookup.
    pub(crate) fn incref_sweep(&self, ids: impl Iterator<Item = FrameId>) {
        let mut cached: Option<(usize, &[FrameSlot; CHUNK_SIZE])> = None;
        for id in ids {
            let idx = id.0 as usize;
            let (chunk_no, within) = (idx / CHUNK_SIZE, idx % CHUNK_SIZE);
            let chunk = match cached {
                Some((no, c)) if no == chunk_no => c,
                _ => {
                    let c = self.chunks[chunk_no]
                        .get()
                        .expect("frame beyond initialised chunks");
                    cached = Some((chunk_no, c));
                    c
                }
            };
            let prev = chunk[within].refs.fetch_add(1, Ordering::Relaxed);
            debug_assert!(prev > 0, "incref of a freed frame {}", id.0);
        }
    }

    /// Drop one reference; frees the frame when the count reaches zero (the
    /// buffer goes to the recycle pool if no reader still holds it).
    /// Returns `true` if the frame was freed.
    pub(crate) fn decref(&self, id: FrameId) -> bool {
        let slot = self.slot(id);
        let prev = slot.refs.fetch_sub(1, Ordering::AcqRel);
        assert!(prev > 0, "decref of a freed frame {}", id.0);
        if prev != 1 {
            return false;
        }
        let data = slot.data.lock().take().expect("live frame without data");
        self.deindex(slot, id);
        self.live.fetch_sub(1, Ordering::Relaxed);
        // One acquisition frees both halves: the slot index always goes
        // back, the buffer only if no reader still holds its `Arc`.
        let mut rec = self.lock_recycler();
        if let Ok(page) = Arc::try_unwrap(data) {
            if rec.pool.len() < POOL_MAX {
                rec.pool.push(page);
            }
        }
        rec.free.push(id.0);
        true
    }

    /// Like [`FrameTable::decref`], but a frame that reaches zero is only
    /// *detached* (slot emptied, live count dropped) and pushed onto
    /// `freed`; the recycler is not touched. The caller hands the
    /// accumulated list to [`FrameTable::recycle_freed`] once, so tearing
    /// down any number of frames costs one recycler acquisition instead
    /// of one per frame. Returns `true` if the frame reached zero.
    pub(crate) fn decref_deferred(
        &self,
        id: FrameId,
        freed: &mut Vec<(u32, Arc<PageData>)>,
    ) -> bool {
        let slot = self.slot(id);
        let prev = slot.refs.fetch_sub(1, Ordering::AcqRel);
        assert!(prev > 0, "decref of a freed frame {}", id.0);
        if prev != 1 {
            return false;
        }
        let data = slot.data.lock().take().expect("live frame without data");
        self.deindex(slot, id);
        self.live.fetch_sub(1, Ordering::Relaxed);
        freed.push((id.0, data));
        true
    }

    /// Return frames detached by [`FrameTable::decref_deferred`] to the
    /// recycler under a single lock acquisition. Empty lists cost nothing.
    pub(crate) fn recycle_freed(&self, freed: Vec<(u32, Arc<PageData>)>) {
        if freed.is_empty() {
            return;
        }
        let mut rec = self.lock_recycler();
        for (idx, data) in freed {
            if let Ok(page) = Arc::try_unwrap(data) {
                if rec.pool.len() < POOL_MAX {
                    rec.pool.push(page);
                }
            }
            rec.free.push(idx);
        }
    }

    /// Current reference count of a frame (0 for a freed one).
    #[allow(dead_code)] // diagnostics; exercised in tests
    pub(crate) fn refs(&self, id: FrameId) -> u32 {
        self.slot(id).refs.load(Ordering::Acquire)
    }

    /// A shared snapshot of a frame's page data. Cloning the `Arc` is O(1);
    /// callers copy bytes out of it after every lock is released.
    pub(crate) fn data_arc(&self, id: FrameId) -> Arc<PageData> {
        self.slot(id)
            .data
            .lock()
            .as_ref()
            .expect("reference to a freed frame")
            .clone()
    }

    /// The private-page write fast path, fused into one slot visit: if the
    /// frame's refcount is exactly 1, overwrite `bytes` at `offset` in
    /// place and return `Some(invalidated)` — `invalidated` is whether the
    /// frame had a content-index entry that this mutation just cleared.
    /// Otherwise touch nothing and return `None`. The caller must hold the
    /// owning world's shard lock (read suffices): a fork of the owning
    /// world needs that shard's write lock, so the count cannot rise to a
    /// *lasting* 2 mid-write. A content-index probe, however, can raise it
    /// from another shard — which is why the count is re-checked under the
    /// data mutex: the probe increfs before locking this mutex to verify
    /// bytes, so whoever takes the mutex second sees the other's claim and
    /// backs off. A reader concurrently holding the page's `Arc` forces
    /// `make_mut` to copy, which keeps that reader's snapshot consistent.
    /// `seal` is the precomputed hash of the page's *resulting* bytes,
    /// passed only for full-page writes with dedupe on: the frame is then
    /// resealed into the index under the same mutex hold (the bytes are
    /// exactly the caller's buffer and cannot change until the mutex is
    /// released) — the `put_bytes` full-page seal point.
    pub(crate) fn write_if_private(
        &self,
        id: FrameId,
        offset: usize,
        bytes: &[u8],
        seal: Option<u64>,
    ) -> Option<bool> {
        let slot = self.slot(id);
        if slot.refs.load(Ordering::Acquire) != 1 {
            return None;
        }
        let mut guard = slot.data.lock();
        // Re-check under the mutex: a dedupe probe may have verified this
        // page's bytes and taken a reference since the load above. Writing
        // in place now would mutate a page another world just agreed to
        // share, so treat the frame as shared and let the caller CoW.
        if slot.refs.load(Ordering::Acquire) != 1 {
            return None;
        }
        let arc = guard.as_mut().expect("write to a freed frame");
        Arc::make_mut(arc).bytes_mut()[offset..offset + bytes.len()].copy_from_slice(bytes);
        if seal.is_some() && seal == Some(slot.content_hash.load(Ordering::Relaxed)) {
            // Rewriting identical full-page content over a still-valid
            // seal: the entry is already right, leave it be.
            return Some(false);
        }
        // The bytes no longer match the published hash; retract the index
        // entry *before* releasing the mutex so a probe serialised behind
        // us verifies against the new bytes and misses.
        let invalidated = self.deindex(slot, id);
        if let Some(hash) = seal {
            let ix = self.index.get_or_init(ContentIndex::new);
            slot.content_hash.store(hash, Ordering::Release);
            ix.insert(hash, id.0);
        }
        Some(invalidated)
    }

    /// Retract `slot`'s content-index entry, if it has one. Returns
    /// whether an entry was cleared.
    fn deindex(&self, slot: &FrameSlot, id: FrameId) -> bool {
        let hash = slot.content_hash.swap(0, Ordering::AcqRel);
        if hash == 0 {
            return false;
        }
        if let Some(ix) = self.index.get() {
            ix.clear(hash, id.0);
        }
        true
    }

    /// Publish `id` in the content index under `hash`. The caller must
    /// know the frame's bytes currently hash to `hash` and hold a lock
    /// that keeps them stable (the store's shard lock of a world mapping
    /// the frame).
    pub(crate) fn index_insert(&self, id: FrameId, hash: u64) {
        debug_assert_ne!(hash, 0, "0 is the not-indexed sentinel");
        let ix = self.index.get_or_init(ContentIndex::new);
        self.slot(id).content_hash.store(hash, Ordering::Release);
        ix.insert(hash, id.0);
    }

    /// Dedupe probe for a staged commit: if the index hints at a frame for
    /// `hash` whose full bytes equal `bytes`, take a reference on it and
    /// return it. Byte verification and the incref happen under the
    /// frame's data mutex, so a racing in-place write either completes
    /// before the compare (and the stale hint misses) or backs off when it
    /// sees the raised count. **Must be called under the writing world's
    /// shard write lock** — the incref is then invisible to
    /// [`crate::PageStore::verify_refcounts`], which holds every shard
    /// lock. A miss costs one index load; ref traffic happens only on a
    /// verified hit.
    pub(crate) fn dedupe_lookup(&self, hash: u64, bytes: &[u8]) -> Option<FrameId> {
        let candidate = FrameId(self.index.get()?.lookup(hash)?);
        let slot = self.slot(candidate);
        let guard = slot.data.lock();
        let data = guard.as_ref()?; // freed since the hint was published
        if data.bytes() != bytes {
            return None; // hash collision or stale entry: never share
        }
        self.try_incref(slot, candidate)
    }

    /// Wire-side variant of [`FrameTable::dedupe_lookup`]: the caller has
    /// only the hash (the page bytes live on another node), so the
    /// candidate's current bytes are re-hashed instead of compared. Same
    /// locking contract: shard write lock of the installing world held.
    pub(crate) fn share_by_hash(&self, hash: u64) -> Option<FrameId> {
        let candidate = FrameId(self.index.get()?.lookup(hash)?);
        let slot = self.slot(candidate);
        let guard = slot.data.lock();
        let data = guard.as_ref()?;
        if page_hash(data.bytes()) != hash {
            return None;
        }
        self.try_incref(slot, candidate)
    }

    /// Does the index hold a frame whose *current* bytes hash to `hash`?
    /// Read-only (no ref traffic), so it is safe from any context; used by
    /// a node answering a remote `(vpn, hash)` manifest probe. The answer
    /// is advisory — the frame can be freed before the follow-up image
    /// arrives, which the restore path then surfaces as an error.
    pub(crate) fn contains_content(&self, hash: u64) -> bool {
        let Some(ix) = self.index.get() else {
            return false;
        };
        let Some(candidate) = ix.lookup(hash) else {
            return false;
        };
        let slot = self.slot(FrameId(candidate));
        let guard = slot.data.lock();
        matches!(guard.as_ref(), Some(data) if page_hash(data.bytes()) == hash)
    }

    /// The hash `id` is currently sealed under, or 0 if it is not
    /// indexed (never sealed, or mutated in place since). Nonzero means
    /// the frame's current bytes hash to this value — sealing happens
    /// with the bytes pinned stable, and every mutation clears it first.
    pub(crate) fn content_hash(&self, id: FrameId) -> u64 {
        self.slot(id).content_hash.load(Ordering::Acquire)
    }

    /// CAS-incref that refuses a freed frame: succeeds only from a
    /// nonzero count, so it can never resurrect a slot whose last
    /// reference is being dropped (the racing `decref`'s `fetch_sub`
    /// either lands first — we observe 0 and miss — or sees our raised
    /// count and leaves the frame alive). AcqRel on success so a
    /// `write_if_private` that observes the raised count also observes
    /// everything that led to this share.
    fn try_incref(&self, slot: &FrameSlot, id: FrameId) -> Option<FrameId> {
        let mut refs = slot.refs.load(Ordering::Acquire);
        loop {
            if refs == 0 {
                return None;
            }
            match slot.refs.compare_exchange_weak(
                refs,
                refs + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(id),
                Err(now) => refs = now,
            }
        }
    }

    /// Occupied content-index entries as `(frame index, refcount)` — the
    /// verifier's view. Only consistent when the caller has excluded frame
    /// frees (the store holds every shard lock; every decref-to-zero
    /// happens under a shard write lock).
    pub(crate) fn index_snapshot(&self) -> Vec<(u32, u32)> {
        match self.index.get() {
            None => Vec::new(),
            Some(ix) => ix
                .snapshot()
                .into_iter()
                .map(|(_, frame)| {
                    let refs = self.slot(FrameId(frame)).refs.load(Ordering::Acquire);
                    (frame, refs)
                })
                .collect(),
        }
    }

    /// Number of live (allocated) frames.
    pub(crate) fn live_frames(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    /// Total slots ever allocated (live + free-listed); a high-water mark.
    #[allow(dead_code)] // diagnostics; exercised in tests
    pub(crate) fn capacity(&self) -> usize {
        self.high.load(Ordering::Relaxed)
    }

    /// Take a page buffer from the recycle pool, if one is available.
    pub(crate) fn take_pooled(&self) -> Option<PageData> {
        self.lock_recycler().pool.pop()
    }

    /// Return a staged-but-unused page buffer to the recycle pool.
    pub(crate) fn recycle(&self, page: PageData) {
        let mut rec = self.lock_recycler();
        if rec.pool.len() < POOL_MAX {
            rec.pool.push(page);
        }
    }

    /// Buffers currently waiting in the recycle pool.
    #[allow(dead_code)] // diagnostics; exercised in tests
    pub(crate) fn pooled_pages(&self) -> usize {
        self.lock_recycler().pool.len()
    }

    /// `(frame index, refcount)` for every live frame — the verifier's view.
    /// Only consistent when the caller has excluded all map mutation (the
    /// store holds every shard lock).
    pub(crate) fn snapshot_refs(&self) -> Vec<(u32, u32)> {
        (0..self.high.load(Ordering::Acquire) as u32)
            .filter_map(|i| {
                let r = self.slot(FrameId(i)).refs.load(Ordering::Acquire);
                (r > 0).then_some((i, r))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(fill: u8) -> PageData {
        let mut p = PageData::zeroed(8);
        p.bytes_mut().fill(fill);
        p
    }

    #[test]
    fn alloc_and_read() {
        let t = FrameTable::new();
        let a = t.alloc(page(1));
        let b = t.alloc(page(2));
        assert_ne!(a, b);
        assert_eq!(t.data_arc(a).bytes()[0], 1);
        assert_eq!(t.data_arc(b).bytes()[0], 2);
        assert_eq!(t.live_frames(), 2);
    }

    #[test]
    fn refcounting_frees_at_zero() {
        let t = FrameTable::new();
        let a = t.alloc(page(1));
        t.incref(a);
        assert_eq!(t.refs(a), 2);
        assert!(!t.decref(a));
        assert_eq!(t.refs(a), 1);
        assert!(t.decref(a));
        assert_eq!(t.live_frames(), 0);
    }

    #[test]
    fn free_slots_are_reused() {
        let t = FrameTable::new();
        let a = t.alloc(page(1));
        t.decref(a);
        let b = t.alloc(page(2));
        assert_eq!(a.index(), b.index(), "freed slot should be reused");
        assert_eq!(t.capacity(), 1);
    }

    #[test]
    fn allocation_crosses_chunk_boundaries() {
        let t = FrameTable::new();
        let ids: Vec<FrameId> = (0..CHUNK_SIZE + 3)
            .map(|i| t.alloc(page(i as u8)))
            .collect();
        assert_eq!(t.live_frames(), CHUNK_SIZE + 3);
        assert_eq!(
            t.data_arc(ids[CHUNK_SIZE + 2]).bytes()[0],
            (CHUNK_SIZE + 2) as u8
        );
        for id in ids {
            t.decref(id);
        }
        assert_eq!(t.live_frames(), 0);
    }

    #[test]
    fn freed_buffers_land_in_the_pool() {
        let t = FrameTable::new();
        let a = t.alloc(page(7));
        t.decref(a);
        assert_eq!(t.pooled_pages(), 1);
        let recycled = t.take_pooled().expect("pool should hold the buffer");
        assert_eq!(recycled.bytes()[0], 7, "pooled buffers keep stale bytes");
        assert!(t.take_pooled().is_none());
    }

    #[test]
    fn pool_is_bounded() {
        let t = FrameTable::new();
        for _ in 0..POOL_MAX + 50 {
            t.recycle(PageData::zeroed(8));
        }
        assert_eq!(t.pooled_pages(), POOL_MAX);
    }

    #[test]
    #[should_panic(expected = "freed frame")]
    fn use_after_free_panics() {
        let t = FrameTable::new();
        let a = t.alloc(page(1));
        t.decref(a);
        let _ = t.data_arc(a);
    }

    #[test]
    fn write_if_private_respects_sharing() {
        let t = FrameTable::new();
        let a = t.alloc(page(0));
        assert_eq!(
            t.write_if_private(a, 0, &[42], None),
            Some(false),
            "refs == 1, unindexed: in place"
        );
        assert_eq!(t.data_arc(a).bytes()[0], 42);
        t.incref(a);
        assert_eq!(
            t.write_if_private(a, 0, &[9], None),
            None,
            "refs == 2: refuse"
        );
        assert_eq!(t.data_arc(a).bytes()[0], 42, "shared page untouched");
    }

    #[test]
    fn reader_snapshot_survives_in_place_write() {
        let t = FrameTable::new();
        let a = t.alloc(page(1));
        let snapshot = t.data_arc(a);
        // Forces make_mut to copy.
        assert!(t.write_if_private(a, 0, &[9], None).is_some());
        assert_eq!(snapshot.bytes()[0], 1, "held snapshot is immutable");
        assert_eq!(t.data_arc(a).bytes()[0], 9);
    }

    #[test]
    fn dedupe_lookup_shares_only_verified_bytes() {
        let t = FrameTable::new();
        let a = t.alloc(page(5));
        let bytes = t.data_arc(a).bytes().to_vec();
        let h = page_hash(&bytes);
        t.index_insert(a, h);
        // Matching bytes: the hint verifies and the frame gains a ref.
        assert_eq!(t.dedupe_lookup(h, &bytes), Some(a));
        assert_eq!(t.refs(a), 2);
        // Same hash, different bytes (a forced collision): full-byte
        // verification refuses the share and takes no reference.
        let other = vec![9u8; bytes.len()];
        assert_eq!(t.dedupe_lookup(h, &other), None);
        assert_eq!(t.refs(a), 2);
        // A hash the index has never seen misses outright.
        assert_eq!(t.dedupe_lookup(h ^ 1, &bytes), None);
    }

    #[test]
    fn in_place_write_invalidates_the_index_entry() {
        let t = FrameTable::new();
        let a = t.alloc(page(5));
        let bytes = t.data_arc(a).bytes().to_vec();
        let h = page_hash(&bytes);
        t.index_insert(a, h);
        assert_eq!(
            t.write_if_private(a, 0, &[1], None),
            Some(true),
            "mutation must report the cleared entry"
        );
        assert_eq!(t.dedupe_lookup(h, &bytes), None, "stale hint retracted");
        assert_eq!(t.refs(a), 1);
    }

    #[test]
    fn freeing_an_indexed_frame_clears_its_entry() {
        let t = FrameTable::new();
        let a = t.alloc(page(5));
        let bytes = t.data_arc(a).bytes().to_vec();
        let h = page_hash(&bytes);
        t.index_insert(a, h);
        assert!(t.decref(a));
        assert!(t.index_snapshot().is_empty());
        // share_by_hash on the retracted hash must miss, not resurrect.
        assert_eq!(t.share_by_hash(h), None);
        // The deferred path clears too.
        let b = t.alloc(page(6));
        let hb = page_hash(t.data_arc(b).bytes());
        t.index_insert(b, hb);
        let mut freed = Vec::new();
        assert!(t.decref_deferred(b, &mut freed));
        t.recycle_freed(freed);
        assert!(t.index_snapshot().is_empty());
    }

    #[test]
    fn share_by_hash_rehashes_the_candidate() {
        let t = FrameTable::new();
        let a = t.alloc(page(3));
        let h = page_hash(t.data_arc(a).bytes());
        t.index_insert(a, h);
        assert!(t.contains_content(h));
        assert_eq!(t.share_by_hash(h), Some(a));
        assert_eq!(t.refs(a), 2);
        // Mutate via make_mut-equivalent: drop to one ref, write in place —
        // the entry clears, so the old hash no longer matches anything.
        t.decref(a);
        assert!(t.write_if_private(a, 0, &[0xEE], None).is_some());
        assert!(!t.contains_content(h));
        assert_eq!(t.share_by_hash(h), None);
    }

    #[test]
    fn snapshot_refs_lists_live_frames_only() {
        let t = FrameTable::new();
        let a = t.alloc(page(1));
        let b = t.alloc(page(2));
        t.incref(b);
        t.decref(a);
        assert_eq!(t.snapshot_refs(), vec![(b.index(), 2)]);
    }

    #[test]
    fn deferred_decref_batches_recycler_work() {
        let t = FrameTable::new();
        let ids: Vec<FrameId> = (0..6).map(|i| t.alloc(page(i as u8))).collect();
        let before = t.recycler_lock_count();
        let mut freed = Vec::new();
        for &id in &ids {
            assert!(t.decref_deferred(id, &mut freed));
        }
        assert_eq!(t.live_frames(), 0, "frames detach before recycling");
        t.recycle_freed(freed);
        assert_eq!(
            t.recycler_lock_count() - before,
            1,
            "six frames freed under one acquisition"
        );
        assert_eq!(t.pooled_pages(), 6);
        let reused = t.alloc(page(9));
        assert!(
            ids.iter().any(|id| id.index() == reused.index()),
            "deferred-freed slots return to the free list"
        );
        let count = t.recycler_lock_count();
        t.recycle_freed(Vec::new());
        assert_eq!(t.recycler_lock_count(), count, "empty batch takes no lock");
    }

    #[test]
    fn concurrent_ref_traffic_balances() {
        use std::thread;
        let t = Arc::new(FrameTable::new());
        let a = t.alloc(page(1));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let t = t.clone();
                thread::spawn(move || {
                    for _ in 0..1000 {
                        t.incref(a);
                        t.decref(a);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.refs(a), 1);
        assert_eq!(t.live_frames(), 1);
    }
}
