//! `worlds-report` — replay a JSONL event stream into the summary table
//! and the worlds-trace analyses.
//!
//! ```text
//! worlds-report run.jsonl                  # summary table from a file
//! worlds-report -                          # from stdin
//! worlds-report --critical-path run.jsonl  # + winner-lineage table
//! worlds-report --waste run.jsonl          # + waste-attribution table
//! worlds-report --net run.jsonl            # + per-node wire-traffic table
//! worlds-report --trace-out t.json run.jsonl  # + Chrome trace for Perfetto
//! ```
//!
//! Replays every event through the same [`RunStats`] mapping the live
//! registry uses, so the printed table matches what the run itself
//! would have printed. Malformed lines are skipped and counted (count on
//! stderr), never fatal mid-stream — a truncated file from a crashed run
//! still yields a report. The exit code is nonzero only when the input
//! is empty or *every* line was malformed.

use std::io::{BufRead, BufReader, Read, Write};

use worlds_obs::{chrome_trace_json, Event, EventKind, Histogram, RunStats, SpanTree};

fn main() {
    std::process::exit(run(std::env::args().skip(1).collect()));
}

const USAGE: &str =
    "usage: worlds-report [--critical-path] [--waste] [--net] [--trace-out FILE] [<events.jsonl> | -]";

struct Options {
    path: String,
    critical_path: bool,
    waste: bool,
    net: bool,
    trace_out: Option<String>,
}

fn parse_args(args: Vec<String>) -> Result<Options, String> {
    let mut opts = Options {
        path: "-".to_string(),
        critical_path: false,
        waste: false,
        net: false,
        trace_out: None,
    };
    let mut positional: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--critical-path" => opts.critical_path = true,
            "--waste" => opts.waste = true,
            "--net" => opts.net = true,
            "--trace-out" => {
                opts.trace_out = Some(
                    it.next()
                        .ok_or_else(|| "--trace-out needs a file argument".to_string())?,
                );
            }
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other}"));
            }
            other => positional.push(other.to_string()),
        }
    }
    match positional.len() {
        0 => {}
        1 => opts.path = positional.remove(0),
        _ => return Err("at most one input path".to_string()),
    }
    Ok(opts)
}

fn run(args: Vec<String>) -> i32 {
    let opts = match parse_args(args) {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("worlds-report: {msg}");
            }
            eprintln!("{USAGE}");
            return 2;
        }
    };
    let reader: Box<dyn Read> = if opts.path == "-" {
        Box::new(std::io::stdin())
    } else {
        match std::fs::File::open(&opts.path) {
            Ok(f) => Box::new(f),
            Err(e) => {
                eprintln!("worlds-report: cannot open {}: {e}", opts.path);
                return 1;
            }
        }
    };

    // The span analyses (and the per-node net table) need the events
    // themselves, not just the folded counters; collect as we stream.
    let need_spans = opts.critical_path || opts.waste || opts.trace_out.is_some();
    let need_events = need_spans || opts.net;
    let stats = RunStats::new();
    let mut events: Vec<Event> = Vec::new();
    let mut total = 0u64;
    let mut bad = 0u64;
    for line in BufReader::new(reader).lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                eprintln!("worlds-report: read error: {e}");
                return 1;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        total += 1;
        match Event::from_json(&line) {
            Ok(ev) => {
                stats.absorb(&ev);
                if need_events {
                    events.push(ev);
                }
            }
            Err(e) => {
                bad += 1;
                if bad <= 5 {
                    eprintln!("worlds-report: line {total}: {e}");
                }
            }
        }
    }

    println!("{}", stats.render_summary());
    println!("events replayed: {} ({} malformed)", total - bad, bad);
    if bad > 0 {
        eprintln!("worlds-report: skipped {bad} malformed line(s) of {total}");
    }
    if total == 0 {
        eprintln!("worlds-report: no events in input");
        return 1;
    }
    if bad == total {
        eprintln!("worlds-report: every line was malformed");
        return 1;
    }

    if opts.net {
        println!("{}", render_net_by_node(&events));
    }

    if need_spans {
        let tree = SpanTree::build(&events);
        if opts.critical_path {
            println!("{}", tree.render_critical_path());
        }
        if opts.waste {
            println!("{}", tree.render_waste());
        }
        if let Some(path) = &opts.trace_out {
            let doc = chrome_trace_json(&tree);
            if let Err(e) = std::fs::File::create(path).and_then(|mut f| {
                f.write_all(doc.as_bytes())?;
                f.flush()
            }) {
                eprintln!("worlds-report: cannot write {path}: {e}");
                return 1;
            }
            eprintln!(
                "worlds-report: wrote Chrome trace ({} worlds, {} causal edges) to {path}",
                tree.len(),
                tree.edges().len()
            );
        }
    }
    0
}

/// The `--net` table: wire traffic attributed per destination node, plus
/// the aggregate round-trip histogram. Built from the raw `net_*` events
/// (the folded [`RunStats`] counters cannot say *which* node retried).
fn render_net_by_node(events: &[Event]) -> String {
    use std::collections::BTreeMap;

    #[derive(Default)]
    struct Row {
        frames_out: u64,
        bytes_out: u64,
        frames_in: u64,
        bytes_in: u64,
        retries: u64,
        timeouts: u64,
    }

    let mut rows: BTreeMap<u64, Row> = BTreeMap::new();
    let rtt = Histogram::new();
    for e in events {
        match e.kind {
            EventKind::NetSend { node, bytes } => {
                let r = rows.entry(node).or_default();
                r.frames_out += 1;
                r.bytes_out += bytes;
            }
            EventKind::NetRecv {
                node,
                bytes,
                rtt_ns,
            } => {
                let r = rows.entry(node).or_default();
                r.frames_in += 1;
                r.bytes_in += bytes;
                rtt.record(rtt_ns);
            }
            EventKind::NetRetry { node, .. } => {
                rows.entry(node).or_default().retries += 1;
            }
            EventKind::NetTimeout { node, .. } => {
                rows.entry(node).or_default().timeouts += 1;
            }
            _ => {}
        }
    }

    let mut out = String::from("== net transport (per node) ==\n");
    if rows.is_empty() {
        out.push_str("  no net_* events in this capture\n");
        return out;
    }
    out.push_str(&format!(
        "  {:<6} {:>10} {:>12} {:>10} {:>12} {:>8} {:>9}\n",
        "node", "frames_out", "bytes_out", "frames_in", "bytes_in", "retries", "timeouts"
    ));
    for (node, r) in &rows {
        out.push_str(&format!(
            "  {:<6} {:>10} {:>12} {:>10} {:>12} {:>8} {:>9}\n",
            node, r.frames_out, r.bytes_out, r.frames_in, r.bytes_in, r.retries, r.timeouts
        ));
    }
    let snap = rtt.snapshot();
    if snap.count > 0 {
        out.push_str(&format!(
            "  rtt                    {}\n",
            snap.summary_line()
        ));
    }
    out
}
