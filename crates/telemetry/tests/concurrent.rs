//! Rollup correctness under concurrent writers: merged windowed
//! snapshots must equal a full-stream replay, and the flight ring must
//! truncate oldest-first into a dump `worlds-report` can replay.

use std::sync::Arc;
use std::thread;
use worlds_obs::{Event, EventKind, Histogram, HistogramSnapshot, Registry, RunStats};
use worlds_telemetry::{FlightRecorder, TelemetryConfig, TelemetryHub};

fn ev(kind: EventKind, world: u64, wall_ns: u64) -> Event {
    let mut e = Event::new(kind, world, Some(0), 0);
    e.wall_ns = wall_ns;
    e
}

#[test]
fn sharded_histogram_snapshots_merge_to_full_stream() {
    // 8 writers, each with its own histogram shard and a shared one;
    // merging the shard snapshots must equal the shared histogram's
    // snapshot once all writers are done — the property the rollup
    // windows and the cluster collector both lean on.
    const WRITERS: usize = 8;
    const PER_WRITER: u64 = 10_000;
    let shared = Arc::new(Histogram::new());
    let shards: Vec<Arc<Histogram>> = (0..WRITERS).map(|_| Arc::new(Histogram::new())).collect();
    let handles: Vec<_> = shards
        .iter()
        .enumerate()
        .map(|(w, shard)| {
            let shard = shard.clone();
            let shared = shared.clone();
            thread::spawn(move || {
                for i in 0..PER_WRITER {
                    // Values spread across many buckets, deterministic
                    // per writer.
                    let v = (w as u64 + 1) * 37 + i * i % 100_000;
                    shard.record(v);
                    shared.record(v);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let mut merged = HistogramSnapshot::empty();
    for shard in &shards {
        merged.merge(&shard.snapshot());
    }
    assert_eq!(merged, shared.snapshot());
    assert_eq!(merged.count, WRITERS as u64 * PER_WRITER);
}

#[test]
fn hub_totals_survive_concurrent_emitters() {
    // Many threads emit through one registry into one hub; lifetime
    // counters must land exactly, and the in-window rollup must agree
    // with a single-threaded replay of the same event multiset.
    const WRITERS: u64 = 8;
    const PER_WRITER: u64 = 5_000;
    let hub = Arc::new(TelemetryHub::new(TelemetryConfig {
        // One huge slot so every event stays in-window: the concurrent
        // sum is then exactly comparable to the serial replay.
        slot_ns: u64::MAX / 16,
        slots: 4,
        ..TelemetryConfig::default()
    }));
    let obs = Registry::with_sinks(vec![hub.clone()]);
    let handles: Vec<_> = (0..WRITERS)
        .map(|w| {
            let obs = obs.clone();
            thread::spawn(move || {
                for i in 0..PER_WRITER {
                    let world = w * PER_WRITER + i;
                    obs.emit(|| Event::new(EventKind::Spawn { alt: w }, world, Some(0), 0));
                    obs.emit(|| {
                        Event::new(
                            EventKind::GuardVerdict {
                                pass: true,
                                duration_ns: 100 + w * 50,
                                alt: Some(w % 4),
                                site: Some(0),
                            },
                            world,
                            Some(0),
                            0,
                        )
                    });
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let replay = TelemetryHub::new(TelemetryConfig {
        slot_ns: u64::MAX / 16,
        slots: 4,
        ..TelemetryConfig::default()
    });
    for w in 0..WRITERS {
        for i in 0..PER_WRITER {
            replay.absorb(&ev(EventKind::Spawn { alt: w }, w * PER_WRITER + i, 0));
            replay.absorb(&ev(
                EventKind::GuardVerdict {
                    pass: true,
                    duration_ns: 100 + w * 50,
                    alt: Some(w % 4),
                    site: Some(0),
                },
                w * PER_WRITER + i,
                0,
            ));
        }
    }
    assert_eq!(hub.gauges(), replay.gauges());
    assert_eq!(
        hub.gauges().live_worlds,
        WRITERS * PER_WRITER,
        "every spawn accounted"
    );
    // Site histograms absorbed every sample (wall_ns stayed 0, so no
    // decay step fired in either hub).
    let live = hub.site_table();
    let serial = replay.site_table();
    assert_eq!(live, serial, "concurrent == serial site table");
    let total: u64 = live[0].alts.iter().map(|a| a.count).sum();
    assert_eq!(total, WRITERS * PER_WRITER);
}

#[test]
fn flight_ring_truncates_under_concurrent_writers() {
    const CAP: usize = 256;
    const WRITERS: u64 = 4;
    const PER_WRITER: u64 = 2_000;
    let ring = Arc::new(FlightRecorder::new(CAP));
    let handles: Vec<_> = (0..WRITERS)
        .map(|w| {
            let ring = ring.clone();
            thread::spawn(move || {
                for i in 0..PER_WRITER {
                    ring.record_event(&ev(EventKind::Rendezvous, w * PER_WRITER + i, i));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(ring.recorded(), WRITERS * PER_WRITER);
    let events = ring.events();
    assert!(events.len() <= CAP, "bounded: {} > {CAP}", events.len());
    // After the writers stop, the ring holds each writer's newest
    // events only — nothing older than (per-writer total - capacity)
    // can have survived.
    for e in &events {
        let within_writer = e.world % PER_WRITER;
        assert!(
            within_writer >= PER_WRITER - CAP as u64,
            "world {} is older than any possible survivor",
            e.world
        );
    }
    // The dump replays through the same absorb mapping worlds-report
    // uses, Meta header included.
    let mut buf = Vec::new();
    let lines = ring.dump_to(&mut buf).unwrap();
    assert_eq!(lines, events.len() + 1);
    let stats = RunStats::new();
    let mut parsed = 0;
    for line in String::from_utf8(buf).unwrap().lines() {
        let e = Event::from_json(line).expect("dump line parses");
        stats.absorb(&e);
        parsed += 1;
    }
    assert_eq!(parsed, lines);
    assert_eq!(stats.kernel.rendezvous.get() as usize, events.len());
}
