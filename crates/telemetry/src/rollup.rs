//! The hub: streaming rollups over the live event stream.
//!
//! A [`TelemetryHub`] is an [`EventSink`]. Every event the registry
//! emits lands here once, inline, and is folded into three lock-free
//! structures:
//!
//! * **Slot rollups** — a ring of time slots (default 8 × 250ms). Each
//!   slot is a block of relaxed atomic counters tagged with the epoch
//!   (`wall_ns / slot_ns`) it belongs to; writers rotate a stale slot
//!   by CAS-ing its epoch forward and zeroing the counters. [`Rates`]
//!   sums the slots still inside the window — a sliding-window rate
//!   with bounded staleness (one slot), no replay, no locks.
//! * **Cumulative gauges** — lifetime spawn/commit/eliminate counts
//!   and the frames-resident level, giving [`Gauges`] (live worlds,
//!   frames, elimination backlog) as pure event arithmetic.
//! * **Per-site statistics** — [`SiteStats`](crate::SiteStats) decay
//!   histograms feeding the `Rμ`/`Ro`/`PI` table.
//!
//! Time is *event time*: the hub's "now" is the largest `wall_ns` it
//! has seen, so rollups replay deterministically from a JSONL stream
//! and never consult a clock of their own.
//!
//! The hot path is `record`: one `fetch_max`, one slot lookup, a
//! handful of relaxed `fetch_add`s, one uncontended flight-ring slot —
//! the same class of work the registry's own `RunStats::absorb`
//! already does per event. A slot rotation racing a laggard writer can
//! credit a stale event to the fresh slot; that skews one slot by a
//! few events, which rate snapshots tolerate (same contract as
//! histogram snapshots).

use crate::flight::FlightRecorder;
use crate::pi::{SiteSnapshot, SiteStats};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use worlds_obs::{Counter, Event, EventKind, EventSink, Gauge, Histogram, HistogramSnapshot};

/// Per-slot counter indices. One cache-friendly block of `u64`s per
/// slot instead of named fields, so rotation is a short loop.
mod c {
    pub const EVENTS: usize = 0;
    pub const SPAWNS: usize = 1;
    pub const COMMITS: usize = 2;
    pub const ELIMS: usize = 3;
    pub const GUARDS: usize = 4;
    pub const FAULTS: usize = 5;
    pub const NET_FRAMES: usize = 6;
    pub const NET_RETRIES: usize = 7;
    pub const RTT_SUM: usize = 8;
    pub const RTT_COUNT: usize = 9;
    pub const BUSY_TICKS: usize = 10;
    pub const TOTAL_TICKS: usize = 11;
    pub const N: usize = 12;
}

/// Shape of the hub: window geometry, decay clock, flight capacity.
#[derive(Debug, Clone, Copy)]
pub struct TelemetryConfig {
    /// Width of one rollup slot in event-time nanoseconds.
    pub slot_ns: u64,
    /// Number of slots in the sliding window.
    pub slots: usize,
    /// Flight-recorder ring capacity (events).
    pub flight_capacity: usize,
    /// Event-time interval between half-life steps of the per-site
    /// decay histograms.
    pub decay_interval_ns: u64,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            slot_ns: 250_000_000,
            slots: 8,
            flight_capacity: 4096,
            decay_interval_ns: 1_000_000_000,
        }
    }
}

struct Slot {
    /// `wall_ns / slot_ns` of the data currently in the counters.
    epoch: AtomicU64,
    counts: [AtomicU64; c::N],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            epoch: AtomicU64::new(0),
            counts: [0u64; c::N].map(AtomicU64::new),
        }
    }
}

/// Windowed rates (per second of event time) plus the RTT summary for
/// the same window. All zeros before any event arrives.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Rates {
    /// Span of event time the rates cover.
    pub window_ns: u64,
    /// All events per second.
    pub events_s: f64,
    /// Worlds spawned per second.
    pub spawns_s: f64,
    /// Speculation blocks committed per second.
    pub commits_s: f64,
    /// Losers eliminated (sync + async) per second.
    pub elims_s: f64,
    /// Guard verdicts per second.
    pub guards_s: f64,
    /// Page faults (CoW + zero-fill) per second.
    pub faults_s: f64,
    /// Wire frames (sends + receives) per second.
    pub net_frames_s: f64,
    /// Wire retries per second.
    pub net_retries_s: f64,
    /// Mean request→reply round trip inside the window, ns.
    pub rtt_mean_ns: f64,
    /// Fraction of profiler sampler ticks that caught a worker on-CPU
    /// inside the window, 0..=1. Zero without a sampler attached.
    pub cpu_util: f64,
}

/// Instantaneous levels derived from lifetime counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Gauges {
    /// Speculative worlds spawned and not yet committed, eliminated or
    /// timed out.
    pub live_worlds: u64,
    /// Physical frames resident (CoW/zero-fill minus frees).
    pub frames_resident: u64,
    /// Losers queued for background elimination and not yet absorbed
    /// into a sync/async teardown the hub saw. Grows when async
    /// elimination lags.
    pub elim_backlog: u64,
}

/// The live rollup hub. Construct one, wrap it in an `Arc`, and hand
/// it to [`worlds_obs::Registry::with_sinks`].
pub struct TelemetryHub {
    cfg: TelemetryConfig,
    slots: Vec<Slot>,
    /// Largest `wall_ns` seen — the hub's "now".
    max_wall: AtomicU64,
    /// Event time of the last decay step.
    last_decay: AtomicU64,
    // Lifetime counters behind the gauges.
    spawns: Counter,
    commits: Counter,
    elim_sync: Counter,
    elim_async: Counter,
    elim_async_reaped: Counter,
    timeouts: Counter,
    /// Lifetime watchdog stall events.
    stalls: Counter,
    frames: Gauge,
    /// Lifetime RTT distribution (decays with the sites).
    rtt: Histogram,
    sites: SiteStats,
    flight: FlightRecorder,
    /// `effective_cores` from the last Meta event, 0 before one.
    meta_cores: AtomicU64,
}

impl Default for TelemetryHub {
    fn default() -> Self {
        TelemetryHub::new(TelemetryConfig::default())
    }
}

impl TelemetryHub {
    /// A hub with the given window geometry.
    pub fn new(cfg: TelemetryConfig) -> TelemetryHub {
        let cfg = TelemetryConfig {
            slot_ns: cfg.slot_ns.max(1),
            slots: cfg.slots.max(1),
            ..cfg
        };
        TelemetryHub {
            slots: (0..cfg.slots).map(|_| Slot::new()).collect(),
            cfg,
            max_wall: AtomicU64::new(0),
            last_decay: AtomicU64::new(0),
            spawns: Counter::new(),
            commits: Counter::new(),
            elim_sync: Counter::new(),
            elim_async: Counter::new(),
            elim_async_reaped: Counter::new(),
            timeouts: Counter::new(),
            stalls: Counter::new(),
            frames: Gauge::new(),
            rtt: Histogram::new(),
            sites: SiteStats::new(),
            flight: FlightRecorder::new(cfg.flight_capacity),
            meta_cores: AtomicU64::new(0),
        }
    }

    /// The geometry this hub was built with.
    pub fn config(&self) -> &TelemetryConfig {
        &self.cfg
    }

    /// The hub's current event time (largest `wall_ns` seen).
    pub fn now_ns(&self) -> u64 {
        self.max_wall.load(Relaxed)
    }

    /// `effective_cores` from the capture's Meta event, if one arrived.
    pub fn effective_cores(&self) -> Option<u64> {
        match self.meta_cores.load(Relaxed) {
            0 => None,
            n => Some(n),
        }
    }

    /// The always-on ring of recent events.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// The per-site statistics feeding the PI table.
    pub fn sites(&self) -> &SiteStats {
        &self.sites
    }

    /// Fold one event in. This is the hot path; see the module docs for
    /// its cost budget.
    pub fn absorb(&self, ev: &Event) {
        self.flight.record_event(ev);
        let wall = ev.wall_ns;
        self.max_wall.fetch_max(wall, Relaxed);
        let slot = self.slot_for(wall);
        let bump = |i: usize| {
            slot.counts[i].fetch_add(1, Relaxed);
        };
        bump(c::EVENTS);
        match &ev.kind {
            EventKind::Spawn { .. } => {
                bump(c::SPAWNS);
                self.spawns.incr();
            }
            EventKind::Commit {
                overhead_ns, site, ..
            } => {
                bump(c::COMMITS);
                self.commits.incr();
                if let Some(site) = site {
                    self.sites.record_overhead(*site, *overhead_ns);
                    self.sites.record_commit(*site);
                }
            }
            EventKind::EliminateSync { overhead_ns, site } => {
                bump(c::ELIMS);
                self.elim_sync.incr();
                if let Some(site) = site {
                    self.sites.record_overhead(*site, *overhead_ns);
                }
            }
            EventKind::EliminateAsync => {
                bump(c::ELIMS);
                self.elim_async.incr();
            }
            EventKind::FrameFree { frames } => {
                // Async losers surface to the hub as the frame frees
                // their teardown produces; treat any free as backlog
                // drain progress (saturating, like the gauge).
                self.frames.sub(*frames);
                if self.elim_async_reaped.get() < self.elim_async.get() {
                    self.elim_async_reaped.incr();
                }
            }
            EventKind::Timeout => {
                self.timeouts.incr();
            }
            EventKind::GuardVerdict {
                duration_ns,
                alt,
                site,
                ..
            } => {
                bump(c::GUARDS);
                if let (Some(site), Some(alt)) = (site, alt) {
                    self.sites.record_guard(*site, *alt, *duration_ns);
                }
            }
            EventKind::CowCopy { .. } | EventKind::ZeroFill { .. } => {
                bump(c::FAULTS);
                self.frames.add(1);
            }
            EventKind::NetSend { .. } => bump(c::NET_FRAMES),
            EventKind::NetRecv { rtt_ns, .. } => {
                bump(c::NET_FRAMES);
                slot.counts[c::RTT_SUM].fetch_add(*rtt_ns, Relaxed);
                bump(c::RTT_COUNT);
                self.rtt.record(*rtt_ns);
            }
            EventKind::NetRetry { .. } => bump(c::NET_RETRIES),
            EventKind::CpuSamples {
                samples,
                period_ns,
                site: Some(site),
                alt,
                ..
            } => {
                // `None` alt clamps into the last cell, same as
                // overflow alts do for guard samples.
                self.sites.record_cpu(
                    *site,
                    alt.unwrap_or(u64::MAX),
                    samples.saturating_mul(*period_ns),
                );
            }
            EventKind::CpuSamples { site: None, .. } => {}
            EventKind::WorkerUtil { busy, total, .. } => {
                slot.counts[c::BUSY_TICKS].fetch_add(*busy, Relaxed);
                slot.counts[c::TOTAL_TICKS].fetch_add(*total, Relaxed);
            }
            EventKind::Stall { .. } => {
                self.stalls.incr();
            }
            EventKind::Meta { effective_cores } => {
                self.meta_cores.store(*effective_cores, Relaxed);
            }
            _ => {}
        }
    }

    /// The slot for `wall_ns`, rotated forward if it still holds an
    /// older epoch.
    fn slot_for(&self, wall_ns: u64) -> &Slot {
        let epoch = wall_ns / self.cfg.slot_ns;
        let slot = &self.slots[(epoch % self.slots.len() as u64) as usize];
        let cur = slot.epoch.load(Relaxed);
        if cur != epoch
            && cur < epoch
            && slot
                .epoch
                .compare_exchange(cur, epoch, Relaxed, Relaxed)
                .is_ok()
        {
            for count in &slot.counts {
                count.store(0, Relaxed);
            }
        }
        slot
    }

    /// Sliding-window rates as of the hub's event time.
    pub fn rates(&self) -> Rates {
        let now = self.max_wall.load(Relaxed);
        let now_epoch = now / self.cfg.slot_ns;
        let lo = now_epoch.saturating_sub(self.slots.len() as u64 - 1);
        let mut sums = [0u64; c::N];
        for slot in &self.slots {
            let epoch = slot.epoch.load(Relaxed);
            if epoch >= lo && epoch <= now_epoch {
                for (sum, count) in sums.iter_mut().zip(&slot.counts) {
                    *sum += count.load(Relaxed);
                }
            }
        }
        let window_ns = now.saturating_sub(lo * self.cfg.slot_ns).max(1);
        let per_s = |n: u64| n as f64 * 1e9 / window_ns as f64;
        Rates {
            window_ns,
            events_s: per_s(sums[c::EVENTS]),
            spawns_s: per_s(sums[c::SPAWNS]),
            commits_s: per_s(sums[c::COMMITS]),
            elims_s: per_s(sums[c::ELIMS]),
            guards_s: per_s(sums[c::GUARDS]),
            faults_s: per_s(sums[c::FAULTS]),
            net_frames_s: per_s(sums[c::NET_FRAMES]),
            net_retries_s: per_s(sums[c::NET_RETRIES]),
            rtt_mean_ns: if sums[c::RTT_COUNT] == 0 {
                0.0
            } else {
                sums[c::RTT_SUM] as f64 / sums[c::RTT_COUNT] as f64
            },
            cpu_util: if sums[c::TOTAL_TICKS] == 0 {
                0.0
            } else {
                sums[c::BUSY_TICKS] as f64 / sums[c::TOTAL_TICKS] as f64
            },
        }
    }

    /// Lifetime watchdog stall events seen in the stream.
    pub fn stalls(&self) -> u64 {
        self.stalls.get()
    }

    /// The call site burning the most estimated on-CPU time, with its
    /// share (0..=1) of all attributed CPU. `None` until profiler
    /// flushes arrive.
    pub fn hot_site(&self) -> Option<(String, f64)> {
        let table = self.site_table();
        let site_cpu = |s: &SiteSnapshot| s.alts.iter().map(|a| a.cpu_ns).sum::<f64>();
        let total: f64 = table.iter().map(site_cpu).sum();
        if total <= 0.0 {
            return None;
        }
        table
            .into_iter()
            .max_by(|a, b| site_cpu(a).total_cmp(&site_cpu(b)))
            .map(|s| {
                let share = site_cpu(&s) / total;
                (s.label, share)
            })
    }

    /// Current levels from the lifetime counters.
    pub fn gauges(&self) -> Gauges {
        let spawns = self.spawns.get();
        let done =
            self.commits.get() + self.elim_sync.get() + self.elim_async.get() + self.timeouts.get();
        Gauges {
            live_worlds: spawns.saturating_sub(done),
            frames_resident: self.frames.get(),
            elim_backlog: self
                .elim_async
                .get()
                .saturating_sub(self.elim_async_reaped.get()),
        }
    }

    /// Lifetime RTT distribution (subject to decay).
    pub fn rtt_snapshot(&self) -> HistogramSnapshot {
        self.rtt.snapshot()
    }

    /// The per-site `Rμ`/`Ro`/`PI` table, advancing the decay clock
    /// first. Reads drive decay: the histograms halve once per
    /// `decay_interval_ns` of *event time* elapsed since the last step,
    /// so an idle stream stops decaying and a replayed one decays
    /// identically.
    pub fn site_table(&self) -> Vec<SiteSnapshot> {
        self.maybe_decay();
        self.sites.snapshot()
    }

    fn maybe_decay(&self) {
        let now = self.max_wall.load(Relaxed);
        let last = self.last_decay.load(Relaxed);
        if now.saturating_sub(last) >= self.cfg.decay_interval_ns
            && self
                .last_decay
                .compare_exchange(last, now, Relaxed, Relaxed)
                .is_ok()
        {
            self.sites.decay();
            self.rtt.decay_halve();
        }
    }
}

impl EventSink for TelemetryHub {
    fn record(&self, ev: &Event) {
        self.absorb(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(kind: EventKind, wall_ns: u64) -> Event {
        let mut ev = Event::new(kind, 1, Some(0), 0);
        ev.wall_ns = wall_ns;
        ev
    }

    fn hub_ms(slot_ms: u64, slots: usize) -> TelemetryHub {
        TelemetryHub::new(TelemetryConfig {
            slot_ns: slot_ms * 1_000_000,
            slots,
            ..TelemetryConfig::default()
        })
    }

    #[test]
    fn rates_cover_only_the_window() {
        let hub = hub_ms(10, 4);
        // 100 spawns in the first 10ms slot, then silence until 1s.
        for i in 0..100u64 {
            hub.absorb(&at(EventKind::Spawn { alt: 0 }, i * 100_000));
        }
        let early = hub.rates();
        assert!(early.spawns_s > 0.0);
        // An event far in the future rotates the window past the burst.
        hub.absorb(&at(EventKind::Rendezvous, 1_000_000_000));
        let late = hub.rates();
        assert_eq!(late.spawns_s, 0.0, "burst fell out of the window: {late:?}");
        assert!(late.events_s > 0.0, "the rendezvous itself is in-window");
    }

    #[test]
    fn gauges_track_lifecycle() {
        let hub = TelemetryHub::default();
        for w in 0..5u64 {
            hub.absorb(&at(EventKind::Spawn { alt: w }, w));
        }
        hub.absorb(&at(
            EventKind::Commit {
                dirty_pages: 1,
                overhead_ns: 10,
                site: None,
            },
            10,
        ));
        hub.absorb(&at(
            EventKind::EliminateSync {
                overhead_ns: 5,
                site: None,
            },
            11,
        ));
        hub.absorb(&at(EventKind::EliminateAsync, 12));
        let g = hub.gauges();
        assert_eq!(g.live_worlds, 2);
        assert_eq!(g.elim_backlog, 1);
        // Frame frees drain the async backlog.
        hub.absorb(&at(EventKind::FrameFree { frames: 1 }, 13));
        assert_eq!(hub.gauges().elim_backlog, 0);
    }

    #[test]
    fn frames_resident_is_event_arithmetic() {
        let hub = TelemetryHub::default();
        hub.absorb(&at(EventKind::ZeroFill { vpn: 0 }, 1));
        hub.absorb(&at(EventKind::CowCopy { vpn: 1, bytes: 64 }, 2));
        assert_eq!(hub.gauges().frames_resident, 2);
        hub.absorb(&at(EventKind::FrameFree { frames: 5 }, 3));
        assert_eq!(hub.gauges().frames_resident, 0, "saturates like the gauge");
    }

    #[test]
    fn rtt_window_mean_and_meta() {
        let hub = TelemetryHub::default();
        hub.absorb(&at(
            EventKind::NetRecv {
                node: 1,
                bytes: 64,
                rtt_ns: 1000,
            },
            1,
        ));
        hub.absorb(&at(
            EventKind::NetRecv {
                node: 1,
                bytes: 64,
                rtt_ns: 3000,
            },
            2,
        ));
        assert_eq!(hub.rates().rtt_mean_ns, 2000.0);
        assert_eq!(hub.effective_cores(), None);
        hub.absorb(&at(EventKind::Meta { effective_cores: 4 }, 3));
        assert_eq!(hub.effective_cores(), Some(4));
    }

    #[test]
    fn profiler_events_feed_util_stalls_and_hot_site() {
        let hub = TelemetryHub::default();
        assert_eq!(hub.rates().cpu_util, 0.0);
        assert_eq!(hub.hot_site(), None);
        // Two workers flush utilization: 3/4 + 1/4 busy → 50% overall.
        hub.absorb(&at(
            EventKind::WorkerUtil {
                worker: 0,
                busy: 3,
                total: 4,
            },
            1,
        ));
        hub.absorb(&at(
            EventKind::WorkerUtil {
                worker: 1,
                busy: 1,
                total: 4,
            },
            2,
        ));
        assert_eq!(hub.rates().cpu_util, 0.5);
        // CPU flushes only reach the site grid when attributed; the
        // hottest site needs a guard sample to have a table row.
        let hot = worlds_obs::site_id("rollup-test/hot").0;
        let cold = worlds_obs::site_id("rollup-test/cold").0;
        for site in [hot, cold] {
            hub.absorb(&at(
                EventKind::GuardVerdict {
                    pass: true,
                    duration_ns: 100,
                    alt: Some(0),
                    site: Some(site),
                },
                3,
            ));
        }
        hub.absorb(&at(
            EventKind::CpuSamples {
                samples: 30,
                period_ns: 100,
                site: Some(hot),
                alt: Some(0),
                phase: 2,
            },
            4,
        ));
        hub.absorb(&at(
            EventKind::CpuSamples {
                samples: 10,
                period_ns: 100,
                site: Some(cold),
                alt: Some(0),
                phase: 2,
            },
            5,
        ));
        // Unattributed samples (idle pool workers) go nowhere.
        hub.absorb(&at(
            EventKind::CpuSamples {
                samples: 99,
                period_ns: 100,
                site: None,
                alt: None,
                phase: 1,
            },
            6,
        ));
        let (label, share) = hub.hot_site().unwrap();
        assert_eq!(label, "rollup-test/hot");
        assert!((share - 0.75).abs() < 1e-9, "3000 of 4000 ns: {share}");
        // Stalls count.
        assert_eq!(hub.stalls(), 0);
        hub.absorb(&at(
            EventKind::Stall {
                site: Some(hot),
                phase: 2,
                waited_ns: 5_000_000_000,
            },
            7,
        ));
        assert_eq!(hub.stalls(), 1);
    }

    #[test]
    fn decay_is_event_time_driven() {
        let hub = TelemetryHub::new(TelemetryConfig {
            decay_interval_ns: 1000,
            ..TelemetryConfig::default()
        });
        let site = worlds_obs::site_id("rollup-test/decay").0;
        for i in 0..8u64 {
            hub.absorb(&at(
                EventKind::GuardVerdict {
                    pass: true,
                    duration_ns: 100,
                    alt: Some(0),
                    site: Some(site),
                },
                i,
            ));
        }
        let before: u64 = hub
            .site_table()
            .iter()
            .find(|s| s.site == site)
            .map(|s| s.alts.iter().map(|a| a.count).sum())
            .unwrap();
        assert_eq!(before, 8);
        // Advance event time past the decay interval and read again.
        hub.absorb(&at(EventKind::Rendezvous, 5000));
        let after: u64 = hub
            .site_table()
            .iter()
            .find(|s| s.site == site)
            .map(|s| s.alts.iter().map(|a| a.count).sum())
            .unwrap();
        assert_eq!(after, 4, "one half-life elapsed");
    }
}
