//! The Multiple-Worlds parallel rootfinder (§4.3, Table I).
//!
//! Each alternative runs the **strict** single-angle driver with its own
//! starting angle; the first to find (and verify) all roots wins the
//! block. Losing angles — including ones that would have *failed* — are
//! eliminated, so the block's response time tracks the fastest successful
//! angle rather than the sequential retry ladder.

use std::time::Duration;

use worlds::{AltBlock, AltError, ElimMode, RunReport, Speculation};

use crate::complex::Complex;
use crate::jt::{find_all_roots, JtConfig};
use crate::poly::Poly;

/// Result of one parallel race.
#[derive(Debug)]
pub struct ParallelRootResult {
    /// The winning angle (degrees).
    pub angle: f64,
    /// All roots found by the winner.
    pub roots: Vec<Complex>,
    /// Iterations the winner spent.
    pub iterations: u64,
}

/// Race `angles` over the polynomial inside a Multiple-Worlds block.
///
/// Each alternative writes its roots into the speculative state cell
/// `"roots"`, so the committed world carries the winner's answer — the
/// losing worlds' writes vanish with them.
pub fn parallel_find_roots(
    spec: &Speculation,
    poly: &Poly,
    angles: &[f64],
    cfg: &JtConfig,
    timeout: Option<Duration>,
) -> RunReport<ParallelRootResult> {
    assert!(!angles.is_empty(), "need at least one starting angle");
    let mut block: AltBlock<ParallelRootResult> =
        AltBlock::new().site("rootfinder/race").elim(ElimMode::Sync);
    if let Some(t) = timeout {
        block = block.timeout(t);
    }
    for &angle in angles {
        let poly = poly.clone();
        let cfg = *cfg;
        block = block.alt(format!("angle={angle}"), move |ctx| {
            ctx.checkpoint()?;
            let report = find_all_roots(&poly, angle, &cfg)
                .map_err(|e| AltError::GuardFailed(e.to_string()))?;
            ctx.checkpoint()?;
            // Persist the answer into speculative state: committed iff we
            // win.
            let mut bytes = Vec::with_capacity(16 * report.roots.len());
            for r in &report.roots {
                bytes.extend_from_slice(&r.re.to_le_bytes());
                bytes.extend_from_slice(&r.im.to_le_bytes());
            }
            ctx.put_bytes("roots", &bytes)?;
            ctx.put_f64("winning_angle", angle)?;
            Ok(ParallelRootResult {
                angle,
                roots: report.roots,
                iterations: report.iterations,
            })
        });
    }
    spec.run(block)
}

/// Decode the committed `"roots"` cell written by the winning alternative.
pub fn committed_roots(spec: &Speculation) -> Option<Vec<Complex>> {
    spec.read(|ctx| {
        let bytes = ctx.get_bytes("roots")?;
        let mut roots = Vec::with_capacity(bytes.len() / 16);
        for chunk in bytes.chunks_exact(16) {
            let re = f64::from_le_bytes(chunk[..8].try_into().expect("8 bytes"));
            let im = f64::from_le_bytes(chunk[8..].try_into().expect("8 bytes"));
            roots.push(Complex::new(re, im));
        }
        Some(roots)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{legendre_like, TEST_ANGLES};

    #[test]
    fn parallel_race_finds_all_roots() {
        let (p, expected) = legendre_like(10);
        let spec = Speculation::new();
        let report = parallel_find_roots(&spec, &p, &TEST_ANGLES[..4], &JtConfig::default(), None);
        assert!(report.succeeded(), "outcome: {:?}", report.outcome);
        let result = report.value.expect("winner value");
        assert_eq!(result.roots.len(), expected.len());

        // Committed state matches the winner's in-memory answer.
        let committed = committed_roots(&spec).expect("roots cell committed");
        assert_eq!(committed.len(), result.roots.len());
        for (a, b) in committed.iter().zip(&result.roots) {
            assert!((*a - *b).abs() < 1e-15);
        }
        // And they are genuine zeros.
        for r in &committed {
            assert!(
                p.monic().eval(*r).abs() < 1e-5,
                "residual {}",
                p.monic().eval(*r).abs()
            );
        }
    }

    #[test]
    fn failing_angles_lose_but_block_succeeds() {
        let (p, _) = legendre_like(12);
        // Starve stage 2 so some angles fail; at least one of eight should
        // still converge.
        let cfg = JtConfig {
            stage2_iters: 8,
            ..JtConfig::default()
        };
        let spec = Speculation::new();
        let report = parallel_find_roots(&spec, &p, &TEST_ANGLES, &cfg, None);
        if report.succeeded() {
            assert!(committed_roots(&spec).is_some());
        } else {
            // All angles failing is acceptable for this starved config,
            // but the block must then report AllFailed, not hang.
            assert!(report.value.is_none());
        }
    }

    #[test]
    #[should_panic(expected = "at least one starting angle")]
    fn empty_angle_list_rejected() {
        let (p, _) = legendre_like(4);
        let spec = Speculation::new();
        let _ = parallel_find_roots(&spec, &p, &[], &JtConfig::default(), None);
    }
}
