//! Figure 1 semantics, end to end: an alternative block behaves as a
//! nondeterministic *sequential* choice — at most one alternative's state
//! change occurs, guards filter, failure and timeout paths work — across
//! both the real-thread executor and the virtual-time simulator.

use std::time::Duration;

use multiple_worlds::worlds::{AltBlock, AltError, Alternative, ElimMode, RunOutcome, Speculation};
use multiple_worlds::worlds_kernel::{
    AltSpec, BlockSpec, CostModel, Machine, Outcome, VirtualTime,
};

#[test]
fn exactly_one_alternative_commits_thread_executor() {
    let spec = Speculation::new();
    spec.setup(|c| c.put_u64("slot", 0)).unwrap();
    let report = spec.run(
        AltBlock::new()
            .alt("w1", |ctx| {
                ctx.put_u64("slot", 1)?;
                Ok(1u64)
            })
            .alt("w2", |ctx| {
                ctx.put_u64("slot", 2)?;
                Ok(2u64)
            })
            .alt("w3", |ctx| {
                ctx.put_u64("slot", 3)?;
                Ok(3u64)
            })
            .elim(ElimMode::Sync),
    );
    let winner = report.value.expect("someone wins");
    let committed = spec.read(|c| c.get_u64("slot")).unwrap();
    assert_eq!(
        committed, winner,
        "the committed state must be exactly the winner's write"
    );
    let wins = report
        .alts
        .iter()
        .filter(|a| matches!(a.status, multiple_worlds::worlds::AltRunStatus::Won))
        .count();
    assert_eq!(wins, 1, "at most one alternative takes effect");
}

#[test]
fn result_is_always_a_sequential_possibility() {
    // Whatever the race produces must equal what *some* sequential
    // execution of a single alternative would have produced — the
    // "apples and oranges" guard of §3.3.
    for _ in 0..5 {
        let spec = Speculation::new();
        spec.setup(|c| c.put_u64("x", 100)).unwrap();
        let report = spec.run(
            AltBlock::new()
                .alt("add", |ctx| {
                    let x = ctx.get_u64("x").unwrap();
                    ctx.put_u64("x", x + 1)?;
                    Ok(x + 1)
                })
                .alt("double", |ctx| {
                    let x = ctx.get_u64("x").unwrap();
                    ctx.put_u64("x", x * 2)?;
                    Ok(x * 2)
                })
                .elim(ElimMode::Sync),
        );
        let committed = spec.read(|c| c.get_u64("x")).unwrap();
        assert!(
            committed == 101 || committed == 200,
            "must match one sequential world, got {committed}"
        );
        assert_eq!(Some(committed), report.value);
    }
}

#[test]
fn failure_path_when_every_guard_fails() {
    let spec = Speculation::new();
    let report: multiple_worlds::worlds::RunReport<u32> = spec.run(
        AltBlock::new()
            .alternative(Alternative::new("neg", |_| Ok(1u32)).guard(|_| false))
            .alt("err", |_| Err(AltError::GuardFailed("no".into())))
            .elim(ElimMode::Sync),
    );
    assert_eq!(report.outcome, RunOutcome::AllFailed);
    assert_eq!(report.value, None);
}

#[test]
fn timeout_is_the_alt_wait_timeout() {
    let spec = Speculation::new();
    let report: multiple_worlds::worlds::RunReport<u32> = spec.run(
        AltBlock::new()
            .alt("hang", |ctx| loop {
                std::thread::sleep(Duration::from_millis(5));
                ctx.checkpoint()?;
            })
            .timeout(Duration::from_millis(60))
            .elim(ElimMode::Sync),
    );
    assert_eq!(report.outcome, RunOutcome::TimedOut);
}

#[test]
fn simulator_and_thread_executor_agree_on_winner_identity() {
    // Same workload shape in both executors: the cheap alternative wins.
    let mut machine = Machine::new(CostModel::ideal(2));
    let sim = machine.run_block(&BlockSpec::new(vec![
        AltSpec::new("slow").compute_ms(500.0),
        AltSpec::new("fast").compute_ms(5.0),
    ]));
    assert_eq!(
        sim.outcome,
        Outcome::Winner {
            index: 1,
            label: "fast".into()
        }
    );

    let spec = Speculation::new();
    let threaded = spec.run(
        AltBlock::new()
            .alt("slow", |ctx| {
                for _ in 0..100 {
                    std::thread::sleep(Duration::from_millis(5));
                    ctx.checkpoint()?;
                }
                Ok("slow")
            })
            .alt("fast", |_| Ok("fast"))
            .elim(ElimMode::Sync),
    );
    assert_eq!(threaded.winner_label(), Some("fast"));
}

#[test]
fn sim_guard_placements_preserve_the_winner_set() {
    use multiple_worlds::worlds_kernel::GuardPlacement;
    for placement in [
        GuardPlacement::PreSpawn,
        GuardPlacement::InChild,
        GuardPlacement::AtSync,
    ] {
        let mut machine = Machine::new(CostModel::hp9000_350().with_cpus(2));
        let report = machine.run_block(
            &BlockSpec::new(vec![
                AltSpec::new("bad-fast").compute_ms(1.0).guard(false),
                AltSpec::new("good").compute_ms(50.0),
            ])
            .guard_placement(placement),
        );
        assert_eq!(
            report.outcome,
            Outcome::Winner {
                index: 1,
                label: "good".into()
            },
            "placement {placement:?} changed the winner"
        );
    }
}

#[test]
fn sim_timeout_value_from_the_paper_recipe() {
    // §2.2: choose TIMEOUT as "an execution time which is clearly
    // unacceptable to the application".
    let mut machine = Machine::new(CostModel::ideal(1));
    let report = machine.run_block(
        &BlockSpec::new(vec![
            AltSpec::new("too-slow").compute(VirtualTime::from_secs(60.0))
        ])
        .timeout(VirtualTime::from_secs(1.0)),
    );
    assert_eq!(report.outcome, Outcome::TimedOut);
    assert_eq!(report.wall, VirtualTime::from_secs(1.0));
}
