//! Cross-executor parity: the same abstract scenario must produce the
//! same committed-choice outcome through all three executors — the
//! virtual-time simulator, the real-thread executor, and (on Unix) the
//! real fork(2) backend. The paper's semantics are executor-independent;
//! this is the test that keeps them that way.

use std::time::Duration;

use multiple_worlds::worlds::{AltBlock, AltError, ElimMode, Speculation};
use multiple_worlds::worlds_kernel::{AltSpec, BlockSpec, CostModel, Machine, Outcome};

/// The shared abstract scenario: three alternatives with distinct speed
/// classes; the middle one's guard fails; the fast one's guard passes.
/// Expected winner everywhere: "fast".
struct Scenario {
    names: [&'static str; 3],
    /// Relative cost classes (1 = fastest).
    cost_class: [u32; 3],
    guard_pass: [bool; 3],
}

const SCENARIO: Scenario = Scenario {
    names: ["fast", "cheater", "slow"],
    cost_class: [1, 0, 6],
    guard_pass: [true, false, true],
};

#[test]
fn simulator_picks_the_expected_winner() {
    let block = BlockSpec::new(
        (0..3)
            .map(|i| {
                AltSpec::new(SCENARIO.names[i])
                    .compute_ms(20.0 + 80.0 * SCENARIO.cost_class[i] as f64)
                    .guard(SCENARIO.guard_pass[i])
            })
            .collect(),
    );
    let mut m = Machine::new(CostModel::modern(3));
    let r = m.run_block(&block);
    assert_eq!(
        r.outcome,
        Outcome::Winner {
            index: 0,
            label: "fast".into()
        }
    );
}

#[test]
fn thread_executor_picks_the_expected_winner() {
    let spec = Speculation::new();
    let mut block: AltBlock<&'static str> = AltBlock::new().elim(ElimMode::Sync);
    for i in 0..3 {
        let name = SCENARIO.names[i];
        let class = SCENARIO.cost_class[i];
        let pass = SCENARIO.guard_pass[i];
        block = block.alt(name, move |ctx| {
            // The cheater fails fast; others sleep in proportion to class.
            if !pass {
                return Err(AltError::GuardFailed("scripted".into()));
            }
            for _ in 0..class * 4 {
                std::thread::sleep(Duration::from_millis(5));
                ctx.checkpoint()?;
            }
            Ok(name)
        });
    }
    let r = spec.run(block);
    assert_eq!(r.winner_label(), Some("fast"));
    assert_eq!(r.value, Some("fast"));
}

#[cfg(unix)]
#[test]
fn fork_backend_picks_the_expected_winner() {
    use multiple_worlds::worlds_os::{ForkAlt, ForkElim, ForkOutcome, ForkRace};
    use std::time::Instant;

    let spin = |ms: u64| {
        let t0 = Instant::now();
        while t0.elapsed() < Duration::from_millis(ms) {
            std::hint::spin_loop();
        }
    };
    let mut alts = Vec::new();
    for i in 0..3 {
        let class = SCENARIO.cost_class[i];
        let pass = SCENARIO.guard_pass[i];
        alts.push(ForkAlt::new(SCENARIO.names[i], move |buf| {
            if !pass {
                return Err(());
            }
            spin(20 + 80 * class as u64);
            buf[0] = class as u8;
            Ok(1)
        }));
    }
    let report = ForkRace::new(alts)
        .elim(ForkElim::Sync)
        .run()
        .expect("race runs");
    match &report.outcome {
        ForkOutcome::Winner { index, label, .. } => {
            assert_eq!(*index, 0);
            assert_eq!(label, "fast");
        }
        other => panic!("expected fast to win, got {other:?}"),
    }
}

#[test]
fn all_executors_agree_on_total_failure() {
    // Guards all fail: simulator, threads and forks must all report the
    // failure path rather than a winner.
    let block = BlockSpec::new(
        (0..2)
            .map(|i| AltSpec::new(format!("f{i}")).compute_ms(5.0).guard(false))
            .collect(),
    );
    let mut m = Machine::new(CostModel::modern(2));
    assert_eq!(m.run_block(&block).outcome, Outcome::AllFailed);

    let spec = Speculation::new();
    let r: multiple_worlds::worlds::RunReport<u8> = spec.run(
        AltBlock::new()
            .alt("f0", |_| Err(AltError::GuardFailed("no".into())))
            .alt("f1", |_| Err(AltError::GuardFailed("no".into())))
            .elim(ElimMode::Sync),
    );
    assert_eq!(r.outcome, multiple_worlds::worlds::RunOutcome::AllFailed);

    #[cfg(unix)]
    {
        use multiple_worlds::worlds_os::{ForkAlt, ForkElim, ForkOutcome, ForkRace};
        let report = ForkRace::new(vec![
            ForkAlt::new("f0", |_| Err(())),
            ForkAlt::new("f1", |_| Err(())),
        ])
        .elim(ForkElim::Sync)
        .run()
        .expect("race runs");
        assert_eq!(report.outcome, ForkOutcome::AllFailed);
    }
}
