//! Collapsed ("folded") stack rendering: one line per distinct
//! `site;world;phase` triple with its cumulative sample count — the
//! input format of standard flamegraph tooling (`flamegraph.pl`,
//! inferno, speedscope).
//!
//! Two sources render to the same format: a live sampler's tables
//! ([`render_folded_tables`]) and a replayed JSONL capture's `cpu`
//! flush events ([`render_folded_events`]).

use crate::marker::{Phase, NO_SITE, NO_WORLD};
use crate::sampler::SampleTables;
use std::collections::BTreeMap;
use worlds_obs::{site_label_or_anon, Event, EventKind};

fn site_frame(site: u64) -> String {
    if site == NO_SITE {
        "unattributed".to_string()
    } else {
        // Frame separators inside a label would split it into bogus
        // frames downstream.
        site_label_or_anon(site).replace(';', ":")
    }
}

fn world_frame(world: u64) -> String {
    if world == NO_WORLD {
        "-".to_string()
    } else {
        format!("world:{world}")
    }
}

fn render(folded: BTreeMap<(String, String, &'static str), u64>) -> String {
    let mut out = String::with_capacity(folded.len() * 48);
    for ((site, world, phase), count) in folded {
        out.push_str(&format!("{site};{world};{phase} {count}\n"));
    }
    out
}

/// Fold a live sampler's cumulative tables (alternatives merged).
pub fn render_folded_tables(tables: &SampleTables) -> String {
    let mut folded: BTreeMap<(String, String, &'static str), u64> = BTreeMap::new();
    for (key, count) in &tables.by_key {
        *folded
            .entry((
                site_frame(key.site),
                world_frame(key.world),
                key.phase.name(),
            ))
            .or_insert(0) += count;
    }
    render(folded)
}

/// Fold a capture's `cpu` flush events.
pub fn render_folded_events<'a>(events: impl IntoIterator<Item = &'a Event>) -> String {
    let mut folded: BTreeMap<(String, String, &'static str), u64> = BTreeMap::new();
    for ev in events {
        if let EventKind::CpuSamples {
            samples,
            site,
            phase,
            ..
        } = &ev.kind
        {
            *folded
                .entry((
                    site_frame(site.unwrap_or(NO_SITE)),
                    world_frame(ev.world),
                    Phase::from_u8(*phase as u8).name(),
                ))
                .or_insert(0) += samples;
        }
    }
    render(folded)
}

/// Check one folded line: `frame(;frame)* count`. Returns the count.
pub fn parse_folded_line(line: &str) -> Result<u64, String> {
    let (stack, count) = line
        .rsplit_once(' ')
        .ok_or_else(|| format!("no count separator in {line:?}"))?;
    if stack.is_empty() || stack.split(';').any(|f| f.is_empty()) {
        return Err(format!("empty frame in {line:?}"));
    }
    count
        .parse::<u64>()
        .map_err(|_| format!("bad count in {line:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::marker::NO_ALT;
    use crate::sampler::SampleKey;

    #[test]
    fn tables_fold_and_parse() {
        let mut t = SampleTables::default();
        t.by_key.insert(
            SampleKey {
                world: 3,
                site: NO_SITE,
                alt: 0,
                phase: Phase::Guard,
            },
            10,
        );
        t.by_key.insert(
            SampleKey {
                world: 3,
                site: NO_SITE,
                alt: 1,
                phase: Phase::Guard,
            },
            5,
        );
        t.by_key.insert(
            SampleKey {
                world: NO_WORLD,
                site: NO_SITE,
                alt: NO_ALT,
                phase: Phase::Reap,
            },
            2,
        );
        let folded = render_folded_tables(&t);
        assert!(
            folded.contains("unattributed;world:3;guard 15"),
            "alts must merge: {folded}"
        );
        assert!(folded.contains("unattributed;-;reap 2"), "{folded}");
        for line in folded.lines() {
            parse_folded_line(line).unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn events_fold_to_same_shape() {
        let events = vec![
            Event::new(
                EventKind::CpuSamples {
                    samples: 4,
                    period_ns: 1_000_000,
                    site: None,
                    alt: Some(0),
                    phase: Phase::Guard as u64,
                },
                9,
                None,
                10,
            ),
            Event::new(
                EventKind::CpuSamples {
                    samples: 6,
                    period_ns: 1_000_000,
                    site: None,
                    alt: Some(1),
                    phase: Phase::Guard as u64,
                },
                9,
                None,
                20,
            ),
            Event::new(EventKind::Rendezvous, 9, None, 30),
        ];
        let folded = render_folded_events(&events);
        assert_eq!(folded, "unattributed;world:9;guard 10\n");
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        for bad in ["", "nospace", "a;b notanumber", "; 5", "a;;b 5"] {
            assert!(parse_folded_line(bad).is_err(), "accepted {bad:?}");
        }
        assert_eq!(parse_folded_line("a;world:1;guard 7").unwrap(), 7);
    }
}
