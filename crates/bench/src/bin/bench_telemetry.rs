//! `bench-telemetry` — the cost of the live telemetry plane.
//!
//! Three measurements, one promise each:
//!
//! * **disabled path** — a disabled registry with a hub in scope: the
//!   per-call-site cost when telemetry is compiled in but off. The
//!   ISSUE budget is "within 2x of the bare disabled registry" (itself
//!   ~3 ns/event), so the JSON records both and their ratio.
//! * **rollup pipeline** — an enabled registry feeding a
//!   [`TelemetryHub`] sink: flight ring + windowed slot counters +
//!   per-site histograms, all on the emit path. Budget: ≥ 1M events/s
//!   single-threaded.
//! * **live PI table** — a synthetic three-site workload pushed through
//!   the hub, then read back via `site_table()` alone (no JSONL
//!   replay): PI must rise with measured Rμ and fall with measured Ro,
//!   the Figure 3/4 shape, computed entirely from streaming rollups.
//!
//! Results land in `BENCH_telemetry.json` (or the path given as the
//! first argument).
//!
//! ```text
//! cargo run --release -p worlds-bench --bin bench-telemetry [out.json]
//! ```

use std::sync::Arc;
use std::time::Instant;

use worlds_obs::{site_id, Event, EventKind, Registry};
use worlds_telemetry::TelemetryHub;

/// One representative event for step `i`: the same speculation-heavy
/// mix `bench-trace` uses, so the two benchmarks are comparable.
fn emit_step(obs: &Registry, i: u64) {
    let world = 1 + (i % 64);
    let vt = i * 100;
    match i % 16 {
        0 => obs.emit(|| Event::new(EventKind::Spawn { alt: i % 4 }, world, Some(world / 2), vt)),
        1 => obs.emit(|| {
            Event::new(
                EventKind::GuardVerdict {
                    pass: !i.is_multiple_of(3),
                    duration_ns: 250 + (i % 4) * 100,
                    alt: Some(i % 4),
                    site: Some(i % 3),
                },
                world,
                None,
                vt,
            )
        }),
        2 => obs.emit(|| {
            Event::new(
                EventKind::Commit {
                    dirty_pages: 3,
                    overhead_ns: 500,
                    site: Some(i % 3),
                },
                world,
                Some(world / 2),
                vt,
            )
        }),
        3 => obs.emit(|| Event::new(EventKind::EliminateAsync, world, None, vt)),
        4 => obs.emit(|| Event::new(EventKind::MsgSplit, world, Some(world / 2), vt)),
        _ => obs.emit(|| {
            Event::new(
                EventKind::CowCopy {
                    vpn: i % 512,
                    bytes: 4096,
                },
                world,
                None,
                vt,
            )
        }),
    }
}

/// Median per-event nanoseconds over `samples` runs of `n` events each.
fn bench_emit(samples: usize, n: u64, make_obs: impl Fn() -> Registry) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let obs = make_obs();
            let t0 = Instant::now();
            for i in 0..n {
                emit_step(&obs, i);
            }
            t0.elapsed().as_secs_f64() * 1e9 / n as f64
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

/// A guard verdict at `site` for alternative `alt` taking `dur` ns.
fn guard(obs: &Registry, site: u64, alt: u64, dur: u64, world: u64) {
    obs.emit(|| {
        Event::new(
            EventKind::GuardVerdict {
                pass: true,
                duration_ns: dur,
                alt: Some(alt),
                site: Some(site),
            },
            world,
            Some(0),
            0,
        )
    });
}

/// A commit at `site` paying `overhead` ns of speculation overhead.
fn commit(obs: &Registry, site: u64, overhead: u64, world: u64) {
    obs.emit(|| {
        Event::new(
            EventKind::Commit {
                dirty_pages: 1,
                overhead_ns: overhead,
                site: Some(site),
            },
            world,
            Some(0),
            0,
        )
    });
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_telemetry.json".to_string());
    let n: u64 = 200_000;
    let samples = 9;

    eprintln!("emit mix: {n} events/run, median of {samples} runs");
    // Bare disabled registry: the floor every instrumented call site
    // pays regardless of telemetry.
    let bare_disabled_ns = bench_emit(samples, n, Registry::disabled);
    eprintln!("bare disabled:    {bare_disabled_ns:.1} ns/event");

    // Disabled registry with a hub alive in the process: telemetry
    // present but off. This must stay within 2x of the bare path — the
    // hub can only cost when it is actually a sink.
    let idle_hub = Arc::new(TelemetryHub::default());
    let hub_disabled_ns = bench_emit(samples, n, Registry::disabled);
    std::hint::black_box(idle_hub.gauges());
    eprintln!("disabled w/ hub:  {hub_disabled_ns:.1} ns/event");

    // Full rollup pipeline: flight ring, slot counters, site
    // histograms, all on the emit path.
    let rollup_ns = bench_emit(samples, n, || {
        Registry::with_sinks(vec![Arc::new(TelemetryHub::default())])
    });
    let rollup_eps = 1e9 / rollup_ns;
    eprintln!("rollup pipeline:  {rollup_ns:.1} ns/event ({rollup_eps:.0} events/s)");

    // Live PI table: three sites spanning the Figure 3/4 axes, read
    // back from streaming rollups alone.
    let hub = Arc::new(TelemetryHub::default());
    let obs = Registry::with_sinks(vec![hub.clone()]);
    let flat = site_id("bench/flat");
    let disperse = site_id("bench/disperse");
    let taxed = site_id("bench/taxed");
    for w in 0..400u64 {
        // flat: every alternative costs the same → Rμ = 1, PI = 1.
        for alt in 0..4 {
            guard(&obs, flat.0, alt, 10_000, w);
        }
        commit(&obs, flat.0, 0, w);
        // disperse: best alt 4x cheaper than the rest → Rμ ≈ 4, free.
        guard(&obs, disperse.0, 0, 10_000, w);
        for alt in 1..4 {
            guard(&obs, disperse.0, alt, 40_000, w);
        }
        commit(&obs, disperse.0, 0, w);
        // taxed: same dispersion, but commits pay ~1 best-alt of
        // overhead → Ro ≈ 1 halves the win.
        guard(&obs, taxed.0, 0, 10_000, w);
        for alt in 1..4 {
            guard(&obs, taxed.0, alt, 40_000, w);
        }
        commit(&obs, taxed.0, 10_000, w);
    }
    let table = hub.site_table();
    let row = |site: u64| {
        table
            .iter()
            .find(|s| s.site == site)
            .expect("site present in live rollups")
    };
    let (flat, disperse, taxed) = (row(flat.0), row(disperse.0), row(taxed.0));
    for s in [&flat, &disperse, &taxed] {
        eprintln!(
            "site {:<16} Rmu {:.2}  Ro {:.2}  PI {:.2}",
            s.label, s.r_mu, s.r_o, s.pi
        );
    }
    assert!(
        disperse.r_mu > flat.r_mu && disperse.pi > flat.pi,
        "PI rises with Rmu (Fig 3): {disperse:?} vs {flat:?}"
    );
    assert!(
        taxed.r_o > disperse.r_o && taxed.pi < disperse.pi,
        "PI falls with Ro (Fig 4): {taxed:?} vs {disperse:?}"
    );

    let ratio = hub_disabled_ns / bare_disabled_ns.max(0.1);
    let smoke = ratio <= 2.0 && rollup_eps >= 1_000_000.0;
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"telemetry\",\n",
            "  \"unix_time\": {unix_time},\n",
            "  \"effective_cores\": {cores},\n",
            "  \"smoke\": {smoke},\n",
            "  \"config\": {{\"events_per_run\": {n}, \"samples\": {samples}}},\n",
            "  \"disabled\": {{\"bare_per_event_ns\": {bare:.1}, ",
            "\"with_hub_per_event_ns\": {hubbed:.1}, \"ratio\": {ratio:.2}}},\n",
            "  \"rollup_pipeline\": {{\"per_event_ns\": {rollup:.1}, ",
            "\"events_per_sec\": {rollup_eps:.0}}},\n",
            "  \"pi_table\": [\n",
            "    {{\"site\": \"{flat_l}\", \"r_mu\": {flat_rmu:.2}, ",
            "\"r_o\": {flat_ro:.2}, \"pi\": {flat_pi:.2}}},\n",
            "    {{\"site\": \"{disp_l}\", \"r_mu\": {disp_rmu:.2}, ",
            "\"r_o\": {disp_ro:.2}, \"pi\": {disp_pi:.2}}},\n",
            "    {{\"site\": \"{tax_l}\", \"r_mu\": {tax_rmu:.2}, ",
            "\"r_o\": {tax_ro:.2}, \"pi\": {tax_pi:.2}}}\n",
            "  ],\n",
            "  \"note\": \"disabled ratio is telemetry-present-but-off vs bare ",
            "disabled registry (budget 2x); rollup pipeline is single-threaded ",
            "emit through flight ring + slot counters + site histograms ",
            "(budget 1M events/s); pi_table is read live from site_table(), ",
            "no JSONL replay — PI rises with Rmu, falls with Ro\"\n",
            "}}\n",
        ),
        unix_time = unix_time,
        cores = cores,
        smoke = smoke,
        n = n,
        samples = samples,
        bare = bare_disabled_ns,
        hubbed = hub_disabled_ns,
        ratio = ratio,
        rollup = rollup_ns,
        rollup_eps = rollup_eps,
        flat_l = flat.label,
        flat_rmu = flat.r_mu,
        flat_ro = flat.r_o,
        flat_pi = flat.pi,
        disp_l = disperse.label,
        disp_rmu = disperse.r_mu,
        disp_ro = disperse.r_o,
        disp_pi = disperse.pi,
        tax_l = taxed.label,
        tax_rmu = taxed.r_mu,
        tax_ro = taxed.r_o,
        tax_pi = taxed.pi,
    );
    std::fs::write(&out, &json).expect("write results file");
    println!("wrote {out}");
    if !smoke {
        eprintln!(
            "budget exceeded: disabled ratio {ratio:.2} (<=2.0) or \
             rollup {rollup_eps:.0} events/s (>=1e6)"
        );
        std::process::exit(1);
    }
}
