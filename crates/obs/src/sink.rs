//! Pluggable event destinations.
//!
//! A [`Registry`](crate::Registry) fans every emitted event out to its
//! sinks. Two ship here: a bounded in-memory ring (tests, postmortems)
//! and a JSONL writer (offline analysis via `worlds-report` or
//! `crates/analysis`).

use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use crate::event::Event;

/// Receives every event the registry emits. Implementations must be
/// cheap and non-blocking-ish: they run inline at the emit site.
pub trait EventSink: Send + Sync {
    /// Record one event.
    fn record(&self, ev: &Event);
    /// Push buffered output to its destination.
    fn flush(&self) {}
}

/// Keeps the last `capacity` events in memory.
pub struct RingSink {
    capacity: usize,
    buf: Mutex<VecDeque<Event>>,
    dropped: std::sync::atomic::AtomicU64,
}

impl RingSink {
    /// A ring holding at most `capacity` events (oldest evicted first).
    pub fn new(capacity: usize) -> RingSink {
        RingSink {
            capacity: capacity.max(1),
            buf: Mutex::new(VecDeque::with_capacity(capacity.clamp(1, 4096))),
            dropped: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Copy of the retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.buf
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }

    /// How many events were evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl EventSink for RingSink {
    fn record(&self, ev: &Event) {
        let mut buf = self.buf.lock().unwrap_or_else(|e| e.into_inner());
        if buf.len() == self.capacity {
            buf.pop_front();
            self.dropped
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        buf.push_back(ev.clone());
    }
}

/// Writes one JSON object per line to any `Write`.
pub struct JsonlSink<W: Write + Send> {
    out: Mutex<BufWriter<W>>,
}

impl JsonlSink<File> {
    /// Create (truncate) `path` and stream events into it.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<JsonlSink<File>> {
        Ok(JsonlSink::new(File::create(path)?))
    }
}

impl<W: Write + Send> JsonlSink<W> {
    /// Stream events into `writer`.
    pub fn new(writer: W) -> JsonlSink<W> {
        JsonlSink {
            out: Mutex::new(BufWriter::new(writer)),
        }
    }
}

impl<W: Write + Send> EventSink for JsonlSink<W> {
    fn record(&self, ev: &Event) {
        let mut out = self.out.lock().unwrap_or_else(|e| e.into_inner());
        // Disk-full mid-run should not take the simulation down with it;
        // flush() surfaces errors for callers that care.
        let _ = writeln!(out, "{}", ev.to_json());
    }

    fn flush(&self) {
        let _ = self.out.lock().unwrap_or_else(|e| e.into_inner()).flush();
    }
}

impl<W: Write + Send> Drop for JsonlSink<W> {
    fn drop(&mut self) {
        EventSink::flush(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(world: u64) -> Event {
        Event::new(EventKind::Rendezvous, world, None, world * 10)
    }

    #[test]
    fn ring_keeps_only_the_tail() {
        let ring = RingSink::new(3);
        for w in 1..=5 {
            ring.record(&ev(w));
        }
        let worlds: Vec<u64> = ring.events().iter().map(|e| e.world).collect();
        assert_eq!(worlds, vec![3, 4, 5]);
        assert_eq!(ring.dropped(), 2);
    }

    #[test]
    fn jsonl_writes_parseable_lines() {
        let sink = JsonlSink::new(Vec::new());
        sink.record(&ev(1));
        sink.record(&ev(2));
        sink.flush();
        let bytes = {
            let guard = sink.out.lock().unwrap();
            guard.get_ref().clone()
        };
        let text = String::from_utf8(bytes).unwrap();
        let parsed: Vec<Event> = text.lines().map(|l| Event::from_json(l).unwrap()).collect();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[1].world, 2);
    }
}
