//! Offline stand-in for the `parking_lot` crate.
//!
//! This container has no network access and no crates.io mirror, so the
//! workspace vendors the tiny slice of `parking_lot`'s API it actually
//! uses: [`Mutex`] and [`RwLock`] with panic-free (poison-recovering)
//! guards. Lock poisoning is deliberately erased — like real
//! `parking_lot`, a panicked holder does not poison the lock.

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with `parking_lot`'s `lock()` signature
/// (no `Result`, no poisoning).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with `parking_lot`'s `read()`/`write()`
/// signatures (no `Result`, no poisoning).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn panicked_holder_does_not_poison() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let m = Mutex::new(0);
        let _ = catch_unwind(AssertUnwindSafe(|| {
            let _g = m.lock();
            panic!("boom");
        }));
        assert_eq!(*m.lock(), 0, "lock usable after a panicked holder");
    }
}
