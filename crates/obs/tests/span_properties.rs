//! Property tests for span reconstruction (satellite of the worlds-trace
//! PR): whatever the event stream looks like — truncated mid-run by a
//! crash, or with events from many worlds interleaved arbitrarily — the
//! reconstructed tree must keep its structural promises:
//!
//! 1. every span nests inside its parent's interval;
//! 2. the critical path, when one exists, is a root-to-commit lineage
//!    whose consecutive worlds are parent→child links;
//! 3. waste attribution partitions the run's total virtual time exactly;
//! 4. reconstruction is insensitive to event interleaving (same events,
//!    any order → same tree).

use proptest::prelude::*;
use worlds_obs::{Event, EventKind, SpanOutcome, SpanTree};

/// One abstract step of a speculation run. Concrete worlds/parents are
/// resolved while replaying the script, so any random script yields a
/// structurally valid (if chaotic) stream.
#[derive(Debug, Clone)]
enum Op {
    /// Fork a new world off the `n`-th live world, as alternative `alt`.
    Spawn { of: usize, alt: u64 },
    /// Message-split the `n`-th live world (receiver copy fork).
    Split { of: usize },
    /// Guard verdict on the `n`-th live world.
    Guard { of: usize, pass: bool, dur: u64 },
    /// Rendezvous marker on the `n`-th live world.
    Rendezvous { of: usize },
    /// Commit the `n`-th live world into its parent (closes the span).
    Commit { of: usize, dirty: u64 },
    /// Eliminate the `n`-th live world (closes the span).
    Eliminate { of: usize, sync: bool },
    /// A CoW fault in the `n`-th live world.
    Fault { of: usize, vpn: u64, bytes: u64 },
    /// A checkpoint of the `n`-th live world.
    Checkpoint { of: usize, pages: u64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..8, 0u64..4).prop_map(|(of, alt)| Op::Spawn { of, alt }),
        (0usize..8).prop_map(|of| Op::Split { of }),
        (0usize..8, proptest::bool::weighted(0.7), 1u64..500)
            .prop_map(|(of, pass, dur)| Op::Guard { of, pass, dur }),
        (0usize..8).prop_map(|of| Op::Rendezvous { of }),
        (0usize..8, 0u64..20).prop_map(|(of, dirty)| Op::Commit { of, dirty }),
        (0usize..8, proptest::bool::weighted(0.5))
            .prop_map(|(of, sync)| Op::Eliminate { of, sync }),
        (0usize..8, 0u64..64, 1u64..4096).prop_map(|(of, vpn, bytes)| Op::Fault { of, vpn, bytes }),
        (0usize..8, 1u64..30).prop_map(|(of, pages)| Op::Checkpoint { of, pages }),
    ]
}

/// Replay a script into a concrete event stream. World 1 is the root
/// (born implicitly by its first event); time advances one tick per op.
fn events_of(script: &[Op]) -> Vec<Event> {
    let mut events = Vec::new();
    let mut live: Vec<u64> = vec![1];
    let mut next_world = 2u64;
    let mut vt = 0u64;
    for op in script {
        vt += 100;
        match *op {
            Op::Spawn { of, alt } => {
                let p = live[of % live.len()];
                events.push(Event::new(
                    EventKind::Spawn { alt },
                    next_world,
                    Some(p),
                    vt,
                ));
                live.push(next_world);
                next_world += 1;
            }
            Op::Split { of } => {
                let p = live[of % live.len()];
                events.push(Event::new(EventKind::SplitSpawn, next_world, Some(p), vt));
                live.push(next_world);
                next_world += 1;
            }
            Op::Guard { of, pass, dur } => {
                let w = live[of % live.len()];
                events.push(Event::new(
                    EventKind::GuardVerdict {
                        pass,
                        duration_ns: dur,
                        alt: None,
                        site: None,
                    },
                    w,
                    None,
                    vt,
                ));
            }
            Op::Rendezvous { of } => {
                let w = live[of % live.len()];
                events.push(Event::new(EventKind::Rendezvous, w, None, vt));
            }
            Op::Commit { of, dirty } => {
                // Never commit the root away: keep at least one live world.
                if live.len() > 1 {
                    let i = 1 + (of % (live.len() - 1));
                    let w = live.remove(i);
                    events.push(Event::new(
                        EventKind::Commit {
                            dirty_pages: dirty,
                            overhead_ns: 0,
                            site: None,
                        },
                        w,
                        None,
                        vt,
                    ));
                }
            }
            Op::Eliminate { of, sync } => {
                if live.len() > 1 {
                    let i = 1 + (of % (live.len() - 1));
                    let w = live.remove(i);
                    let kind = if sync {
                        EventKind::EliminateSync {
                            overhead_ns: 10,
                            site: None,
                        }
                    } else {
                        EventKind::EliminateAsync
                    };
                    events.push(Event::new(kind, w, None, vt));
                }
            }
            Op::Fault { of, vpn, bytes } => {
                let w = live[of % live.len()];
                events.push(Event::new(EventKind::CowCopy { vpn, bytes }, w, None, vt));
            }
            Op::Checkpoint { of, pages } => {
                let w = live[of % live.len()];
                events.push(Event::new(
                    EventKind::Checkpoint {
                        pages,
                        bytes: pages * 4096,
                        duration_ns: 50,
                    },
                    w,
                    None,
                    vt,
                ));
            }
        }
    }
    events
}

/// Assert the structural invariants that must hold for *any* stream.
fn assert_invariants(tree: &SpanTree) -> Result<(), TestCaseError> {
    // 1. Nesting: every child interval sits inside its parent's.
    for span in tree.spans() {
        if let Some(p) = span.parent {
            if let Some(parent) = tree.get(p) {
                prop_assert!(
                    span.start_ns >= parent.start_ns && span.end_ns <= parent.end_ns,
                    "span {} [{}, {}] escapes parent {} [{}, {}]",
                    span.world,
                    span.start_ns,
                    span.end_ns,
                    parent.world,
                    parent.start_ns,
                    parent.end_ns
                );
            }
        }
        prop_assert!(span.start_ns <= span.end_ns);
    }
    // 2. Critical path: root-to-commit lineage, consecutively linked.
    if let Some(cp) = tree.critical_path() {
        prop_assert!(!cp.worlds.is_empty());
        let first = tree.get(cp.worlds[0]).expect("path worlds have spans");
        prop_assert!(
            first.parent.is_none() || tree.get(first.parent.unwrap()).is_none(),
            "critical path must start at a root, started at {} (parent {:?})",
            first.world,
            first.parent
        );
        let last = tree.get(*cp.worlds.last().unwrap()).unwrap();
        prop_assert_eq!(
            last.outcome,
            SpanOutcome::Committed,
            "critical path must end at a committed world"
        );
        prop_assert_eq!(last.world, cp.commit_world);
        for pair in cp.worlds.windows(2) {
            let child = tree.get(pair[1]).unwrap();
            prop_assert_eq!(
                child.parent,
                Some(pair[0]),
                "consecutive critical-path worlds must be parent-child"
            );
        }
    }
    // 3. Waste partitions total virtual time exactly.
    let waste = tree.waste();
    let bucketed: u64 = waste.buckets.iter().map(|(_, b)| b.vt_ns).sum();
    prop_assert_eq!(
        waste.lineage.vt_ns + bucketed,
        waste.total_vt_ns,
        "lineage + waste buckets must sum to the run total"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any full stream reconstructs to a tree satisfying the invariants.
    #[test]
    fn full_streams_reconstruct_cleanly(script in collection::vec(arb_op(), 1..60)) {
        let events = events_of(&script);
        let tree = SpanTree::build(&events);
        assert_invariants(&tree)?;
        // One span per world mentioned in the stream — including parents
        // that only ever appear as the source of a spawn edge.
        let mut mentioned: std::collections::BTreeSet<u64> =
            events.iter().map(|e| e.world).collect();
        for e in &events {
            if matches!(
                e.kind,
                EventKind::Spawn { .. } | EventKind::SplitSpawn | EventKind::RemoteFork { .. }
            ) {
                mentioned.extend(e.parent);
            }
        }
        prop_assert_eq!(tree.len(), mentioned.len());
    }

    /// A stream cut off anywhere (crash mid-run) still reconstructs:
    /// open spans close at the horizon, nesting and critical-path
    /// structure survive the missing tail.
    #[test]
    fn truncated_streams_keep_invariants(
        script in collection::vec(arb_op(), 1..60),
        cut_permille in 0u32..1000,
    ) {
        let events = events_of(&script);
        let cut = (events.len() * cut_permille as usize) / 1000;
        let tree = SpanTree::build(&events[..cut]);
        assert_invariants(&tree)?;
    }

    /// Interleaving insensitivity: delivering the same events in any
    /// order (sinks may reorder across threads) yields the same tree.
    #[test]
    fn interleaved_streams_reconstruct_identically(
        script in collection::vec(arb_op(), 1..40),
        swaps in collection::vec((0usize..64, 0usize..64), 0..80),
    ) {
        let events = events_of(&script);
        let mut shuffled = events.clone();
        for &(a, b) in &swaps {
            if !shuffled.is_empty() {
                let (a, b) = (a % shuffled.len(), b % shuffled.len());
                shuffled.swap(a, b);
            }
        }
        let reference = SpanTree::build(&events);
        let tree = SpanTree::build(&shuffled);
        assert_invariants(&tree)?;
        prop_assert_eq!(tree.len(), reference.len());
        for span in reference.spans() {
            let other = tree.get(span.world).expect("same worlds");
            prop_assert_eq!(other.parent, span.parent);
            prop_assert_eq!(other.start_ns, span.start_ns);
            prop_assert_eq!(other.end_ns, span.end_ns);
            prop_assert_eq!(other.outcome, span.outcome);
        }
        let (a, b) = (reference.critical_path(), tree.critical_path());
        prop_assert_eq!(a.map(|c| c.worlds), b.map(|c| c.worlds));
    }
}
