//! worlds-prof: an always-on sampling profiler for the speculation
//! substrate.
//!
//! Wall-clock numbers lie on time-sliced hosts: a guard that *waited*
//! looks as expensive as one that *computed*. This crate recovers
//! on-CPU truth statistically, with three pieces:
//!
//! * **Markers** ([`marker`]): each worker thread publishes its current
//!   `(world, site, alt, phase)` into a seqlock-protected per-thread
//!   slot at every phase boundary — task pickup, guard entry, commit,
//!   reaper drain. A transition costs a few nanoseconds; with no
//!   sampler attached it costs one relaxed load.
//! * **The sampler** ([`sampler`]): a watcher thread reads every slot
//!   at a fixed rate (default 997 Hz), accumulates per-world /
//!   per-site / per-phase tables, and flushes deltas into the obs
//!   event stream as `cpu` and `wutil` events — so span
//!   reconstruction, telemetry rollups, and trace export all inherit
//!   CPU attribution without new plumbing.
//! * **The watchdog**: a marker that stops advancing past its deadline
//!   (5 s in a guard, 30 s anywhere) emits a `stall` event and fires a
//!   rate-limited dump hook — a wedged speculation leaves a post-mortem
//!   instead of a mystery.
//!
//! [`fold`] renders the tables (or a replayed capture) as collapsed
//! folded stacks for flamegraph tooling.

pub mod fold;
pub mod marker;
pub mod sampler;

pub use fold::{parse_folded_line, render_folded_events, render_folded_tables};
pub use marker::{
    current_mark, mark, mark_always, mark_idle, markers_active, restore_mark, MarkerSample,
    MarkerSlot, Phase, MAX_PHASES, NO_ALT, NO_SITE, NO_WORLD,
};
pub use sampler::{
    prof_env_enabled, SampleKey, SampleTables, Sampler, SamplerConfig, StallHook, StallInfo,
    DEFAULT_HZ, FLUSH_ENV, FOLDED_ENV, HZ_ENV, PROF_ENV, STALL_ENV, STALL_GUARD_ENV,
};

use std::sync::{Mutex, OnceLock};
use worlds_obs::Registry;

/// The process-global sampler slot. `None` once decided against.
static GLOBAL: OnceLock<Option<Mutex<Sampler>>> = OnceLock::new();

/// Install `sampler` as the process-global sampler. Returns the sampler
/// back if one was already installed (or autostart already declined).
pub fn install_global(sampler: Sampler) -> Result<(), Sampler> {
    let mut cell = Some(sampler);
    GLOBAL.get_or_init(|| cell.take().map(Mutex::new));
    match cell {
        None => {
            register_exit_flush();
            Ok(())
        }
        Some(s) => Err(s),
    }
}

/// Stop the global sampler when the process exits normally. Without
/// this a run shorter than one flush interval — a CLI invocation under
/// `WORLDS_PROF=1` — would leave no folded output and no `cpu` events
/// at all: the sampler lives in a static and is never dropped, so the
/// periodic flush is the only flush it ever gets.
#[cfg(unix)]
fn register_exit_flush() {
    extern "C" fn flush_global_sampler() {
        if let Some(Some(m)) = GLOBAL.get() {
            m.lock().unwrap_or_else(|e| e.into_inner()).stop();
        }
    }
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| unsafe {
        libc::atexit(flush_global_sampler);
    });
}

#[cfg(not(unix))]
fn register_exit_flush() {}

/// Start the process-global sampler if `WORLDS_PROF` asks for one and
/// none is installed yet. Sessions call this at construction, so any
/// binary built on the speculation layer honours the switch without
/// bespoke wiring. Returns whether a global sampler is live afterwards.
/// The first caller's registry wins; the sampler runs for the rest of
/// the process.
pub fn autostart_from_env(obs: &Registry) -> bool {
    let live = GLOBAL
        .get_or_init(|| {
            if prof_env_enabled() {
                Some(Mutex::new(Sampler::start(
                    SamplerConfig::from_env(),
                    obs.clone(),
                    None,
                )))
            } else {
                None
            }
        })
        .is_some();
    if live {
        register_exit_flush();
    }
    live
}

/// Snapshot the global sampler's tables, if one is live.
pub fn global_tables() -> Option<SampleTables> {
    GLOBAL
        .get()
        .and_then(|s| s.as_ref())
        .map(|m| m.lock().unwrap_or_else(|e| e.into_inner()).tables())
}

#[cfg(test)]
pub(crate) fn test_serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}
