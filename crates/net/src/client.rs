//! The client half: per-request deadlines, bounded retries with
//! exponential backoff and deterministic jitter, and correlation-id
//! reuse so retries are idempotent end to end.
//!
//! A [`Conn`] is one logical link to one node. Failures below the RPC
//! layer — timeout, reset, truncated frame — drop the TCP stream
//! entirely (so a late reply from a dead attempt can never desync the
//! next request) and retransmit **the same frame, same corr-id** on a
//! fresh connection after backing off. The server's reply ledger turns
//! that retransmit into a replay of the recorded reply, which is what
//! makes a retried `CommitBack` apply exactly once.
//!
//! Backoff jitter is seeded ([`RetryPolicy::seed`]) and derived from
//! `(seed, corr, attempt)`, so a given schedule of faults produces the
//! same retry timing run after run — fault tests replay instead of
//! flaking.

use crate::error::{NetError, Result};
use crate::fault::splitmix64;
use crate::frame::{read_frame, write_frame, Frame};
use crate::rpc::{Reply, Request};
use std::collections::HashMap;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use worlds_obs::{Event, EventKind, Registry};

/// Correlation ids are a process-global counter offset by a per-process
/// random base, so two `Conn`s — in this process or another one talking
/// to the same server — can never collide in its reply ledger. (A
/// counter alone restarts at 1 in every process: a fresh `worlds-top`
/// would replay the reply a long-lived tenant's first request recorded.)
static NEXT_CORR: AtomicU64 = AtomicU64::new(1);

fn corr_base() -> u64 {
    static BASE: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    *BASE.get_or_init(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        splitmix64(nanos ^ ((std::process::id() as u64) << 32))
    })
}

fn next_corr() -> u64 {
    corr_base().wrapping_add(NEXT_CORR.fetch_add(1, Ordering::Relaxed))
}

/// How hard a client tries before giving up on one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try + retries). At least 1.
    pub max_attempts: u32,
    /// Backoff before retry n is `base_backoff * 2^(n-1)` plus jitter,
    /// capped at `max_backoff`.
    pub base_backoff: Duration,
    /// Upper bound on a single backoff sleep.
    pub max_backoff: Duration,
    /// Per-attempt deadline covering connect, send and reply.
    pub deadline: Duration,
    /// Seed for deterministic backoff jitter.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_millis(200),
            deadline: Duration::from_millis(250),
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// Tight timings for loopback tests: same structure, faster failure.
    pub fn fast() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(40),
            deadline: Duration::from_millis(150),
            seed: 0,
        }
    }

    /// The jittered sleep before retry `attempt` (1-based) of `corr`.
    pub fn backoff(&self, corr: u64, attempt: u32) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << (attempt - 1).min(16))
            .min(self.max_backoff);
        let half = exp.as_nanos() as u64 / 2;
        if half == 0 {
            return exp;
        }
        let jitter = splitmix64(self.seed ^ corr.rotate_left(17) ^ attempt as u64) % half;
        exp - Duration::from_nanos(jitter)
    }
}

/// One logical connection to one node's [`crate::NetNode`].
pub struct Conn {
    node: u64,
    addr: SocketAddr,
    policy: RetryPolicy,
    obs: Registry,
    stream: Option<TcpStream>,
}

impl Conn {
    /// A lazily-connected link to the node at `addr`. `node` is the
    /// cluster id used in observability events.
    pub fn new(node: u64, addr: SocketAddr, policy: RetryPolicy, obs: Registry) -> Conn {
        Conn {
            node,
            addr,
            policy,
            obs,
            stream: None,
        }
    }

    /// The node this connection talks to.
    pub fn node(&self) -> u64 {
        self.node
    }

    /// Issue `req`, retrying per the policy. Returns the server's reply
    /// — including `Nack`, which is a *successful* transport outcome and
    /// is never retried (asking again with the same corr-id would just
    /// replay the same answer).
    pub fn call(&mut self, req: &Request) -> Result<Reply> {
        let frame = Frame::new(req.kind(), next_corr(), req.encode_payload());
        self.deliver(&frame)
    }

    /// Issue `req` and unwrap the `Ack`, mapping `Nack` to an error.
    pub fn call_ack(&mut self, req: &Request) -> Result<u64> {
        match self.call(req)? {
            Reply::Ack { world } => Ok(world),
            Reply::Nack { code, detail } => Err(NetError::Nack { code, detail }),
            Reply::Telemetry { .. } | Reply::Present { .. } => Err(NetError::Protocol(
                "unexpected typed reply to an ack-style request".into(),
            )),
        }
    }

    /// Issue a [`Request::HashProbe`] and unwrap the presence bitmap.
    /// The reply must answer every probed hash, or the server is
    /// confused and the caller should fall back to shipping bytes.
    pub fn call_present(&mut self, hashes: Vec<u64>) -> Result<Vec<bool>> {
        let want = hashes.len();
        match self.call(&Request::HashProbe { hashes })? {
            Reply::Present { present } if present.len() == want => Ok(present),
            Reply::Present { present } => Err(NetError::Protocol(format!(
                "hash probe answered {} of {want} hashes",
                present.len()
            ))),
            Reply::Nack { code, detail } => Err(NetError::Nack { code, detail }),
            _ => Err(NetError::Protocol(
                "unexpected reply to a hash probe".into(),
            )),
        }
    }

    /// Deliver one already-framed request, retrying with its corr-id.
    fn deliver(&mut self, frame: &Frame) -> Result<Reply> {
        let mut last = None;
        for attempt in 1..=self.policy.max_attempts.max(1) {
            if attempt > 1 {
                let backoff = self.policy.backoff(frame.corr, attempt - 1);
                self.obs.emit(|| {
                    Event::new(
                        EventKind::NetRetry {
                            node: self.node,
                            attempt: attempt as u64 - 1,
                            backoff_ns: backoff.as_nanos() as u64,
                        },
                        0,
                        None,
                        0,
                    )
                });
                std::thread::sleep(backoff);
            }
            match self.attempt(frame) {
                Ok(reply) => {
                    if let Reply::Nack { code, .. } = &reply {
                        // A refusal is a transport success, so no retry
                        // path records it — emit here so `worlds-report
                        // --net` can count refusals per reason.
                        let code = *code;
                        self.obs.emit(|| {
                            Event::new(
                                EventKind::NetNack {
                                    node: self.node,
                                    code: code as u64,
                                },
                                0,
                                None,
                                0,
                            )
                        });
                    }
                    return Ok(reply);
                }
                Err(e) => {
                    // A failed attempt poisons the stream: a late reply
                    // arriving on it would desync the next request.
                    self.stream = None;
                    if !e.is_retryable() {
                        return Err(e);
                    }
                    last = Some(e);
                }
            }
        }
        Err(NetError::RetriesExhausted {
            attempts: self.policy.max_attempts.max(1),
            last: Box::new(last.unwrap_or(NetError::Truncated)),
        })
    }

    /// One attempt under one deadline: connect if needed, send, await
    /// the matching reply.
    fn attempt(&mut self, frame: &Frame) -> Result<Reply> {
        let started = Instant::now();
        let (obs, node) = (self.obs.clone(), self.node);
        if self.stream.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, self.policy.deadline)?;
            stream.set_nodelay(true)?;
            self.stream = Some(stream);
        }
        let stream = self.stream.as_mut().expect("just connected");
        stream.set_read_timeout(Some(self.policy.deadline))?;
        stream.set_write_timeout(Some(self.policy.deadline))?;

        let result = (|| {
            let sent = write_frame(stream, frame)?;
            obs.emit(|| {
                Event::new(
                    EventKind::NetSend {
                        node,
                        bytes: sent as u64,
                    },
                    0,
                    None,
                    0,
                )
            });
            loop {
                let (reply, size) = read_frame(stream)?;
                if reply.corr != frame.corr {
                    // A reply to a request this Conn already gave up on;
                    // the ledger replayed it harmlessly. Keep waiting.
                    continue;
                }
                obs.emit(|| {
                    Event::new(
                        EventKind::NetRecv {
                            node,
                            bytes: size as u64,
                            rtt_ns: started.elapsed().as_nanos() as u64,
                        },
                        0,
                        None,
                        0,
                    )
                });
                return Reply::decode(reply.kind, &reply.payload);
            }
        })();
        if let Err(e) = &result {
            if e.is_timeout() {
                obs.emit(|| {
                    Event::new(
                        EventKind::NetTimeout {
                            node,
                            waited_ns: started.elapsed().as_nanos() as u64,
                        },
                        0,
                        None,
                        0,
                    )
                });
            }
        }
        result
    }
}

/// A per-node pool of [`Conn`]s sharing one policy and one registry.
pub struct Pool {
    policy: RetryPolicy,
    obs: Registry,
    conns: HashMap<u64, Conn>,
}

impl Pool {
    pub fn new(policy: RetryPolicy, obs: Registry) -> Pool {
        Pool {
            policy,
            obs,
            conns: HashMap::new(),
        }
    }

    /// Register (or re-point) the address for `node`.
    pub fn register(&mut self, node: u64, addr: SocketAddr) {
        self.conns
            .insert(node, Conn::new(node, addr, self.policy, self.obs.clone()));
    }

    /// The connection for `node`, if registered.
    pub fn conn(&mut self, node: u64) -> Option<&mut Conn> {
        self.conns.get_mut(&node)
    }

    /// Issue `req` to `node`.
    pub fn call(&mut self, node: u64, req: &Request) -> Result<Reply> {
        self.conn(node)
            .ok_or_else(|| NetError::Protocol(format!("no conn registered for node {node}")))?
            .call(req)
    }

    /// Issue `req` to `node` and unwrap the `Ack`.
    pub fn call_ack(&mut self, node: u64, req: &Request) -> Result<u64> {
        self.conn(node)
            .ok_or_else(|| NetError::Protocol(format!("no conn registered for node {node}")))?
            .call_ack(req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_caps_and_is_deterministic() {
        let p = RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(80),
            deadline: Duration::from_millis(100),
            seed: 42,
        };
        let b1 = p.backoff(7, 1);
        let b2 = p.backoff(7, 2);
        let b5 = p.backoff(7, 5);
        assert!(b1 <= Duration::from_millis(10));
        assert!(b1 > Duration::from_millis(5), "jitter takes at most half");
        assert!(b2 > b1, "exponential growth");
        assert!(b5 <= Duration::from_millis(80), "capped");
        assert_eq!(p.backoff(7, 3), p.backoff(7, 3), "deterministic");
        assert_ne!(p.backoff(7, 3), p.backoff(8, 3), "per-corr jitter");
    }

    #[test]
    fn corr_ids_are_unique() {
        let a = next_corr();
        let b = next_corr();
        assert_ne!(a, b);
    }
}
