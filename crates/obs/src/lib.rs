//! `worlds-obs` — unified observability for speculative worlds.
//!
//! One [`Registry`] handle threads through the kernel, page store, IPC
//! router, and remote cluster. Disabled (the default) it is a single
//! `Option` that is `None`: every instrumentation site is one branch and
//! no event is ever constructed. Enabled, each lifecycle moment becomes
//! an [`Event`] that is folded into lock-free [`RunStats`] and fanned
//! out to pluggable [`EventSink`]s — an in-memory ring for tests, a
//! JSONL stream for offline analysis.
//!
//! ```
//! use worlds_obs::{Event, EventKind, Registry};
//!
//! let (obs, ring) = Registry::with_ring(1024);
//! obs.emit(|| Event::new(EventKind::Spawn { alt: 0 }, 1, Some(0), 0));
//! assert_eq!(ring.events().len(), 1);
//! assert_eq!(obs.stats().unwrap().kernel.worlds_spawned.get(), 1);
//! println!("{}", obs.summary().unwrap());
//! ```

mod event;
mod metrics;
mod report;
mod sink;
pub mod site;
pub mod span;
pub mod trace_export;

pub use event::{Event, EventKind, ParseError};
pub use metrics::{fmt_ns, Counter, Gauge, Histogram, HistogramSnapshot, HIST_BUCKETS};
pub use report::{
    replay, ExecCounters, IpcCounters, KernelCounters, NetCounters, PageCounters, RemoteCounters,
    RunStats,
};
pub use sink::{EventSink, JsonlSink, RingSink};
pub use site::{learn_site_label, site_id, site_label, site_label_or_anon, SiteId};
pub use span::{SpanOutcome, SpanTree, TraceCtx, WorldSpan};
pub use trace_export::{chrome_trace_json, validate_json};

use std::sync::Arc;
use std::time::Instant;

/// Everything behind an enabled registry.
pub struct Inner {
    /// Aggregated counters and histograms.
    pub stats: RunStats,
    sinks: Vec<Arc<dyn EventSink>>,
    epoch: Instant,
    /// Site ids already described to this registry's stream.
    announced_sites: std::sync::Mutex<std::collections::HashSet<u64>>,
}

/// The observability handle instrumented subsystems hold.
///
/// Cloning is a refcount bump; all clones share one set of statistics
/// and sinks. A disabled registry ([`Registry::disabled`], also
/// `Default`) costs one predictable branch per instrumentation site.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Option<Arc<Inner>>,
}

impl Registry {
    /// The no-op registry: nothing recorded, nothing allocated.
    pub fn disabled() -> Registry {
        Registry { inner: None }
    }

    /// An enabled registry with no sinks: counters and histograms only.
    pub fn enabled() -> Registry {
        Registry::with_sinks(Vec::new())
    }

    /// An enabled registry fanning events out to `sinks`.
    pub fn with_sinks(sinks: Vec<Arc<dyn EventSink>>) -> Registry {
        Registry {
            inner: Some(Arc::new(Inner {
                stats: RunStats::new(),
                sinks,
                epoch: Instant::now(),
                announced_sites: std::sync::Mutex::new(std::collections::HashSet::new()),
            })),
        }
    }

    /// An enabled registry with a ring buffer of the last `capacity`
    /// events, returning the ring handle for inspection.
    pub fn with_ring(capacity: usize) -> (Registry, Arc<RingSink>) {
        let ring = Arc::new(RingSink::new(capacity));
        (Registry::with_sinks(vec![ring.clone()]), ring)
    }

    /// Build from the environment:
    ///
    /// | variable            | effect                                     |
    /// |---------------------|--------------------------------------------|
    /// | `WORLDS_OBS=1`      | enable counters + histograms               |
    /// | `WORLDS_OBS_JSONL=p`| also stream events to JSONL file `p`       |
    ///
    /// Anything else (unset, `0`, empty) yields the disabled registry.
    /// An unwritable JSONL path disables the sink with a note on stderr
    /// rather than failing the run.
    pub fn from_env() -> Registry {
        let enabled = std::env::var("WORLDS_OBS").map(|v| v != "0" && !v.is_empty());
        let jsonl = std::env::var("WORLDS_OBS_JSONL")
            .ok()
            .filter(|p| !p.is_empty());
        if enabled != Ok(true) && jsonl.is_none() {
            return Registry::disabled();
        }
        let mut sinks: Vec<Arc<dyn EventSink>> = Vec::new();
        if let Some(path) = jsonl {
            match JsonlSink::create(&path) {
                Ok(sink) => sinks.push(Arc::new(sink)),
                Err(e) => eprintln!("worlds-obs: cannot open WORLDS_OBS_JSONL={path}: {e}"),
            }
        }
        let obs = Registry::with_sinks(sinks);
        // Stamp capture provenance at the head of the stream so replay
        // tooling can warn when a "parallel" capture never had cores to
        // run on. `from_env` only — programmatic constructors stay
        // event-free so ring-length assertions elsewhere hold.
        obs.emit(|| {
            Event::new(
                EventKind::Meta {
                    effective_cores: effective_cores(),
                },
                0,
                None,
                0,
            )
        });
        obs
    }

    /// Whether events are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Run `f` against the live internals, if enabled. The idiom for
    /// touching counters directly on paths too hot for events:
    /// `obs.with(|i| i.stats.pagestore.faults.incr())`.
    #[inline]
    pub fn with<F: FnOnce(&Inner)>(&self, f: F) {
        if let Some(inner) = &self.inner {
            f(inner);
        }
    }

    /// Emit one event. The closure only runs when enabled, so disabled
    /// call sites never construct the event. The registry stamps
    /// wall-clock time, folds the event into [`RunStats`] (the same
    /// mapping JSONL replay uses), then hands it to every sink.
    #[inline]
    pub fn emit<F: FnOnce() -> Event>(&self, make: F) {
        if let Some(inner) = &self.inner {
            let mut ev = make();
            ev.wall_ns = inner.epoch.elapsed().as_nanos() as u64;
            inner.stats.absorb(&ev);
            for sink in &inner.sinks {
                sink.record(&ev);
            }
        }
    }

    /// Describe `site` in this registry's stream, once. Site ids are
    /// process-local, so a capture that carries them must also carry
    /// their labels to be renderable anywhere else; callers running a
    /// labelled block announce the site before its first events.
    /// Disabled registries and repeat announcements are free-ish (one
    /// branch, then one mutex op).
    pub fn announce_site(&self, site: SiteId) {
        if let Some(inner) = &self.inner {
            if !inner
                .announced_sites
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .insert(site.0)
            {
                return;
            }
            if let Some(label) = site_label(site.0) {
                self.emit(|| {
                    Event::new(
                        EventKind::SiteLabel {
                            site: site.0,
                            label,
                        },
                        0,
                        None,
                        0,
                    )
                });
            }
        }
    }

    /// Nanoseconds since this registry was enabled (0 when disabled).
    ///
    /// Real-thread executors have no discrete-event clock; they stamp
    /// `vt_ns` with this so virtual time coincides with wall time.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.inner
            .as_deref()
            .map_or(0, |i| i.epoch.elapsed().as_nanos() as u64)
    }

    /// The live statistics, if enabled.
    pub fn stats(&self) -> Option<&RunStats> {
        self.inner.as_deref().map(|i| &i.stats)
    }

    /// Flush every sink (JSONL buffers, etc.).
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            for sink in &inner.sinks {
                sink.flush();
            }
        }
    }

    /// The end-of-run summary table, if enabled.
    pub fn summary(&self) -> Option<String> {
        self.stats().map(|s| s.render_summary())
    }
}

/// CPU cores this process can actually use (1 when the runtime cannot
/// tell). The number every `BENCH_*.json` records as `effective_cores`
/// and the value [`Registry::from_env`] stamps into its Meta event.
pub fn effective_cores() -> u64 {
    std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1)
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("Registry(disabled)"),
            Some(i) => write!(f, "Registry(enabled, {} sinks)", i.sinks.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_never_builds_events() {
        let obs = Registry::disabled();
        let mut built = false;
        obs.emit(|| {
            built = true;
            Event::new(EventKind::Rendezvous, 1, None, 0)
        });
        assert!(!built, "closure must not run when disabled");
        assert!(obs.stats().is_none());
        assert!(obs.summary().is_none());
        assert!(!obs.is_enabled());
    }

    #[test]
    fn emit_stamps_wall_time_and_feeds_stats_and_sinks() {
        let (obs, ring) = Registry::with_ring(8);
        obs.emit(|| Event::new(EventKind::Spawn { alt: 2 }, 7, Some(1), 500));
        let events = ring.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].world, 7);
        assert_eq!(events[0].vt_ns, 500);
        let stats = obs.stats().unwrap();
        assert_eq!(stats.kernel.worlds_spawned.get(), 1);
    }

    #[test]
    fn clones_share_state() {
        let obs = Registry::enabled();
        let clone = obs.clone();
        clone.emit(|| Event::new(EventKind::MsgAccept, 1, None, 0));
        assert_eq!(obs.stats().unwrap().ipc.accepts.get(), 1);
    }

    #[test]
    fn from_env_round_trip() {
        // Env mutation: test process only, distinct var values per case.
        std::env::remove_var("WORLDS_OBS");
        std::env::remove_var("WORLDS_OBS_JSONL");
        assert!(!Registry::from_env().is_enabled());
        std::env::set_var("WORLDS_OBS", "0");
        assert!(!Registry::from_env().is_enabled());
        std::env::set_var("WORLDS_OBS", "1");
        assert!(Registry::from_env().is_enabled());
        std::env::remove_var("WORLDS_OBS");
    }
}
