//! Execution traces: the paper's Figure 1 as data.
//!
//! "The taken path is reflected in the execution history of the running
//! process" (§2.2). A [`Trace`] records the block's history — spawns,
//! dispatches, guard verdicts, the rendezvous, eliminations — in virtual
//! time, so tests and tools can assert on *how* a result was reached, not
//! just what it was. `Machine::run_block_traced` produces one.
//!
//! Since the `worlds-obs` layer landed, a trace is a thin projection of
//! the machine's observability event stream: the scheduler records
//! [`worlds_obs::Event`]s once, and [`TraceEvent::from_obs`] maps each
//! onto the trace vocabulary (dropping events with no trace analogue,
//! such as passing guard verdicts or bookkeeping eliminations of worlds
//! that already self-aborted).

use crate::time::VirtualTime;
use worlds_obs::{Event as ObsEvent, EventKind};

/// One event in a block's execution history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// The parent's fork for this alternative completed; the child is
    /// runnable from this instant.
    Spawned {
        /// Alternative index.
        alt: usize,
        /// When it became ready.
        at: VirtualTime,
    },
    /// The alternative finished its script with a passing guard and
    /// attempted to synchronize.
    Synchronized {
        /// Alternative index.
        alt: usize,
        /// When.
        at: VirtualTime,
    },
    /// The alternative's guard failed; it aborted without synchronizing.
    GuardFailed {
        /// Alternative index.
        alt: usize,
        /// When.
        at: VirtualTime,
    },
    /// The first synchronization won: the parent adopted this
    /// alternative's world.
    Committed {
        /// Winning alternative index.
        alt: usize,
        /// When the commit (rendezvous + state copy) finished.
        at: VirtualTime,
    },
    /// A losing sibling was eliminated.
    Eliminated {
        /// Alternative index.
        alt: usize,
        /// When its elimination was issued.
        at: VirtualTime,
    },
    /// The parent's `alt_wait` TIMEOUT expired with no winner.
    TimedOut {
        /// When.
        at: VirtualTime,
    },
}

impl TraceEvent {
    /// The event's timestamp.
    pub fn at(&self) -> VirtualTime {
        match self {
            TraceEvent::Spawned { at, .. }
            | TraceEvent::Synchronized { at, .. }
            | TraceEvent::GuardFailed { at, .. }
            | TraceEvent::Committed { at, .. }
            | TraceEvent::Eliminated { at, .. }
            | TraceEvent::TimedOut { at } => *at,
        }
    }

    /// Project an observability event onto the trace vocabulary.
    ///
    /// `alt` is the alternative index of the world the event concerns
    /// (the obs layer speaks world ids, the trace speaks alternative
    /// indices; the machine knows the mapping). Events with no trace
    /// analogue — passing guard verdicts, page traffic, RPC activity —
    /// return `None`.
    pub(crate) fn from_obs(ev: &ObsEvent, alt: Option<usize>) -> Option<TraceEvent> {
        let at = VirtualTime(ev.vt_ns);
        match ev.kind {
            EventKind::Spawn { .. } => Some(TraceEvent::Spawned { alt: alt?, at }),
            EventKind::GuardVerdict { pass: false, .. } => {
                Some(TraceEvent::GuardFailed { alt: alt?, at })
            }
            EventKind::Rendezvous => Some(TraceEvent::Synchronized { alt: alt?, at }),
            EventKind::Commit { .. } => Some(TraceEvent::Committed { alt: alt?, at }),
            EventKind::EliminateSync { .. } | EventKind::EliminateAsync => {
                Some(TraceEvent::Eliminated { alt: alt?, at })
            }
            EventKind::Timeout => Some(TraceEvent::TimedOut { at }),
            _ => None,
        }
    }

    /// The alternative the event concerns, if any.
    pub fn alt(&self) -> Option<usize> {
        match self {
            TraceEvent::Spawned { alt, .. }
            | TraceEvent::Synchronized { alt, .. }
            | TraceEvent::GuardFailed { alt, .. }
            | TraceEvent::Committed { alt, .. }
            | TraceEvent::Eliminated { alt, .. } => Some(*alt),
            TraceEvent::TimedOut { .. } => None,
        }
    }
}

/// A block's full execution history, in time order.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    pub(crate) fn push(&mut self, ev: TraceEvent) {
        debug_assert!(
            self.events.last().is_none_or(|last| last.at() <= ev.at()),
            "trace must be time-ordered"
        );
        self.events.push(ev);
    }

    /// All events, in time order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events concerning one alternative.
    pub fn for_alt(&self, alt: usize) -> Vec<&TraceEvent> {
        self.events
            .iter()
            .filter(|e| e.alt() == Some(alt))
            .collect()
    }

    /// The committed alternative, if the block succeeded.
    pub fn winner(&self) -> Option<usize> {
        self.events.iter().find_map(|e| match e {
            TraceEvent::Committed { alt, .. } => Some(*alt),
            _ => None,
        })
    }

    /// Render the history as indented text, one line per event.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            let line = match e {
                TraceEvent::Spawned { alt, at } => format!("{at:>12}  spawn      alt{alt}"),
                TraceEvent::Synchronized { alt, at } => {
                    format!("{at:>12}  sync       alt{alt}")
                }
                TraceEvent::GuardFailed { alt, at } => {
                    format!("{at:>12}  guard-fail alt{alt}")
                }
                TraceEvent::Committed { alt, at } => format!("{at:>12}  COMMIT     alt{alt}"),
                TraceEvent::Eliminated { alt, at } => format!("{at:>12}  eliminate  alt{alt}"),
                TraceEvent::TimedOut { at } => format!("{at:>12}  TIMEOUT"),
            };
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: f64) -> VirtualTime {
        VirtualTime::from_ms(ms)
    }

    #[test]
    fn accessors_and_ordering() {
        let mut tr = Trace::default();
        tr.push(TraceEvent::Spawned { alt: 0, at: t(1.0) });
        tr.push(TraceEvent::Spawned { alt: 1, at: t(2.0) });
        tr.push(TraceEvent::GuardFailed { alt: 1, at: t(3.0) });
        tr.push(TraceEvent::Synchronized { alt: 0, at: t(5.0) });
        tr.push(TraceEvent::Committed { alt: 0, at: t(6.0) });
        assert_eq!(tr.events().len(), 5);
        assert_eq!(tr.winner(), Some(0));
        assert_eq!(tr.for_alt(1).len(), 2);
        assert_eq!(tr.events()[0].alt(), Some(0));
        assert_eq!(tr.events()[0].at(), t(1.0));
    }

    #[test]
    fn render_is_one_line_per_event() {
        let mut tr = Trace::default();
        tr.push(TraceEvent::Spawned { alt: 0, at: t(1.0) });
        tr.push(TraceEvent::TimedOut { at: t(9.0) });
        let s = tr.render();
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains("TIMEOUT"));
        assert!(s.contains("spawn"));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_push_asserts() {
        let mut tr = Trace::default();
        tr.push(TraceEvent::Spawned { alt: 0, at: t(5.0) });
        tr.push(TraceEvent::Spawned { alt: 1, at: t(1.0) });
    }
}
