//! Ablation: copy-on-write vs eager state copy (§2.3's motivation),
//! swept across the paper's observed write-fraction band (0.2–0.5) and
//! beyond.
//!
//! COW's cost is proportional to the *written* fraction; an eager fork
//! pays for every page up front. The crossover the bench exposes is the
//! paper's argument in one picture.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use worlds_pagestore::PageStore;

const PAGES: u64 = 160; // 320 KB at 2 KiB pages

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("cow_vs_eager");
    g.sample_size(20);
    g.measurement_time(std::time::Duration::from_millis(900));
    g.warm_up_time(std::time::Duration::from_millis(200));

    for &wf in &[0.0f64, 0.2, 0.5, 1.0] {
        let touched = (wf * PAGES as f64) as u64;

        g.bench_with_input(
            BenchmarkId::new("cow", format!("wf{wf}")),
            &touched,
            |b, &touched| {
                let store = PageStore::new(2048);
                let parent = store.create_world();
                for vpn in 0..PAGES {
                    store.write(parent, vpn, 0, &[1]).expect("parent live");
                }
                b.iter(|| {
                    let child = store.fork_world(parent).expect("parent live");
                    for vpn in 0..touched {
                        store.write(child, vpn, 0, &[2]).expect("child live");
                    }
                    store.drop_world(child).expect("child live");
                });
            },
        );

        g.bench_with_input(
            BenchmarkId::new("eager", format!("wf{wf}")),
            &touched,
            |b, &touched| {
                let store = PageStore::new(2048);
                let parent = store.create_world();
                let page = vec![1u8; 2048];
                for vpn in 0..PAGES {
                    store.write(parent, vpn, 0, &page).expect("parent live");
                }
                b.iter(|| {
                    // Eager fork: copy every page into a fresh world up
                    // front (what a copying fork would do), then write.
                    let child = store.create_world();
                    let mut buf = vec![0u8; 2048];
                    for vpn in 0..PAGES {
                        store.read(parent, vpn, 0, &mut buf).expect("parent live");
                        store.write(child, vpn, 0, &buf).expect("child live");
                    }
                    for vpn in 0..touched {
                        store.write(child, vpn, 0, &[2]).expect("child live");
                    }
                    store.drop_world(child).expect("child live");
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
