//! Golden-fixture test: `worlds-report` on the checked-in capture must
//! keep producing byte-identical analyses, and the exported Chrome trace
//! must stay valid JSON. The CI golden-fixture job runs the same
//! comparison from the command line; this test keeps it honest locally.
//!
//! Regenerate the expectation after an intentional output change with:
//!
//! ```text
//! cargo run -q -p worlds-telemetry --bin worlds-report -- \
//!   --critical-path --waste --net --trace-out /tmp/t.json \
//!   fixtures/golden_run.jsonl 2>/dev/null > fixtures/golden_summary.txt
//! ```

use std::path::Path;
use std::process::Command;

fn fixture(name: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../fixtures")
        .join(name)
}

#[test]
fn golden_capture_reproduces_checked_in_summary() {
    let trace_path = std::env::temp_dir().join("worlds_golden_trace.json");
    let out = Command::new(env!("CARGO_BIN_EXE_worlds-report"))
        .arg("--critical-path")
        .arg("--waste")
        .arg("--net")
        .arg("--trace-out")
        .arg(&trace_path)
        .arg(fixture("golden_run.jsonl"))
        .output()
        .expect("worlds-report runs");
    assert!(
        out.status.success(),
        "worlds-report failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let got = String::from_utf8(out.stdout).expect("report output is UTF-8");
    let want = std::fs::read_to_string(fixture("golden_summary.txt")).expect("golden summary");
    assert_eq!(
        got, want,
        "worlds-report output drifted from fixtures/golden_summary.txt \
         (regenerate it if the change is intentional)"
    );

    // The fixture contains one deliberately malformed line; the tool
    // must count it on stderr and still exit zero.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("skipped 1 malformed line(s) of 30"),
        "stderr should count the malformed line: {stderr}"
    );

    // The exported trace parses as JSON and names every world track.
    let trace = std::fs::read_to_string(&trace_path).expect("trace file written");
    worlds_obs::validate_json(&trace).expect("Chrome trace is valid JSON");
    for world in [1u64, 2, 3, 4, 5, 6] {
        assert!(
            trace.contains(&format!("\"world {world}")),
            "trace must carry a named track for world {world}"
        );
    }
    assert!(trace.contains("\"ph\":\"s\""), "flow arrows present");
    let _ = std::fs::remove_file(&trace_path);
}

#[test]
fn all_malformed_input_exits_nonzero() {
    let dir = std::env::temp_dir().join("worlds_golden_badjsonl");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.jsonl");
    std::fs::write(&bad, "not json\nalso not json\n").unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_worlds-report"))
        .arg(&bad)
        .output()
        .expect("worlds-report runs");
    assert_eq!(
        out.status.code(),
        Some(1),
        "a stream with every line malformed is an error"
    );
    let _ = std::fs::remove_file(&bad);
}
