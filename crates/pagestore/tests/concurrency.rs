//! Concurrency stress: interleaved `fork_world` / `write` / `drop_world`
//! from many threads while a verifier repeatedly checks the refcount
//! invariant (sum of per-world frame references == resident frames).
//!
//! The sharded store's correctness argument rests on that invariant holding
//! at every point where all shard locks can be taken for reading — frames
//! are only allocated or released inside commit sections, so the verifier
//! can never observe a half-transferred frame.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use worlds_pagestore::PageStore;

const PAGE: usize = 256;
const THREADS: usize = 6;
const ITERS: usize = 120;
const ROOT_PAGES: u64 = 16;

#[test]
fn refcount_invariant_under_interleaved_fork_write_drop() {
    let store = PageStore::new(PAGE);
    // Content dedupe widens what the verifier checks: every content-index
    // entry must point at a live frame, with re-shares folded into the
    // same refcount balance. Running the stress with the index hot is the
    // point — an index entry left behind by a freed frame fails the run.
    store.set_dedupe(true);
    let root = store.create_world();
    for vpn in 0..ROOT_PAGES {
        store.write(root, vpn, 0, &[0xA5, vpn as u8]).unwrap();
    }

    let running = Arc::new(AtomicBool::new(true));

    // Verifier thread: snapshot the whole store under all shard read locks
    // while the workers churn, asserting the invariant live, not just at
    // quiescence.
    let verifier = {
        let store = store.clone();
        let running = Arc::clone(&running);
        thread::spawn(move || {
            let mut checks = 0u32;
            while running.load(Ordering::Relaxed) {
                // verify_refcounts holds every shard read lock while it
                // compares map entries, frame refs and the live counter, so
                // a clean result here is a true point-in-time invariant.
                store
                    .verify_refcounts()
                    .expect("refcount invariant violated mid-run");
                checks += 1;
                thread::sleep(Duration::from_micros(200));
            }
            checks
        })
    };

    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let store = store.clone();
            thread::spawn(move || {
                for i in 0..ITERS {
                    // Fork a lineage off the shared root, CoW-fault a few of
                    // its pages, sometimes fork a grandchild too, then tear
                    // the lineage down in varying order.
                    let child = store.fork_world(root).unwrap();
                    for vpn in 0..4 {
                        let vpn = (t as u64 + vpn) % ROOT_PAGES;
                        store.write(child, vpn, 1, &[i as u8]).unwrap();
                    }
                    if i % 3 == 0 {
                        let grand = store.fork_world(child).unwrap();
                        store
                            .write(grand, t as u64 % ROOT_PAGES, 2, &[i as u8])
                            .unwrap();
                        // Fresh page private to the grandchild (zero-fill path).
                        store
                            .write(grand, ROOT_PAGES + t as u64, 0, &[i as u8])
                            .unwrap();
                        if i % 2 == 0 {
                            store.drop_world(grand).unwrap();
                            store.drop_world(child).unwrap();
                        } else {
                            store.drop_world(child).unwrap();
                            store.drop_world(grand).unwrap();
                        }
                    } else {
                        store.drop_world(child).unwrap();
                    }
                }
            })
        })
        .collect();

    for w in workers {
        w.join().expect("worker thread panicked");
    }
    running.store(false, Ordering::Relaxed);
    let checks = verifier.join().expect("verifier thread panicked");
    assert!(checks > 0, "verifier never ran");

    // Quiescent end state: only the root remains, holding exactly its own
    // pages, and the invariant still balances.
    assert_eq!(store.world_count(), 1);
    let live = store.verify_refcounts().unwrap();
    assert_eq!(live, store.live_frames());
    assert_eq!(live, store.mapped_pages(root).unwrap());
    for vpn in 0..ROOT_PAGES {
        assert_eq!(
            store.read_vec(root, vpn, 0, 2).unwrap(),
            vec![0xA5, vpn as u8]
        );
    }

    store.drop_world(root).unwrap();
    assert_eq!(store.live_frames(), 0, "all frames reclaimed at the end");
}

/// Lost-update regression: a CoW commit staged from a stale snapshot must
/// never be installed over an in-place write that landed while the frame
/// was briefly private. The dangerous interleaving is: writer A probes a
/// shared frame and stages a copy; a sibling drop makes the frame private;
/// writer B commits in place; a fork re-shares the frame; A's commit then
/// sees refs > 1 again and — without the generation bump in `fork_world` —
/// would install its pre-B copy, silently discarding B's write. The churn
/// thread below manufactures exactly that share/unshare flapping while two
/// writers own disjoint regions of one page, so any committed write that
/// later vanishes is a rolled-back commit, not writer interference.
#[test]
fn concurrent_writers_never_lose_committed_writes() {
    lost_update_stress(false);
}

/// The same interleaving with the content index hot: dedupe probes raise
/// refcounts from *outside* the owning shard's lock, so "refs == 1" can
/// flip to shared between a probe and its commit — the in-place
/// generation bump and the under-mutex privacy recheck are what this
/// variant exercises.
#[test]
fn concurrent_writers_never_lose_committed_writes_with_dedupe() {
    lost_update_stress(true);
}

fn lost_update_stress(dedupe: bool) {
    const WRITERS: usize = 2;
    const REGION: usize = 8;
    const ROUNDS: u8 = 200;

    let store = PageStore::new(PAGE);
    store.set_dedupe(dedupe);
    let root = store.create_world();
    store.write(root, 0, 0, &[0u8; REGION * WRITERS]).unwrap();

    let running = Arc::new(AtomicBool::new(true));

    // Flip the page between shared (forces the probe/stage/commit path)
    // and private (enables in-place writes) as fast as possible.
    let churn = {
        let store = store.clone();
        let running = Arc::clone(&running);
        thread::spawn(move || {
            while running.load(Ordering::Relaxed) {
                let child = store.fork_world(root).unwrap();
                store.drop_world(child).unwrap();
            }
        })
    };

    let writers: Vec<_> = (0..WRITERS)
        .map(|t| {
            let store = store.clone();
            thread::spawn(move || {
                let offset = t * REGION;
                for i in 1..=ROUNDS {
                    let val = [i; REGION];
                    store.write(root, 0, offset, &val).unwrap();
                    // This region belongs to this thread alone: once the
                    // write returns, nothing may roll it back until our
                    // own next write.
                    let got = store.read_vec(root, 0, offset, REGION).unwrap();
                    assert_eq!(got, val, "writer {t}'s committed write was lost");
                }
            })
        })
        .collect();

    for w in writers {
        w.join().expect("writer thread panicked");
    }
    running.store(false, Ordering::Relaxed);
    churn.join().expect("churn thread panicked");
    store
        .verify_refcounts()
        .expect("refcount invariant violated");
}
