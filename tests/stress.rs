//! Soak tests: long chains of blocks must not leak worlds, frames, or
//! output, and committed state must stay exact.

use std::time::Duration;

use multiple_worlds::worlds::{AltBlock, AltError, ElimMode, Speculation};

#[test]
fn fifty_sequential_blocks_leak_nothing() {
    let spec = Speculation::new();
    spec.setup(|c| c.put_u64("counter", 0)).unwrap();

    for round in 0..50u64 {
        let report = spec.run(
            AltBlock::new()
                .alt("inc", move |ctx| {
                    let v = ctx.get_u64("counter").unwrap();
                    ctx.put_u64("counter", v + 1)?;
                    ctx.print(format!("round {round}"));
                    Ok(v + 1)
                })
                .alt("inc-slower", move |ctx| {
                    std::thread::sleep(Duration::from_millis(1));
                    ctx.checkpoint()?;
                    let v = ctx.get_u64("counter").unwrap();
                    ctx.put_u64("counter", v + 1)?;
                    ctx.print(format!("round {round}"));
                    Ok(v + 1)
                })
                .alt("reject", |_| {
                    Err(AltError::GuardFailed("never eligible".into()))
                })
                .elim(ElimMode::Sync),
        );
        assert!(
            report.succeeded(),
            "round {round} failed: {:?}",
            report.outcome
        );
        assert_eq!(spec.store().world_count(), 1, "leak after round {round}");
    }

    assert_eq!(spec.read(|c| c.get_u64("counter")), Some(50));
    // Exactly one line of output per block (the winner's).
    assert_eq!(spec.tty().output_strings().len(), 50);
}

#[test]
fn wide_blocks_with_heavy_state() {
    let spec = Speculation::with_page_size(2048);
    // 160 pages of shared state (the paper's 320 KB configuration).
    spec.setup(|c| {
        for i in 0..40u64 {
            c.put_bytes(&format!("seg{i}"), &vec![i as u8; 2048])?;
        }
        Ok(())
    })
    .unwrap();

    let before = spec.store().stats();
    let report = spec.run(
        (0..8u64)
            .fold(AltBlock::new(), |block, i| {
                block.alt(format!("w{i}"), move |ctx| {
                    // Each alternative rewrites a different slice of state.
                    for k in 0..5u64 {
                        let name = format!("seg{}", (i * 5 + k) % 40);
                        ctx.put_bytes(&name, &vec![0xF0 | i as u8; 2048])?;
                        ctx.checkpoint()?;
                    }
                    Ok(i)
                })
            })
            .elim(ElimMode::Sync),
    );
    assert!(report.succeeded());
    let delta = spec.store().stats().delta_since(&before);
    assert_eq!(delta.forks, 8, "one world per alternative");
    assert!(delta.cow_faults >= 5, "the winner alone dirtied 5+ pages");
    assert_eq!(spec.store().world_count(), 1);

    // The committed state is internally consistent: exactly the winner's
    // five segments carry its signature.
    let winner = report.value.unwrap();
    let mut signed = 0;
    for i in 0..40u64 {
        let seg = spec.read(|c| c.get_bytes(&format!("seg{i}"))).unwrap();
        if seg[0] & 0xF0 == 0xF0 {
            assert_eq!(
                seg[0],
                0xF0 | winner as u8,
                "foreign write leaked into seg{i}"
            );
            signed += 1;
        }
    }
    assert_eq!(signed, 5);
}

#[test]
fn deeply_nested_blocks_commit_transitively() {
    // A 4-deep nest of single-alternative blocks: each level multiplies
    // the accumulator; the root must see the full product.
    let spec = Speculation::new();
    spec.setup(|c| c.put_u64("acc", 1)).unwrap();

    fn nest(
        session: &Speculation,
        ctx: &mut multiple_worlds::worlds::WorldCtx,
        depth: u32,
    ) -> Result<(), AltError> {
        let v = ctx.get_u64("acc").unwrap();
        ctx.put_u64("acc", v * 2)?;
        if depth > 0 {
            let inner_session = session.clone();
            let report = session.run_in(
                ctx.world_id(),
                ctx.predicates(),
                AltBlock::new()
                    .alt("deeper", move |ictx| {
                        nest(&inner_session, ictx, depth - 1)?;
                        Ok(())
                    })
                    .elim(ElimMode::Sync),
            );
            if !report.succeeded() {
                return Err(AltError::GuardFailed("nested level failed".into()));
            }
        }
        Ok(())
    }

    let session = spec.clone();
    let report = spec.run(
        AltBlock::new()
            .alt("outer", move |ctx| {
                nest(&session, ctx, 3)?;
                Ok(())
            })
            .elim(ElimMode::Sync),
    );
    assert!(report.succeeded());
    assert_eq!(
        spec.read(|c| c.get_u64("acc")),
        Some(16),
        "2^4 through 4 nested commits"
    );
    assert_eq!(spec.store().world_count(), 1);
}
