//! The three-stage Jenkins–Traub iteration (CACM Algorithm 419 structure).
//!
//! Stage 1 ("no-shift") smooths the H-polynomial; stage 2 ("fixed-shift")
//! iterates from `s = β·e^{iθ}` — **θ is the starting-angle degree of
//! freedom the paper parallelises over** — until the root estimate
//! stabilises; stage 3 ("variable-shift") polishes to convergence. A bad
//! angle can leave stage 2 circling without convergence: that is the
//! *failure* the paper's Table I counts in its `fails` column.

use crate::complex::Complex;
use crate::poly::Poly;

/// Tunables for the iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JtConfig {
    /// No-shift smoothing steps (CPOLY uses 5).
    pub stage1_iters: usize,
    /// Fixed-shift budget per root attempt; small budgets make the
    /// algorithm angle-sensitive (more Table-I-style failures), large
    /// budgets make it robust.
    pub stage2_iters: usize,
    /// Variable-shift budget (quadratic convergence: ~10 suffices).
    pub stage3_iters: usize,
    /// Stopping factor: stage 3 stops when
    /// `|p(s)| ≤ eps_factor · ε · Σ|cᵢ||s|^{n-i}`.
    pub eps_factor: f64,
    /// A computed root set is accepted when every residual against the
    /// *original* polynomial satisfies the same bound scaled by this.
    pub verify_factor: f64,
}

impl Default for JtConfig {
    fn default() -> Self {
        JtConfig {
            stage1_iters: 5,
            stage2_iters: 20,
            stage3_iters: 14,
            eps_factor: 20.0,
            verify_factor: 1e6,
        }
    }
}

/// Why a (strict, single-angle) run failed.
#[derive(Debug, Clone, PartialEq)]
pub enum FindError {
    /// Stages 2/3 did not converge while finding the `at_root`-th root.
    NoConvergence {
        /// Index of the root being sought when convergence was lost.
        at_root: usize,
        /// Iterations spent before giving up (for workload accounting).
        iterations: u64,
    },
    /// A root was produced but the residual check against the original
    /// polynomial rejected the set.
    ResidualTooLarge {
        /// The worst |p(root)| observed.
        residual: f64,
        /// The acceptance bound it violated.
        bound: f64,
    },
}

impl std::fmt::Display for FindError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FindError::NoConvergence {
                at_root,
                iterations,
            } => {
                write!(
                    f,
                    "no convergence at root #{at_root} after {iterations} iterations"
                )
            }
            FindError::ResidualTooLarge { residual, bound } => {
                write!(f, "residual {residual:.3e} exceeds bound {bound:.3e}")
            }
        }
    }
}

impl std::error::Error for FindError {}

/// A successful whole-polynomial result.
#[derive(Debug, Clone)]
pub struct RootReport {
    /// All `degree` roots, in discovery order.
    pub roots: Vec<Complex>,
    /// Worst residual `|p(root)|` against the original polynomial.
    pub max_residual: f64,
    /// Total inner iterations performed (workload measure; Table I's
    /// virtual-time calibration uses it).
    pub iterations: u64,
}

/// Raw H-polynomial (leading-first coefficients, degree ≤ n−1, leading
/// coefficient may be numerically tiny — kept untrimmed on purpose).
type H = Vec<Complex>;

fn eval_raw(coeffs: &[Complex], z: Complex) -> Complex {
    let mut acc = Complex::ZERO;
    for &c in coeffs {
        acc = acc * z + c;
    }
    acc
}

/// One H-iteration: `H' = (H − (H(s)/p(s))·p) / (z − s)`.
fn next_h(p: &Poly, h: &H, s: Complex) -> H {
    let n = p.degree();
    let t = eval_raw(h, s) / p.eval(s);
    // numerator (degree n): pad H with a leading zero.
    let mut acc = Complex::ZERO;
    let mut q = Vec::with_capacity(n);
    for i in 0..=n {
        let hc = if i == 0 { Complex::ZERO } else { h[i - 1] };
        let num_i = hc - t * p.coeffs()[i];
        acc = if i == 0 { num_i } else { acc * s + num_i };
        if i < n {
            q.push(acc);
        }
    }
    q
}

/// Root estimate from the current H: `t = s − p(s)/H̄(s)` with `H̄` the
/// monic normalisation of `H`.
fn root_estimate(p: &Poly, h: &H, s: Complex) -> Complex {
    let lead = h[0];
    if lead.abs() == 0.0 {
        return Complex::new(f64::NAN, f64::NAN);
    }
    let hbar_s = eval_raw(h, s) / lead;
    s - p.eval(s) / hbar_s
}

/// Adams-style evaluation error bound: `Σ|cᵢ|·|s|^{n-i}` (Horner on
/// magnitudes). `|p(s)|` below ~ε times this is numerically zero.
fn eval_bound(p: &Poly, s: Complex) -> f64 {
    let r = s.abs();
    let mut acc = 0.0;
    for c in p.coeffs() {
        acc = acc * r + c.abs();
    }
    acc
}

/// Find one zero of `p` (degree ≥ 1) starting stage 2 at angle
/// `angle_deg` on the Cauchy circle. Returns `(root, iterations)` on
/// success.
pub fn jenkins_traub(p: &Poly, angle_deg: f64, cfg: &JtConfig) -> Option<(Complex, u64)> {
    let n = p.degree();
    assert!(n >= 1, "constant polynomials have no roots");
    let mut iters: u64 = 0;

    // Trivial degrees: closed forms.
    if n == 1 {
        let c = p.coeffs();
        return Some((-(c[1] / c[0]), 1));
    }
    // A root exactly at the origin.
    if p.coeffs()[n].abs() == 0.0 {
        return Some((Complex::ZERO, 1));
    }
    if n == 2 {
        let c = p.coeffs();
        let (a, b, cc) = (c[0], c[1], c[2]);
        let disc = (b * b - a * cc.scale(4.0)).sqrt();
        // Citardauq form with a stable sign choice: q = b ± disc picked to
        // add constructively; the returned root −2c/q is the smaller one,
        // which deflates stably.
        let q = if (b.conj() * disc).re >= 0.0 {
            b + disc
        } else {
            b - disc
        };
        let root = if q.abs() > 0.0 {
            cc.scale(-2.0) / q
        } else {
            Complex::ZERO
        };
        return Some((root, 2));
    }

    let p = p.monic();

    // Stage 1: five no-shift steps from H⁰ = p'.
    let mut h: H = p.derivative().coeffs().to_vec();
    for _ in 0..cfg.stage1_iters {
        h = next_h(&p, &h, Complex::ZERO);
        iters += 1;
    }

    // Stage 2: fixed shift on the Cauchy circle at the caller's angle.
    let beta = p.cauchy_bound();
    let s = Complex::from_polar(beta, angle_deg.to_radians());
    let mut t_prev = Complex::new(f64::NAN, f64::NAN);
    let mut t_prev2 = Complex::new(f64::NAN, f64::NAN);
    let mut t = Complex::ZERO;
    for _ in 0..cfg.stage2_iters {
        h = next_h(&p, &h, s);
        iters += 1;
        t = root_estimate(&p, &h, s);
        if t.is_nan() {
            return None;
        }
        // Two consecutive halvings of the step ⇒ the estimate has settled;
        // move to the variable shift early.
        if !t_prev.is_nan()
            && !t_prev2.is_nan()
            && (t_prev - t_prev2).abs() <= 0.5 * t_prev2.abs()
            && (t - t_prev).abs() <= 0.5 * t_prev.abs()
        {
            break;
        }
        t_prev2 = t_prev;
        t_prev = t;
    }
    if t.is_nan() || !t.is_finite() {
        return None;
    }

    // Stage 3: variable shift from the stage-2 estimate. Whether or not
    // stage 2's settling test fired, stage 3 is attempted from the latest
    // estimate — its own residual test is the arbiter; if it cannot
    // converge within its budget, this starting angle has failed (the
    // paper's Table I `fails` column counts exactly these).
    let mut s = t;
    for _ in 0..cfg.stage3_iters {
        let ps_abs = p.eval(s).abs();
        if ps_abs <= cfg.eps_factor * f64::EPSILON * eval_bound(&p, s) {
            return Some((s, iters));
        }
        h = next_h(&p, &h, s);
        iters += 1;
        let next = root_estimate(&p, &h, s);
        if next.is_nan() || !next.is_finite() {
            return None;
        }
        s = next;
    }
    // Accept if the final point is already numerically a zero.
    if p.eval(s).abs() <= cfg.eps_factor * f64::EPSILON * eval_bound(&p, s) * 10.0 {
        Some((s, iters))
    } else {
        None
    }
}

/// Strict single-angle driver: find **all** roots using the *same*
/// starting angle for every deflation step — no internal retries. This is
/// one "alternative" of the paper's parallel rootfinder; some angles fail.
pub fn find_all_roots(p: &Poly, angle_deg: f64, cfg: &JtConfig) -> Result<RootReport, FindError> {
    let original = p.monic();
    let mut work = original.clone();
    let mut roots = Vec::with_capacity(p.degree());
    let mut iterations: u64 = 0;

    for k in 0..p.degree() {
        match jenkins_traub(&work, angle_deg, cfg) {
            Some((root, it)) => {
                iterations += it;
                roots.push(root);
                if work.degree() > 1 {
                    work = work.deflate(root);
                }
            }
            None => {
                return Err(FindError::NoConvergence {
                    at_root: k,
                    iterations,
                })
            }
        }
    }

    // Polish each root against the ORIGINAL polynomial with a few Newton
    // steps (standard practice: deflation accumulates error).
    let dp = original.derivative();
    for r in roots.iter_mut() {
        for _ in 0..3 {
            let f = original.eval(*r);
            let d = dp.eval(*r);
            if d.abs() == 0.0 {
                break;
            }
            let step = f / d;
            if !step.is_finite() {
                break;
            }
            *r = *r - step;
            iterations += 1;
        }
    }

    let mut max_residual = 0.0f64;
    let mut bound = 0.0f64;
    for &r in &roots {
        max_residual = max_residual.max(original.eval(r).abs());
        bound = bound.max(cfg.verify_factor * f64::EPSILON * eval_bound(&original, r));
    }
    if max_residual > bound {
        return Err(FindError::ResidualTooLarge {
            residual: max_residual,
            bound,
        });
    }
    Ok(RootReport {
        roots,
        max_residual,
        iterations,
    })
}

/// Robust driver: the classical CPOLY retry policy — on failure, advance
/// the starting angle by 94° (up to `retries` times per root). This is the
/// sequential baseline Table I's single-process row corresponds to.
pub fn find_all_roots_robust(
    p: &Poly,
    first_angle_deg: f64,
    retries: usize,
    cfg: &JtConfig,
) -> Result<RootReport, FindError> {
    let original = p.monic();
    let mut work = original.clone();
    let mut roots = Vec::with_capacity(p.degree());
    let mut iterations: u64 = 0;

    for k in 0..p.degree() {
        let mut found = None;
        for attempt in 0..=retries {
            let angle = first_angle_deg + 94.0 * attempt as f64;
            if let Some((root, it)) = jenkins_traub(&work, angle, cfg) {
                iterations += it;
                found = Some(root);
                break;
            }
            // Failed attempts still cost their full stage-2 budget.
            iterations += (cfg.stage1_iters + cfg.stage2_iters) as u64;
        }
        match found {
            Some(root) => {
                roots.push(root);
                if work.degree() > 1 {
                    work = work.deflate(root);
                }
            }
            None => {
                return Err(FindError::NoConvergence {
                    at_root: k,
                    iterations,
                })
            }
        }
    }

    let dp = original.derivative();
    for r in roots.iter_mut() {
        for _ in 0..3 {
            let f = original.eval(*r);
            let d = dp.eval(*r);
            if d.abs() == 0.0 {
                break;
            }
            let step = f / d;
            if !step.is_finite() {
                break;
            }
            *r = *r - step;
            iterations += 1;
        }
    }

    let mut max_residual = 0.0f64;
    for &r in &roots {
        max_residual = max_residual.max(original.eval(r).abs());
    }
    Ok(RootReport {
        roots,
        max_residual,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex {
        Complex::new(re, im)
    }

    fn assert_roots_match(found: &[Complex], expected: &[Complex], tol: f64) {
        assert_eq!(found.len(), expected.len());
        let mut used = vec![false; expected.len()];
        for f in found {
            let mut best = None;
            for (i, e) in expected.iter().enumerate() {
                if used[i] {
                    continue;
                }
                let d = (*f - *e).abs();
                if best.is_none_or(|(bd, _)| d < bd) {
                    best = Some((d, i));
                }
            }
            let (d, i) = best.expect("unmatched root");
            assert!(
                d < tol,
                "root {f} is {d} away from nearest expected {}",
                expected[i]
            );
            used[i] = true;
        }
    }

    #[test]
    fn linear_and_quadratic_closed_forms() {
        let p = Poly::from_real(&[2.0, -4.0]); // 2z - 4 → z = 2
        let (r, _) = jenkins_traub(&p, 49.0, &JtConfig::default()).unwrap();
        assert!((r - c(2.0, 0.0)).abs() < 1e-12);

        let q = Poly::from_roots(&[c(1.0, 1.0), c(1.0, -1.0)]); // z²-2z+2
        let (r, _) = jenkins_traub(&q, 49.0, &JtConfig::default()).unwrap();
        assert!(q.eval(r).abs() < 1e-10, "residual {}", q.eval(r).abs());
    }

    #[test]
    fn cubic_with_known_roots() {
        let roots = [c(1.0, 0.0), c(-2.0, 0.0), c(0.0, 3.0)];
        let p = Poly::from_roots(&roots);
        let rep = find_all_roots(&p, 49.0, &JtConfig::default()).unwrap();
        assert_roots_match(&rep.roots, &roots, 1e-8);
        assert!(rep.max_residual < 1e-9);
    }

    #[test]
    fn well_separated_degree_10() {
        let roots: Vec<Complex> = (0..10)
            .map(|k| Complex::from_polar(1.0 + k as f64, 0.7 * k as f64))
            .collect();
        let p = Poly::from_roots(&roots);
        let rep = find_all_roots(&p, 49.0, &JtConfig::default()).unwrap();
        assert_roots_match(&rep.roots, &roots, 1e-6);
    }

    #[test]
    fn roots_of_unity_degree_12() {
        // z^12 - 1.
        let mut coeffs = vec![0.0; 13];
        coeffs[0] = 1.0;
        coeffs[12] = -1.0;
        let p = Poly::from_real(&coeffs);
        let expected: Vec<Complex> = (0..12)
            .map(|k| Complex::from_polar(1.0, 2.0 * std::f64::consts::PI * k as f64 / 12.0))
            .collect();
        let rep = find_all_roots_robust(&p, 49.0, 3, &JtConfig::default()).unwrap();
        assert_roots_match(&rep.roots, &expected, 1e-7);
    }

    #[test]
    fn root_at_origin_detected() {
        let p = Poly::from_roots(&[Complex::ZERO, c(2.0, 0.0), c(-1.0, 1.0)]);
        let rep = find_all_roots(&p, 49.0, &JtConfig::default()).unwrap();
        assert!(rep.roots.iter().any(|r| r.abs() < 1e-10));
    }

    #[test]
    fn repeated_roots_converge_with_loose_tolerance() {
        // (z-1)² (z+2): multiple roots halve the attainable accuracy.
        let p = Poly::from_roots(&[c(1.0, 0.0), c(1.0, 0.0), c(-2.0, 0.0)]);
        let rep = find_all_roots_robust(&p, 49.0, 3, &JtConfig::default()).unwrap();
        assert_roots_match(&rep.roots, &[c(1.0, 0.0), c(1.0, 0.0), c(-2.0, 0.0)], 1e-4);
    }

    #[test]
    fn different_angles_cost_different_iterations() {
        // The whole point of Table I: runtime depends on the angle.
        let roots: Vec<Complex> = (0..14)
            .map(|k| Complex::from_polar(0.5 + 0.35 * k as f64, 2.4 * k as f64))
            .collect();
        let p = Poly::from_roots(&roots);
        let cfg = JtConfig::default();
        let mut iter_counts = Vec::new();
        for angle in [13.0, 49.0, 94.0, 143.0, 188.0, 237.0] {
            if let Ok(rep) = find_all_roots(&p, angle, &cfg) {
                iter_counts.push(rep.iterations);
            }
        }
        assert!(iter_counts.len() >= 2, "most angles should succeed");
        let min = iter_counts.iter().min().unwrap();
        let max = iter_counts.iter().max().unwrap();
        assert!(max > min, "angles must differ in cost: {iter_counts:?}");
    }

    #[test]
    fn tight_stage2_budget_can_fail() {
        // With a starved fixed-shift budget some angle fails — the paper's
        // `fails` column is exactly this.
        let roots: Vec<Complex> = (0..16)
            .map(|k| Complex::from_polar(0.9 + 0.05 * (k % 4) as f64, 0.39 * k as f64))
            .collect();
        let p = Poly::from_roots(&roots);
        let starved = JtConfig {
            stage2_iters: 3,
            ..JtConfig::default()
        };
        let mut failures = 0;
        for angle in (0..24).map(|k| 15.0 * k as f64) {
            if find_all_roots(&p, angle, &starved).is_err() {
                failures += 1;
            }
        }
        assert!(
            failures > 0,
            "a 3-iteration stage-2 budget should fail somewhere"
        );
    }

    #[test]
    fn robust_driver_survives_where_strict_fails() {
        let roots: Vec<Complex> = (0..16)
            .map(|k| Complex::from_polar(0.9 + 0.05 * (k % 4) as f64, 0.39 * k as f64))
            .collect();
        let p = Poly::from_roots(&roots);
        let starved = JtConfig {
            stage2_iters: 6,
            ..JtConfig::default()
        };
        // Find an angle where strict fails…
        let failing = (0..24)
            .map(|k| 15.0 * k as f64)
            .find(|&a| find_all_roots(&p, a, &starved).is_err());
        if let Some(angle) = failing {
            // …and check the robust retry policy recovers from it.
            let rep = find_all_roots_robust(&p, angle, 4, &starved);
            assert!(rep.is_ok(), "94-degree retries should recover: {rep:?}");
        }
    }

    #[test]
    fn find_error_display() {
        let e = FindError::NoConvergence {
            at_root: 3,
            iterations: 120,
        };
        assert!(e.to_string().contains("#3"));
        let e = FindError::ResidualTooLarge {
            residual: 1.0,
            bound: 0.5,
        };
        assert!(e.to_string().contains("exceeds"));
    }
}
