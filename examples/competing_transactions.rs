//! The paper's §5 framing: "'Multiple Worlds' could be viewed as a set of
//! competing transactions, at most one of which will take effect."
//!
//! ```sh
//! cargo run --example competing_transactions
//! ```
//!
//! Three pricing strategies race as optimistic transactions over the same
//! snapshot of a tiny page database; whichever validates first commits
//! and the others abort — then the ordinary retry loop shows the same
//! machinery handling ordinary (non-competing) concurrency.

use worlds_tx::{competing_parallel, Tx, TxManager};

fn main() {
    let db = TxManager::new(256);

    // Page 0: a price; page 1: an audit note.
    {
        let mut init = db.begin();
        db.write(&mut init, 0, &100u64.to_le_bytes());
        db.commit(init).expect("initial commit");
    }
    let price =
        |m: &TxManager| u64::from_le_bytes(m.read_committed(0, 8).try_into().expect("8 bytes"));
    println!("initial price: {}", price(&db));

    // --- competing transactions: at most one takes effect ---
    println!("\nthree strategies race (each reads then rewrites the price page):");
    type Strategy = Box<dyn Fn(u64) -> u64 + Send + Sync>;
    let strategies: Vec<(&str, Strategy)> = vec![
        ("undercut", Box::new(|p| p - 7)),
        ("premium", Box::new(|p| p + 25)),
        ("round", Box::new(|p| (p / 10) * 10)),
    ];
    let names: Vec<&str> = strategies.iter().map(|(n, _)| *n).collect();
    let bodies = strategies
        .into_iter()
        .map(|(_name, f)| {
            Box::new(move |m: &TxManager, tx: &mut Tx| {
                let p = u64::from_le_bytes(m.read(tx, 0, 8).try_into().expect("8 bytes"));
                let new = f(p);
                m.write(tx, 0, &new.to_le_bytes());
                new
            }) as worlds_tx::ParallelTxBody<u64>
        })
        .collect();

    let (idx, committed) = competing_parallel(&db, bodies).expect("one strategy validates first");
    println!(
        "winner: {} (committed price {committed}); database version {}",
        names[idx],
        db.version()
    );
    assert_eq!(price(&db), committed);
    assert_eq!(db.version(), 2, "exactly one of the three took effect");

    // --- the same machinery as ordinary OCC: retries instead of races ---
    println!("\nnow an ordinary optimistic update with interference and retry:");
    let mut sabotaged = false;
    let (final_price, version) = db
        .run(3, |m, tx| {
            let p = u64::from_le_bytes(m.read(tx, 0, 8).try_into().expect("8 bytes"));
            if !sabotaged {
                sabotaged = true;
                // A rival slips in a committed change, invalidating us once.
                let mut rival = m.begin();
                m.write(&mut rival, 0, &(p + 1).to_le_bytes());
                m.commit(rival).expect("rival commits");
                println!("  (rival committed price {} mid-flight)", p + 1);
            }
            let new = p * 2;
            m.write(tx, 0, &new.to_le_bytes());
            new
        })
        .expect("retry loop converges");
    println!("retried transaction committed price {final_price} at version {version}");
    assert_eq!(price(&db), final_price);
    println!(
        "\n(both patterns ran on the same COW worlds the speculation executor uses:\n\
         begin = fork, abort = drop world, commit = validated adoption)"
    );
}
