//! Prolog terms.

use std::fmt;

/// A Horn-clause term.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// A constant symbol: `tom`, `nil`.
    Atom(String),
    /// A logic variable: `X`, `Who`. Internally-generated fresh variables
    /// are named `_G<n>`.
    Var(String),
    /// An integer constant.
    Int(i64),
    /// A functor with arguments: `parent(tom, X)`, `cons(H, T)`.
    Compound(String, Vec<Term>),
}

impl Term {
    /// Convenience constructor for an atom.
    pub fn atom(name: &str) -> Term {
        Term::Atom(name.to_string())
    }

    /// Convenience constructor for a variable.
    pub fn var(name: &str) -> Term {
        Term::Var(name.to_string())
    }

    /// Convenience constructor for a compound term.
    pub fn compound(functor: &str, args: Vec<Term>) -> Term {
        Term::Compound(functor.to_string(), args)
    }

    /// Build a proper list term from elements (`.`/2 chains ending in
    /// `[]`, the classical representation).
    pub fn list(items: Vec<Term>) -> Term {
        let mut t = Term::atom("[]");
        for item in items.into_iter().rev() {
            t = Term::Compound(".".into(), vec![item, t]);
        }
        t
    }

    /// Functor name and arity, treating atoms as arity-0 functors.
    pub fn functor(&self) -> Option<(&str, usize)> {
        match self {
            Term::Atom(a) => Some((a, 0)),
            Term::Compound(f, args) => Some((f, args.len())),
            _ => None,
        }
    }

    /// Collect all variable names in this term, in first-occurrence order.
    pub fn vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            Term::Var(v) if !out.contains(v) => {
                out.push(v.clone());
            }
            Term::Compound(_, args) => {
                for a in args {
                    a.collect_vars(out);
                }
            }
            _ => {}
        }
    }

    /// Rename every variable `V` to `V#<suffix>` — used to freshen clause
    /// copies before resolution.
    pub fn rename(&self, suffix: u64) -> Term {
        match self {
            Term::Var(v) => Term::Var(format!("{v}#{suffix}")),
            Term::Compound(f, args) => {
                Term::Compound(f.clone(), args.iter().map(|a| a.rename(suffix)).collect())
            }
            other => other.clone(),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Atom(a) => write!(f, "{a}"),
            Term::Var(v) => write!(f, "{v}"),
            Term::Int(i) => write!(f, "{i}"),
            Term::Compound(functor, args) if functor == "." && args.len() == 2 => {
                // List pretty-printing.
                write!(f, "[")?;
                let mut head = &args[0];
                let mut tail = &args[1];
                loop {
                    write!(f, "{head}")?;
                    match tail {
                        Term::Atom(a) if a == "[]" => break,
                        Term::Compound(c, next) if c == "." && next.len() == 2 => {
                            write!(f, ",")?;
                            head = &next[0];
                            tail = &next[1];
                        }
                        other => {
                            write!(f, "|{other}")?;
                            break;
                        }
                    }
                }
                write!(f, "]")
            }
            Term::Compound(functor, args) => {
                write!(f, "{functor}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_functor() {
        let t = Term::compound("parent", vec![Term::atom("tom"), Term::var("X")]);
        assert_eq!(t.functor(), Some(("parent", 2)));
        assert_eq!(Term::atom("a").functor(), Some(("a", 0)));
        assert_eq!(Term::var("X").functor(), None);
        assert_eq!(Term::Int(3).functor(), None);
    }

    #[test]
    fn vars_in_order_without_duplicates() {
        let t = Term::compound(
            "f",
            vec![
                Term::var("X"),
                Term::compound("g", vec![Term::var("Y"), Term::var("X")]),
            ],
        );
        assert_eq!(t.vars(), vec!["X".to_string(), "Y".to_string()]);
    }

    #[test]
    fn rename_freshens_all_vars() {
        let t = Term::compound("f", vec![Term::var("X"), Term::atom("a")]);
        let r = t.rename(7);
        assert_eq!(
            r,
            Term::compound("f", vec![Term::var("X#7"), Term::atom("a")])
        );
    }

    #[test]
    fn list_display() {
        let l = Term::list(vec![Term::Int(1), Term::Int(2), Term::Int(3)]);
        assert_eq!(l.to_string(), "[1,2,3]");
        assert_eq!(Term::list(vec![]).to_string(), "[]");
        // Improper list tail.
        let improper = Term::Compound(".".into(), vec![Term::Int(1), Term::var("T")]);
        assert_eq!(improper.to_string(), "[1|T]");
    }

    #[test]
    fn compound_display() {
        let t = Term::compound("parent", vec![Term::atom("tom"), Term::var("X")]);
        assert_eq!(t.to_string(), "parent(tom,X)");
    }
}
