//! The real thing: alternatives as `fork(2)`ed processes with kernel COW,
//! pipe rendezvous, and SIGKILL sibling elimination (Unix only).
//!
//! ```sh
//! cargo run --example os_fork_race
//! ```
//!
//! This is the execution vehicle the paper actually measured in §3.4; the
//! example also reprints this host's fork/COW numbers next to the 1989
//! ones.

#[cfg(unix)]
fn main() {
    use std::time::{Duration, Instant};
    use worlds_os::{measure, ForkAlt, ForkElim, ForkOutcome, ForkRace};

    // Shared read-only input, inherited COW by every child.
    let input: Vec<u64> = (0..200_000).collect();
    let ptr = input.as_ptr() as usize;
    let len = input.len();

    let spin = |ms: u64| {
        let t0 = Instant::now();
        while t0.elapsed() < Duration::from_millis(ms) {
            std::hint::spin_loop();
        }
    };

    let race = ForkRace::new(vec![
        ForkAlt::new("slow-sum", move |buf| {
            // Deliberately slow path over the inherited pages.
            spin(400);
            let xs = unsafe { std::slice::from_raw_parts(ptr as *const u64, len) };
            let mut acc = 0u64;
            for &x in xs {
                acc = acc.wrapping_add(x);
            }
            buf[..8].copy_from_slice(&acc.to_le_bytes());
            Ok(8)
        }),
        ForkAlt::new("closed-form", move |buf| {
            let n = len as u64;
            let acc = n * (n - 1) / 2;
            buf[..8].copy_from_slice(&acc.to_le_bytes());
            Ok(8)
        }),
        ForkAlt::new("guard-fails", |_| Err(())),
    ])
    .timeout(Duration::from_secs(5))
    .elim(ForkElim::Sync);

    let t0 = Instant::now();
    let report = race.run().expect("fork race runs");
    let wall = t0.elapsed();

    match &report.outcome {
        ForkOutcome::Winner { label, payload, .. } => {
            let v = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
            println!("winner: {label}, value {v}, wall {wall:?}");
            assert_eq!(v, (len as u64) * (len as u64 - 1) / 2);
            assert_eq!(label, "closed-form");
        }
        other => panic!("expected a winner, got {other:?}"),
    }
    println!("(the slow child was SIGKILLed; its COW pages evaporated with it)\n");

    // Reprint this host's §3.4 numbers.
    let fork = measure::fork_latency(320 * 1024, 20).expect("fork works");
    let r2 = measure::page_copy_rate(512, 2048).expect("pipe works");
    let r4 = measure::page_copy_rate(512, 4096).expect("pipe works");
    let (sync, asynchronous) = measure::elimination_cost(16).expect("forks work");
    println!("this host vs the paper's 1989 machines:");
    println!("  fork (320 KB dirty):      {fork:>12.3?}   (3B2: 31 ms, HP: 12 ms)");
    println!("  2K page-copy rate:        {r2:>9.0} p/s   (3B2: 326 p/s)");
    println!("  4K page-copy rate:        {r4:>9.0} p/s   (HP: 1034 p/s)");
    println!("  eliminate 16, sync:       {sync:>12.3?}   (paper: ~40 ms)");
    println!("  eliminate 16, async:      {asynchronous:>12.3?}   (paper: ~20 ms)");
}

#[cfg(not(unix))]
fn main() {
    println!("the fork(2) backend is Unix-only; see examples/quickstart.rs for the portable API");
}
