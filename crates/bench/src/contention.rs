//! The multi-world contention workload: N worlds writing disjoint pages
//! from N real threads, shared by the criterion bench and the
//! `bench-baseline` bin so both measure exactly the same thing.
//!
//! Each world CoW-faults its own page range once, then keeps rewriting it
//! (the in-place path). On the old global-lock store every one of those
//! writes serialises on the store-wide `RwLock`; on the sharded store the
//! four worlds live in four different shards and never touch the same lock.

use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

use crate::baseline::{BaselineWorld, GlobalLockStore};
use worlds_pagestore::{PageStore, WorldId};

/// Workload shape. The defaults match the numbers recorded in
/// `BENCH_pagestore.json`.
#[derive(Debug, Clone, Copy)]
pub struct ContentionConfig {
    /// Concurrent worlds (= threads).
    pub worlds: usize,
    /// Pages in each world's private range.
    pub pages_per_world: u64,
    /// Full rewrites of the range per world.
    pub rounds: usize,
    /// Store page size in bytes.
    pub page_size: usize,
}

impl Default for ContentionConfig {
    fn default() -> Self {
        ContentionConfig {
            worlds: 4,
            pages_per_world: 64,
            rounds: 50,
            page_size: 2048,
        }
    }
}

impl ContentionConfig {
    /// Total write operations one run performs.
    pub fn total_writes(&self) -> u64 {
        self.worlds as u64 * self.pages_per_world * self.rounds as u64
    }
}

/// The store operations the workload needs, implemented by both the real
/// sharded store and the preserved global-lock baseline.
pub trait CowStore: Clone + Send + Sync + 'static {
    /// World handle type.
    type World: Copy + Send + 'static;
    /// Create a root world.
    fn create_world(&self) -> Self::World;
    /// Fork a copy-on-write child.
    fn fork_world(&self, parent: Self::World) -> Self::World;
    /// Write bytes into a page.
    fn write(&self, world: Self::World, vpn: u64, offset: usize, data: &[u8]);
    /// Destroy a world.
    fn drop_world(&self, world: Self::World);
}

impl CowStore for PageStore {
    type World = WorldId;
    fn create_world(&self) -> WorldId {
        PageStore::create_world(self)
    }
    fn fork_world(&self, parent: WorldId) -> WorldId {
        PageStore::fork_world(self, parent).expect("parent live")
    }
    fn write(&self, world: WorldId, vpn: u64, offset: usize, data: &[u8]) {
        PageStore::write(self, world, vpn, offset, data).expect("world live")
    }
    fn drop_world(&self, world: WorldId) {
        PageStore::drop_world(self, world).expect("world live")
    }
}

impl CowStore for GlobalLockStore {
    type World = BaselineWorld;
    fn create_world(&self) -> BaselineWorld {
        GlobalLockStore::create_world(self)
    }
    fn fork_world(&self, parent: BaselineWorld) -> BaselineWorld {
        GlobalLockStore::fork_world(self, parent)
    }
    fn write(&self, world: BaselineWorld, vpn: u64, offset: usize, data: &[u8]) {
        GlobalLockStore::write(self, world, vpn, offset, data)
    }
    fn drop_world(&self, world: BaselineWorld) {
        GlobalLockStore::drop_world(self, world)
    }
}

/// Run the workload once and return the wall time of the threaded phase
/// (setup — parent population and forks — is not timed).
pub fn disjoint_write_elapsed<S: CowStore>(store: &S, cfg: &ContentionConfig) -> Duration {
    let parent = store.create_world();
    for vpn in 0..(cfg.worlds as u64 * cfg.pages_per_world) {
        store.write(parent, vpn, 0, &[0xAA]);
    }
    let kids: Vec<S::World> = (0..cfg.worlds).map(|_| store.fork_world(parent)).collect();
    let barrier = Arc::new(Barrier::new(cfg.worlds + 1));
    let handles: Vec<_> = kids
        .iter()
        .enumerate()
        .map(|(i, &world)| {
            let store = store.clone();
            let barrier = Arc::clone(&barrier);
            let base = i as u64 * cfg.pages_per_world;
            let pages = cfg.pages_per_world;
            let rounds = cfg.rounds;
            thread::spawn(move || {
                barrier.wait();
                for round in 0..rounds {
                    for vpn in base..base + pages {
                        store.write(world, vpn, 0, &[round as u8]);
                    }
                }
            })
        })
        .collect();
    // Clock starts before the barrier release: once the last party arrives
    // every worker begins, and on a loaded scheduler the workers may finish
    // before this thread runs again, so timing must bracket the release.
    let t0 = Instant::now();
    barrier.wait();
    for h in handles {
        h.join().expect("worker thread");
    }
    let elapsed = t0.elapsed();
    for world in kids {
        store.drop_world(world);
    }
    store.drop_world(parent);
    elapsed
}

/// Best-of-`reps` throughput in writes/second.
pub fn best_throughput<S: CowStore>(store: &S, cfg: &ContentionConfig, reps: usize) -> f64 {
    let best = (0..reps.max(1))
        .map(|_| disjoint_write_elapsed(store, cfg))
        .min()
        .expect("at least one rep");
    cfg.total_writes() as f64 / best.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_runs_on_both_stores() {
        let cfg = ContentionConfig {
            worlds: 4,
            pages_per_world: 8,
            rounds: 2,
            page_size: 256,
        };
        let sharded = PageStore::new(cfg.page_size);
        let d1 = disjoint_write_elapsed(&sharded, &cfg);
        assert_eq!(sharded.live_frames(), 0, "workload must clean up");
        let global = GlobalLockStore::new(cfg.page_size);
        let d2 = disjoint_write_elapsed(&global, &cfg);
        assert_eq!(global.live_frames(), 0, "workload must clean up");
        assert!(d1.as_nanos() > 0 && d2.as_nanos() > 0);
        assert_eq!(cfg.total_writes(), 4 * 8 * 2);
    }
}
