//! Reliable-FIFO transport.
//!
//! §2.1: "Interprocess communication (IPC) is assumed to behave reliably (no
//! lost or duplicated messages) and FIFO (no out of order messages)." The
//! [`Network`] enforces both by construction: sends append to the
//! destination's mailbox under a lock and are stamped with a global,
//! monotonically increasing [`MsgId`].

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex;
use worlds_predicate::Pid;

use crate::message::{Message, MsgId};

/// One receiver's pending-message queue, in arrival order.
#[derive(Debug, Default)]
pub struct Mailbox {
    queue: VecDeque<Message>,
}

impl Mailbox {
    /// Messages waiting.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Look at the head message without removing it.
    pub fn peek(&self) -> Option<&Message> {
        self.queue.front()
    }

    fn push(&mut self, msg: Message) {
        self.queue.push_back(msg);
    }

    fn pop(&mut self) -> Option<Message> {
        self.queue.pop_front()
    }
}

#[derive(Debug, Default)]
struct NetInner {
    boxes: HashMap<Pid, Mailbox>,
    next_id: u64,
    sent: u64,
    delivered: u64,
}

/// A reliable, FIFO, in-memory message network between processes.
///
/// Clones share the same network (internally `Arc`), so each simulated or
/// real thread can hold a handle.
#[derive(Clone, Debug, Default)]
pub struct Network {
    inner: Arc<Mutex<NetInner>>,
}

impl Network {
    /// A fresh, empty network.
    pub fn new() -> Self {
        Network::default()
    }

    /// Send `msg` (stamping its id). Never lost, never duplicated, never
    /// reordered relative to other sends to the same destination.
    pub fn send(&self, mut msg: Message) -> MsgId {
        let mut inner = self.inner.lock();
        inner.next_id += 1;
        let id = MsgId(inner.next_id);
        msg.id = id;
        inner.sent += 1;
        inner.boxes.entry(msg.dst).or_default().push(msg);
        id
    }

    /// Remove and return the next message for `dst`, if any.
    pub fn recv(&self, dst: Pid) -> Option<Message> {
        let mut inner = self.inner.lock();
        let msg = inner.boxes.get_mut(&dst)?.pop();
        if msg.is_some() {
            inner.delivered += 1;
        }
        msg
    }

    /// Number of messages waiting for `dst`.
    pub fn pending(&self, dst: Pid) -> usize {
        self.inner.lock().boxes.get(&dst).map_or(0, |b| b.len())
    }

    /// Copy every message waiting for `src_box` into a new mailbox for
    /// `dst_box`, preserving order. Used when a receiver world-splits: both
    /// copies must be able to see the still-queued traffic.
    pub fn duplicate_mailbox(&self, src_box: Pid, dst_box: Pid) {
        let mut inner = self.inner.lock();
        let msgs: Vec<Message> = inner
            .boxes
            .get(&src_box)
            .map(|b| b.queue.iter().cloned().collect())
            .unwrap_or_default();
        let dst = inner.boxes.entry(dst_box).or_default();
        for mut m in msgs {
            m.dst = dst_box;
            dst.push(m);
        }
    }

    /// Drop the mailbox of an eliminated process.
    pub fn discard_mailbox(&self, pid: Pid) {
        self.inner.lock().boxes.remove(&pid);
    }

    /// Total messages ever sent.
    pub fn total_sent(&self) -> u64 {
        self.inner.lock().sent
    }

    /// Total messages ever received (delivered to a `recv` call).
    pub fn total_delivered(&self) -> u64 {
        self.inner.lock().delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use worlds_predicate::PredicateSet;

    fn msg(src: u64, dst: u64, body: &str) -> Message {
        Message::new(Pid(src), Pid(dst), PredicateSet::empty(), body)
    }

    #[test]
    fn fifo_per_destination() {
        let net = Network::new();
        net.send(msg(1, 9, "a"));
        net.send(msg(2, 9, "b"));
        net.send(msg(1, 9, "c"));
        assert_eq!(net.pending(Pid(9)), 3);
        assert_eq!(net.recv(Pid(9)).unwrap().payload_str(), Some("a"));
        assert_eq!(net.recv(Pid(9)).unwrap().payload_str(), Some("b"));
        assert_eq!(net.recv(Pid(9)).unwrap().payload_str(), Some("c"));
        assert!(net.recv(Pid(9)).is_none());
    }

    #[test]
    fn ids_are_globally_monotonic() {
        let net = Network::new();
        let a = net.send(msg(1, 2, "x"));
        let b = net.send(msg(3, 4, "y"));
        assert!(b > a);
    }

    #[test]
    fn no_loss_no_duplication() {
        let net = Network::new();
        for i in 0..100 {
            net.send(msg(1, 7, &format!("m{i}")));
        }
        let mut seen = std::collections::HashSet::new();
        while let Some(m) = net.recv(Pid(7)) {
            assert!(seen.insert(m.id), "duplicate delivery");
        }
        assert_eq!(seen.len(), 100);
        assert_eq!(net.total_sent(), 100);
        assert_eq!(net.total_delivered(), 100);
    }

    #[test]
    fn recv_from_empty_or_unknown_is_none() {
        let net = Network::new();
        assert!(net.recv(Pid(42)).is_none());
    }

    #[test]
    fn duplicate_mailbox_preserves_order_and_retargets() {
        let net = Network::new();
        net.send(msg(1, 5, "a"));
        net.send(msg(1, 5, "b"));
        net.duplicate_mailbox(Pid(5), Pid(6));
        // Original untouched.
        assert_eq!(net.pending(Pid(5)), 2);
        assert_eq!(net.pending(Pid(6)), 2);
        let m = net.recv(Pid(6)).unwrap();
        assert_eq!(m.payload_str(), Some("a"));
        assert_eq!(m.dst, Pid(6), "copies are re-addressed to the new world");
    }

    #[test]
    fn discard_mailbox_drops_pending() {
        let net = Network::new();
        net.send(msg(1, 5, "a"));
        net.discard_mailbox(Pid(5));
        assert_eq!(net.pending(Pid(5)), 0);
        assert!(net.recv(Pid(5)).is_none());
    }

    #[test]
    fn concurrent_senders_never_lose_messages() {
        use std::thread;
        let net = Network::new();
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let net = net.clone();
                thread::spawn(move || {
                    for i in 0..50 {
                        net.send(msg(t, 9, &format!("{t}:{i}")));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(net.pending(Pid(9)), 200);
        // Per-sender FIFO: each sender's messages arrive in its send order.
        let mut last = [0usize; 4];
        let mut count = [0usize; 4];
        while let Some(m) = net.recv(Pid(9)) {
            let s = m.payload_str().unwrap();
            let (t, i) = s.split_once(':').unwrap();
            let (t, i): (usize, usize) = (t.parse().unwrap(), i.parse().unwrap());
            if count[t] > 0 {
                assert!(i > last[t], "sender {t} reordered: {i} after {}", last[t]);
            }
            last[t] = i;
            count[t] += 1;
        }
        assert_eq!(count.iter().sum::<usize>(), 200);
    }

    #[test]
    fn mailbox_peek_does_not_consume() {
        let mut mb = Mailbox::default();
        assert!(mb.is_empty());
        mb.push(msg(1, 2, "x"));
        assert_eq!(mb.peek().unwrap().payload_str(), Some("x"));
        assert_eq!(mb.len(), 1);
    }
}
