//! Ablation: synchronous vs asynchronous sibling elimination (§2.2.1).
//!
//! The paper: eliminating 16 subprocesses costs ~40 ms waiting vs ~20 ms
//! asynchronously. Measured here both live (real SIGKILL/waitpid via
//! `worlds-os`) and in the simulator (response-time difference of a full
//! block under each mode).

use criterion::{criterion_group, criterion_main, Criterion};
use worlds_kernel::{AltSpec, BlockSpec, CostModel, ElimMode, Machine};

fn sim_block(elim: ElimMode) -> BlockSpec {
    BlockSpec::new(
        (0..16)
            .map(|i| AltSpec::new(format!("a{i}")).compute_ms(10.0 + i as f64))
            .collect(),
    )
    .elim(elim)
    .shared_pages(0)
}

fn bench_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_elimination");
    g.sample_size(20);
    g.measurement_time(std::time::Duration::from_millis(900));
    g.warm_up_time(std::time::Duration::from_millis(200));
    for (name, elim) in [("sync", ElimMode::Sync), ("async", ElimMode::Async)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut m = Machine::new(CostModel::att_3b2().with_cpus(16));
                m.run_block(&sim_block(elim)).wall
            });
        });
    }
    g.finish();
}

#[cfg(unix)]
fn bench_real(c: &mut Criterion) {
    let mut g = c.benchmark_group("real_elimination_16");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(1));
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.bench_function("sync_kill_and_wait", |b| {
        b.iter_custom(|iters| {
            let mut total = std::time::Duration::ZERO;
            for _ in 0..iters {
                let (sync, _) = worlds_os::measure::elimination_cost(16).expect("forks work");
                total += sync;
            }
            total
        });
    });
    g.bench_function("async_kill_only", |b| {
        b.iter_custom(|iters| {
            let mut total = std::time::Duration::ZERO;
            for _ in 0..iters {
                let (_, asynchronous) =
                    worlds_os::measure::elimination_cost(16).expect("forks work");
                total += asynchronous;
            }
            total
        });
    });
    g.finish();
}

#[cfg(not(unix))]
fn bench_real(_c: &mut Criterion) {}

criterion_group!(benches, bench_sim, bench_real);
criterion_main!(benches);
