//! Scriptable fault injection.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A fault plan decides, per invocation, whether the guarded computation
/// "fails" (produces a value the acceptance test must reject, or errors
/// outright). Plans are cheap to clone and thread-safe — parallel
/// alternates consult the same plan.
#[derive(Debug, Clone)]
pub enum FaultPlan {
    /// Never fail.
    None,
    /// Fail invocations whose zero-based global sequence number is in the
    /// list (deterministic scripting: "the primary fails the first two
    /// times").
    OnInvocations {
        /// Which invocation numbers fail.
        numbers: Arc<Vec<u64>>,
        /// Shared invocation counter.
        counter: Arc<AtomicU64>,
    },
    /// Fail with fixed probability, driven by a cheap deterministic hash
    /// of the invocation counter and a seed (reproducible pseudo-randomness
    /// without threading an RNG through alternates).
    Probabilistic {
        /// Failure probability in `[0, 1]`.
        p: f64,
        /// Seed for the hash.
        seed: u64,
        /// Shared invocation counter.
        counter: Arc<AtomicU64>,
    },
}

impl FaultPlan {
    /// A plan that never fails.
    pub fn none() -> FaultPlan {
        FaultPlan::None
    }

    /// Fail exactly the given invocation numbers (0-based, global across
    /// clones of this plan).
    pub fn on_invocations(numbers: impl Into<Vec<u64>>) -> FaultPlan {
        FaultPlan::OnInvocations {
            numbers: Arc::new(numbers.into()),
            counter: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Fail each invocation independently with probability `p`.
    pub fn probabilistic(p: f64, seed: u64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        FaultPlan::Probabilistic {
            p,
            seed,
            counter: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Consume one invocation slot and report whether it faults.
    pub fn next_faults(&self) -> bool {
        match self {
            FaultPlan::None => false,
            FaultPlan::OnInvocations { numbers, counter } => {
                let n = counter.fetch_add(1, Ordering::Relaxed);
                numbers.contains(&n)
            }
            FaultPlan::Probabilistic { p, seed, counter } => {
                let n = counter.fetch_add(1, Ordering::Relaxed);
                // SplitMix64 step: decorrelates consecutive invocations.
                let mut z = n.wrapping_add(*seed).wrapping_add(0x9E3779B97F4A7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^= z >> 31;
                (z as f64 / u64::MAX as f64) < *p
            }
        }
    }

    /// Invocations consumed so far (0 for [`FaultPlan::None`]).
    pub fn invocations(&self) -> u64 {
        match self {
            FaultPlan::None => 0,
            FaultPlan::OnInvocations { counter, .. } | FaultPlan::Probabilistic { counter, .. } => {
                counter.load(Ordering::Relaxed)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_faults() {
        let p = FaultPlan::none();
        for _ in 0..10 {
            assert!(!p.next_faults());
        }
        assert_eq!(p.invocations(), 0);
    }

    #[test]
    fn scripted_invocations_fault_exactly() {
        let p = FaultPlan::on_invocations(vec![0, 2]);
        assert!(p.next_faults()); // 0
        assert!(!p.next_faults()); // 1
        assert!(p.next_faults()); // 2
        assert!(!p.next_faults()); // 3
        assert_eq!(p.invocations(), 4);
    }

    #[test]
    fn clones_share_the_counter() {
        let p = FaultPlan::on_invocations(vec![1]);
        let q = p.clone();
        assert!(!p.next_faults()); // 0 via p
        assert!(q.next_faults()); // 1 via q — shared sequence
    }

    #[test]
    fn probabilistic_rate_is_roughly_right() {
        let p = FaultPlan::probabilistic(0.3, 99);
        let faults = (0..10_000).filter(|_| p.next_faults()).count();
        let rate = faults as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.03, "rate {rate}");
    }

    #[test]
    fn probabilistic_is_reproducible() {
        let a = FaultPlan::probabilistic(0.5, 7);
        let b = FaultPlan::probabilistic(0.5, 7);
        let seq_a: Vec<bool> = (0..32).map(|_| a.next_faults()).collect();
        let seq_b: Vec<bool> = (0..32).map(|_| b.next_faults()).collect();
        assert_eq!(seq_a, seq_b);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_probability_rejected() {
        let _ = FaultPlan::probabilistic(1.5, 0);
    }
}
