//! Fixed-size page data and virtual page numbering.

/// Default page size: 4 KiB, matching the HP 9000/350 measurements in the
/// paper's §3.4 (1034 4K-pages/second page-copy service rate).
pub const PAGE_SIZE_DEFAULT: usize = 4096;

/// 2 KiB pages, matching the AT&T 3B2/310 (326 2K-pages/second in §3.4).
pub const PAGE_SIZE_2K: usize = 2048;

/// 4 KiB pages (alias of the default; named for symmetry with
/// [`PAGE_SIZE_2K`]).
pub const PAGE_SIZE_4K: usize = 4096;

/// A virtual page number within a world's address space.
///
/// Address spaces are sparse: any `u64` is a valid VPN and pages materialise
/// on first write (reads of never-written pages observe zeroes, like
/// demand-zero pages in a real VM system).
pub type Vpn = u64;

/// The backing bytes of one physical page (a *frame*'s contents).
///
/// Pages are heap-allocated boxed slices so that a frame table of `N` frames
/// costs exactly `N * page_size` bytes plus small constant bookkeeping.
#[derive(Clone, PartialEq, Eq)]
pub struct PageData {
    bytes: Box<[u8]>,
}

impl PageData {
    /// A fresh zero-filled page of `page_size` bytes.
    pub fn zeroed(page_size: usize) -> Self {
        PageData {
            bytes: vec![0u8; page_size].into_boxed_slice(),
        }
    }

    /// A page initialised from `bytes` in one pass (no intermediate
    /// zero fill) — the staging constructor for copy-on-write faults.
    pub fn copy_of(bytes: &[u8]) -> Self {
        PageData {
            bytes: bytes.to_vec().into_boxed_slice(),
        }
    }

    /// Page contents, immutably.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Page contents, mutably. Callers outside the store go through
    /// [`crate::PageStore::write`], which enforces COW; this is exposed for
    /// the store itself and for tests.
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.bytes
    }

    /// The page size this page was allocated with.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when the page size is zero (never the case for store-allocated
    /// pages; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// True when every byte is zero, i.e. indistinguishable from a
    /// demand-zero page.
    pub fn is_zero(&self) -> bool {
        self.bytes.iter().all(|&b| b == 0)
    }
}

impl std::fmt::Debug for PageData {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let nonzero = self.bytes.iter().filter(|&&b| b != 0).count();
        write!(
            f,
            "PageData({} bytes, {} nonzero)",
            self.bytes.len(),
            nonzero
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_page_is_zero() {
        let p = PageData::zeroed(64);
        assert_eq!(p.len(), 64);
        assert!(p.is_zero());
        assert!(!p.is_empty());
    }

    #[test]
    fn mutation_round_trips() {
        let mut p = PageData::zeroed(16);
        p.bytes_mut()[3] = 0xAB;
        assert!(!p.is_zero());
        assert_eq!(p.bytes()[3], 0xAB);
    }

    #[test]
    fn copy_of_round_trips() {
        let p = PageData::copy_of(&[1, 2, 3]);
        assert_eq!(p.bytes(), &[1, 2, 3]);
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn clone_is_deep() {
        let mut a = PageData::zeroed(8);
        a.bytes_mut()[0] = 1;
        let b = a.clone();
        a.bytes_mut()[0] = 2;
        assert_eq!(b.bytes()[0], 1);
        assert_eq!(a.bytes()[0], 2);
    }

    #[test]
    fn debug_reports_nonzero_count() {
        let mut p = PageData::zeroed(8);
        p.bytes_mut()[1] = 9;
        p.bytes_mut()[2] = 9;
        assert_eq!(format!("{p:?}"), "PageData(8 bytes, 2 nonzero)");
    }

    #[test]
    fn page_size_constants() {
        assert_eq!(PAGE_SIZE_2K, 2048);
        assert_eq!(PAGE_SIZE_4K, 4096);
        assert_eq!(PAGE_SIZE_DEFAULT, PAGE_SIZE_4K);
    }
}
