//! Regenerate **Figure 4**: `PI` as a function of `Ro` at `Rμ = e`,
//! drawn log–log as in the paper, with the measured (simulated) series
//! overlaid.

use worlds_analysis::plot::{ascii_plot, Scale};
use worlds_analysis::{fig4_series, PerfModel};
use worlds_bench::{fig4_measured, render_table};

fn main() {
    let e = std::f64::consts::E;
    let analytic = fig4_series(e, 0.01, 1.0, 25);
    let measured = fig4_measured(e, 0.01, 1.0, 9);

    println!("Figure 4 reproduction: PI as a function of R_o (R_mu = e = {e:.4}), log-log");
    println!("(paper: hyperbola e/(1+R_o); PI falls from ~e at R_o=0.01 to e/2 at R_o=1)\n");

    println!(
        "{}",
        ascii_plot(
            "PI vs R_o   [* analytic, o measured-by-simulation, # overlap]",
            &analytic,
            Some(&measured),
            Scale::LogLog,
            56,
            16,
        )
    );

    let rows: Vec<Vec<String>> = measured
        .iter()
        .map(|p| {
            let a = PerfModel::new(e, p.x).pi();
            vec![
                format!("{:.3}", p.x),
                format!("{:.4}", a),
                format!("{:.4}", p.pi),
                format!("{:+.2}%", 100.0 * (p.pi - a) / a),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["R_o", "PI analytic", "PI measured", "delta"], &rows)
    );

    for (name, series) in [("fig4_analytic", &analytic), ("fig4_measured", &measured)] {
        let out = std::path::PathBuf::from(format!("target/experiments/{name}.csv"));
        match worlds_analysis::write_csv(&out, "r_o", &[("pi", series)]) {
            Ok(_) => println!("series written to {}", out.display()),
            Err(e) => println!("(could not write {}: {e})", out.display()),
        }
    }

    println!(
        "break-even overhead budget at R_mu = e: R_o* = e - 1 = {:.4} (off the plotted range,\n\
         as in the paper: every plotted point wins)",
        e - 1.0
    );
    println!(
        "\nreading: \"varying the overhead has a significant effect on the performance\n\
         improvement we achieve\" — halving PI across the plotted decade."
    );
}
