//! CRC-32 (IEEE 802.3 polynomial), table-driven.
//!
//! Every frame carries a trailing checksum so a truncated or bit-flipped
//! frame is rejected at the codec layer instead of surfacing as a corrupt
//! checkpoint image or a garbled page. The polynomial is the ubiquitous
//! reflected `0xEDB88320` — the same CRC Ethernet, gzip and PNG use — so
//! captures can be cross-checked with any standard tool.

/// 256-entry lookup table for the reflected IEEE polynomial, built at
/// compile time so the codec has no lazy-init state.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 of `bytes` (initial value `!0`, final complement — the standard
/// "CRC-32/ISO-HDLC" parameters).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let mut data = b"multiple worlds".to_vec();
        let clean = crc32(&data);
        for i in 0..data.len() * 8 {
            data[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32(&data), clean, "bit {i} undetected");
            data[i / 8] ^= 1 << (i % 8);
        }
    }
}
