//! Aggregated run statistics and the end-of-run summary table.
//!
//! [`RunStats`] is the single event→metric mapping: the live registry
//! routes every emitted event through [`RunStats::absorb`], and
//! `worlds-report` replays a JSONL file through the same function — so a
//! replayed report is bit-identical to the live one by construction.

use crate::counter_struct;
use crate::event::{Event, EventKind};
use crate::metrics::{Gauge, Histogram};

counter_struct! {
    /// Speculation lifecycle (kernel::machine).
    pub struct KernelCounters {
        /// Speculative worlds forked.
        pub worlds_spawned,
        /// Guard predicates that passed.
        pub guard_pass,
        /// Guard predicates that failed.
        pub guard_fail,
        /// Worlds that reached the rendezvous point.
        pub rendezvous,
        /// Winning worlds committed into their parents.
        pub commits,
        /// Losers eliminated while the parent waited.
        pub eliminations_sync,
        /// Losers handed to background elimination.
        pub eliminations_async,
        /// Worlds aborted at their deadline.
        pub timeouts,
    }
}

counter_struct! {
    /// Memory behaviour (pagestore::store).
    pub struct PageCounters {
        /// All write faults (CoW copies + zero fills).
        pub faults,
        /// Pages privatised by copy-on-write.
        pub page_copies,
        /// Pages materialised from the zero page.
        pub zero_fills,
        /// Bytes physically copied by CoW.
        pub bytes_copied,
        /// Frames freed (last reference dropped).
        pub frames_freed,
        /// Checkpoint images written.
        pub checkpoints,
        /// Total checkpoint image bytes.
        pub checkpoint_bytes,
    }
}

counter_struct! {
    /// Content-addressed dedupe (pagestore content index + net cache).
    /// Event-derived; the summary omits the section when the store never
    /// deduped anything, so replays of pre-dedupe captures (and of runs
    /// with dedupe off, the default) stay byte-identical.
    pub struct DedupCounters {
        /// Commits that re-shared an existing identical frame.
        pub frames_deduped,
        /// Bytes those hits avoided materialising.
        pub bytes_saved,
        /// Content-index entries retracted by in-place writes.
        pub hash_skips,
        /// Remote-fork base-cache evictions (byte budget pressure).
        pub cache_evictions,
        /// Bytes of pinned base state those evictions released.
        pub cache_evict_bytes,
    }
}

counter_struct! {
    /// Predicated message routing (ipc::router).
    pub struct IpcCounters {
        /// Messages matching the receiver's predicate set.
        pub accepts,
        /// Messages accepted by extending the predicate set.
        pub extends,
        /// Messages outside the predicate set.
        pub ignores,
        /// Messages that split the receiver into two worlds.
        pub splits,
        /// Accepting copies forked by those splits.
        pub split_spawns,
    }
}

counter_struct! {
    /// Remote speculation (remote::cluster).
    pub struct RemoteCounters {
        /// RPCs dispatched (rforks + commit-backs).
        pub rpc_sends,
        /// Attempts re-sent after a timeout.
        pub rpc_retries,
        /// Attempts that timed out.
        pub rpc_timeouts,
        /// Payload bytes shipped over the modeled network.
        pub bytes_sent,
        /// Worlds restored on a remote node by rfork.
        pub rforks,
    }
}

counter_struct! {
    /// Wire traffic (worlds-net client/server). Event-derived like the
    /// kernel/pagestore groups, so JSONL replay reconstructs them; the
    /// summary omits the section when no wire activity was recorded,
    /// which keeps replays of pre-net captures byte-identical.
    pub struct NetCounters {
        /// Request frames put on the wire (every attempt counts).
        pub frames_sent,
        /// Reply frames received.
        pub frames_received,
        /// Bytes on the wire outbound (frame headers + checksums included).
        pub wire_bytes_sent,
        /// Bytes on the wire inbound.
        pub wire_bytes_received,
        /// Requests re-sent after a timeout or connection error.
        pub retries,
        /// Request deadlines missed.
        pub timeouts,
        /// Requests the remote refused (admission rejections, limit
        /// refusals, bad requests). Rendered only when nonzero so
        /// replays of captures from before the nack event stay
        /// byte-identical.
        pub nacks,
    }
}

counter_struct! {
    /// Sampling profiler (worlds-prof). Event-derived from the flush
    /// stream, so JSONL replay reconstructs it; the summary omits the
    /// section when no samples were recorded, keeping replays of
    /// pre-prof captures byte-identical.
    pub struct ProfCounters {
        /// Marker samples attributed to a world (flush-event sum).
        pub cpu_samples,
        /// Estimated on-CPU nanoseconds (`samples * period_ns` summed).
        pub est_cpu_ns,
        /// Stall watchdog firings.
        pub stalls,
    }
}

counter_struct! {
    /// Execution substrate (worlds-exec pool + reaper). Unlike the other
    /// groups these are **not** derived from events: the pool is below
    /// the world-lifecycle layer, so its bookkeeping is bumped directly
    /// via `Registry::with` and appears in live summaries only — JSONL
    /// replay has no executor events to reconstruct it from, and the
    /// summary omits the section when every counter is zero.
    pub struct ExecCounters {
        /// Tasks executed by pool workers (incl. fallbacks).
        pub tasks_run,
        /// Tasks taken from another worker's deque.
        pub tasks_stolen,
        /// Tasks submitted from outside the pool (injector queue).
        pub tasks_injected,
        /// Temporary workers spawned when queued tasks outnumbered
        /// free workers (the reserve-or-spawn fallback).
        pub fallback_threads,
        /// Reaper drain cycles (per store per batch).
        pub reaper_batches,
        /// Worlds torn down by the background reaper.
        pub reaper_worlds,
    }
}

/// Every counter and histogram the observability layer maintains,
/// grouped by subsystem. Plain atomics throughout — shared freely.
#[derive(Debug, Default)]
pub struct RunStats {
    /// kernel::machine counters.
    pub kernel: KernelCounters,
    /// pagestore::store counters.
    pub pagestore: PageCounters,
    /// Content-dedupe counters (event-derived, see [`DedupCounters`]).
    pub dedupe: DedupCounters,
    /// ipc::router counters.
    pub ipc: IpcCounters,
    /// remote::cluster counters.
    pub remote: RemoteCounters,
    /// worlds-net wire counters (event-derived, see [`NetCounters`]).
    pub net: NetCounters,
    /// worlds-prof sampler counters (event-derived, see [`ProfCounters`]).
    pub prof: ProfCounters,
    /// worlds-exec pool/reaper counters (live-only, see [`ExecCounters`]).
    pub exec: ExecCounters,
    /// Speculation tasks submitted to the executor but not yet picked up
    /// by a worker (level, not count). Live-only, like [`ExecCounters`].
    pub exec_queue_depth: Gauge,
    /// Frames currently resident in the page store (level, not count).
    /// Pure event arithmetic — `CowCopy`/`ZeroFill` raise it, `FrameFree`
    /// lowers it — so JSONL replay reconstructs it exactly. It counts
    /// frames materialised since this registry attached: a store carrying
    /// pages from before attachment reports correspondingly fewer, and a
    /// `frame_free` whose allocation predates the stream clamps the gauge
    /// at zero instead of wrapping.
    pub frames_resident: Gauge,
    /// Commit overhead per winning world (virtual ns).
    pub commit_latency: Histogram,
    /// Synchronous elimination overhead per loser (virtual ns).
    pub elim_latency: Histogram,
    /// Checkpoint serialisation duration (virtual ns).
    pub checkpoint_duration: Histogram,
    /// End-to-end RPC latency over the modeled network (virtual ns).
    pub rpc_latency: Histogram,
    /// Request→reply round trip over the real wire (wall ns as the
    /// sender measured it).
    pub net_rtt: Histogram,
}

impl RunStats {
    /// Fresh, zeroed statistics.
    pub fn new() -> RunStats {
        RunStats::default()
    }

    /// Fold one event into counters and histograms. This is the
    /// canonical mapping used both live and on JSONL replay.
    pub fn absorb(&self, ev: &Event) {
        match &ev.kind {
            EventKind::Spawn { .. } => self.kernel.worlds_spawned.incr(),
            EventKind::GuardVerdict { pass: true, .. } => self.kernel.guard_pass.incr(),
            EventKind::GuardVerdict { pass: false, .. } => self.kernel.guard_fail.incr(),
            EventKind::Rendezvous => self.kernel.rendezvous.incr(),
            EventKind::Commit { overhead_ns, .. } => {
                self.kernel.commits.incr();
                self.commit_latency.record(*overhead_ns);
            }
            EventKind::EliminateSync { overhead_ns, .. } => {
                self.kernel.eliminations_sync.incr();
                self.elim_latency.record(*overhead_ns);
            }
            EventKind::EliminateAsync => self.kernel.eliminations_async.incr(),
            EventKind::Timeout => self.kernel.timeouts.incr(),
            EventKind::CowCopy { bytes, .. } => {
                self.pagestore.faults.incr();
                self.pagestore.page_copies.incr();
                self.pagestore.bytes_copied.add(*bytes);
                self.frames_resident.add(1);
            }
            EventKind::ZeroFill { .. } => {
                self.pagestore.faults.incr();
                self.pagestore.zero_fills.incr();
                self.frames_resident.add(1);
            }
            EventKind::FrameFree { frames } => {
                self.pagestore.frames_freed.add(*frames);
                self.frames_resident.sub(*frames);
            }
            // A dedupe commit re-shares a frame that is already resident,
            // so it deliberately does NOT touch `frames_resident` — only
            // CowCopy/ZeroFill/FrameFree move the gauge.
            EventKind::FrameDedup { bytes, .. } => {
                self.dedupe.frames_deduped.incr();
                self.dedupe.bytes_saved.add(*bytes);
            }
            EventKind::PageHashSkip { .. } => self.dedupe.hash_skips.incr(),
            EventKind::NetCacheEvict { bytes, .. } => {
                self.dedupe.cache_evictions.incr();
                self.dedupe.cache_evict_bytes.add(*bytes);
            }
            EventKind::Checkpoint {
                bytes, duration_ns, ..
            } => {
                self.pagestore.checkpoints.incr();
                self.pagestore.checkpoint_bytes.add(*bytes);
                self.checkpoint_duration.record(*duration_ns);
            }
            EventKind::MsgAccept => self.ipc.accepts.incr(),
            EventKind::MsgExtend => self.ipc.extends.incr(),
            EventKind::MsgIgnore => self.ipc.ignores.incr(),
            EventKind::MsgSplit => self.ipc.splits.incr(),
            EventKind::SplitSpawn => self.ipc.split_spawns.incr(),
            EventKind::RemoteFork { .. } => self.remote.rforks.incr(),
            EventKind::RpcSend {
                bytes, latency_ns, ..
            } => {
                self.remote.rpc_sends.incr();
                self.remote.bytes_sent.add(*bytes);
                self.rpc_latency.record(*latency_ns);
            }
            EventKind::RpcRetry { .. } => self.remote.rpc_retries.incr(),
            EventKind::RpcTimeout { .. } => self.remote.rpc_timeouts.incr(),
            EventKind::NetSend { bytes, .. } => {
                self.net.frames_sent.incr();
                self.net.wire_bytes_sent.add(*bytes);
            }
            EventKind::NetRecv { bytes, rtt_ns, .. } => {
                self.net.frames_received.incr();
                self.net.wire_bytes_received.add(*bytes);
                self.net_rtt.record(*rtt_ns);
            }
            EventKind::NetRetry { .. } => self.net.retries.incr(),
            EventKind::NetTimeout { .. } => self.net.timeouts.incr(),
            // The per-reason breakdown lives in the `--net` table (it is
            // per node+code); the summary carries only the total.
            EventKind::NetNack { .. } => self.net.nacks.incr(),
            EventKind::CpuSamples {
                samples, period_ns, ..
            } => {
                self.prof.cpu_samples.add(*samples);
                self.prof.est_cpu_ns.add(samples.saturating_mul(*period_ns));
            }
            EventKind::Stall { .. } => self.prof.stalls.incr(),
            // Utilization is a per-worker level, not a run counter; the
            // trace export renders it, the summary does not.
            EventKind::WorkerUtil { .. } => {}
            // Capture provenance, not a run metric: absorbing it would
            // make new captures aggregate differently from old ones.
            EventKind::Meta { .. } | EventKind::SiteLabel { .. } => {}
        }
    }

    /// Guard pass rate in [0, 1], or `None` before any verdicts.
    pub fn guard_pass_rate(&self) -> Option<f64> {
        let pass = self.kernel.guard_pass.get();
        let total = pass + self.kernel.guard_fail.get();
        (total > 0).then(|| pass as f64 / total as f64)
    }

    /// The human-readable end-of-run summary table.
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        out.push_str("== worlds observability summary ==\n");

        section(&mut out, "kernel", &self.kernel.snapshot());
        if let Some(rate) = self.guard_pass_rate() {
            out.push_str(&format!(
                "  {:<22} {:.1}%\n",
                "guard_pass_rate",
                rate * 100.0
            ));
        }
        hist_line(&mut out, "commit_latency", &self.commit_latency);
        hist_line(&mut out, "elim_latency", &self.elim_latency);

        section(&mut out, "pagestore", &self.pagestore.snapshot());
        out.push_str(&format!(
            "  {:<22} {}\n",
            "frames_resident",
            self.frames_resident.get()
        ));
        hist_line(&mut out, "checkpoint_duration", &self.checkpoint_duration);

        // Only runs that actually deduped (or evicted) print a [dedupe]
        // section: the index is opt-in, so replays of captures from
        // before it existed — and of runs with it off — stay identical.
        let dedupe = self.dedupe.snapshot();
        if dedupe.iter().any(|&(_, v)| v > 0) {
            section(&mut out, "dedupe", &dedupe);
        }

        section(&mut out, "ipc", &self.ipc.snapshot());
        section(&mut out, "remote", &self.remote.snapshot());
        hist_line(&mut out, "rpc_latency", &self.rpc_latency);

        // Only runs that actually touched the wire print a [net] section,
        // so replays of captures from before worlds-net stay identical.
        let mut net = self.net.snapshot();
        // `nacks` postdates the other wire counters; dropping the zero
        // line keeps replays of older captures byte-identical.
        if self.net.nacks.get() == 0 {
            net.retain(|&(name, _)| name != "nacks");
        }
        if net.iter().any(|&(_, v)| v > 0) {
            section(&mut out, "net", &net);
            hist_line(&mut out, "net_rtt", &self.net_rtt);
        }

        // Profiler section only when samples (or stalls) were recorded,
        // so pre-prof captures replay byte-identically.
        let prof = self.prof.snapshot();
        if prof.iter().any(|&(_, v)| v > 0) {
            section(&mut out, "prof", &prof);
        }

        // Executor counters are live-only (no events back them), so a
        // replayed report would always print zeros here; omitting the
        // idle section keeps replayed summaries identical to pre-exec
        // captures and keeps live == replay for runs that never touched
        // the pool.
        let exec = self.exec.snapshot();
        if exec.iter().any(|&(_, v)| v > 0) || self.exec_queue_depth.get() > 0 {
            section(&mut out, "exec", &exec);
            out.push_str(&format!(
                "  {:<22} {}\n",
                "queue_depth",
                self.exec_queue_depth.get()
            ));
        }
        out
    }
}

fn section(out: &mut String, name: &str, counters: &[(&'static str, u64)]) {
    out.push_str(&format!("[{name}]\n"));
    for (cname, v) in counters {
        out.push_str(&format!("  {cname:<22} {v}\n"));
    }
}

fn hist_line(out: &mut String, name: &str, hist: &Histogram) {
    let snap = hist.snapshot();
    if snap.count > 0 {
        out.push_str(&format!("  {name:<22} {}\n", snap.summary_line()));
    }
}

/// Replay parsed events into fresh statistics.
pub fn replay<'a>(events: impl IntoIterator<Item = &'a Event>) -> RunStats {
    let stats = RunStats::new();
    for ev in events {
        stats.absorb(ev);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind) -> Event {
        Event::new(kind, 1, Some(0), 100)
    }

    #[test]
    fn absorb_routes_every_kind() {
        let s = RunStats::new();
        s.absorb(&ev(EventKind::Spawn { alt: 0 }));
        s.absorb(&ev(EventKind::GuardVerdict {
            pass: true,
            duration_ns: 10,
            alt: Some(0),
            site: Some(0),
        }));
        s.absorb(&ev(EventKind::GuardVerdict {
            pass: false,
            duration_ns: 0,
            alt: None,
            site: None,
        }));
        s.absorb(&ev(EventKind::Rendezvous));
        s.absorb(&ev(EventKind::Commit {
            dirty_pages: 3,
            overhead_ns: 500,
            site: None,
        }));
        s.absorb(&ev(EventKind::EliminateSync {
            overhead_ns: 50,
            site: None,
        }));
        s.absorb(&ev(EventKind::Meta { effective_cores: 1 }));
        s.absorb(&ev(EventKind::EliminateAsync));
        s.absorb(&ev(EventKind::Timeout));
        s.absorb(&ev(EventKind::CowCopy {
            vpn: 1,
            bytes: 4096,
        }));
        s.absorb(&ev(EventKind::ZeroFill { vpn: 2 }));
        s.absorb(&ev(EventKind::FrameFree { frames: 1 }));
        s.absorb(&ev(EventKind::FrameDedup {
            vpn: 3,
            bytes: 4096,
        }));
        s.absorb(&ev(EventKind::PageHashSkip { vpn: 3 }));
        s.absorb(&ev(EventKind::NetCacheEvict {
            node: 1,
            bytes: 8192,
        }));
        s.absorb(&ev(EventKind::Checkpoint {
            pages: 2,
            bytes: 8192,
            duration_ns: 900,
        }));
        s.absorb(&ev(EventKind::MsgAccept));
        s.absorb(&ev(EventKind::MsgExtend));
        s.absorb(&ev(EventKind::MsgIgnore));
        s.absorb(&ev(EventKind::MsgSplit));
        s.absorb(&ev(EventKind::SplitSpawn));
        s.absorb(&ev(EventKind::RemoteFork { node: 1 }));
        s.absorb(&ev(EventKind::RpcSend {
            node: 1,
            bytes: 100,
            latency_ns: 2000,
        }));
        s.absorb(&ev(EventKind::RpcRetry {
            node: 1,
            attempt: 1,
        }));
        s.absorb(&ev(EventKind::RpcTimeout {
            node: 1,
            waited_ns: 99,
        }));
        s.absorb(&ev(EventKind::NetNack { node: 1, code: 5 }));

        assert_eq!(s.kernel.worlds_spawned.get(), 1);
        assert_eq!(s.kernel.guard_pass.get(), 1);
        assert_eq!(s.kernel.guard_fail.get(), 1);
        assert_eq!(s.kernel.commits.get(), 1);
        assert_eq!(s.kernel.eliminations_sync.get(), 1);
        assert_eq!(s.kernel.eliminations_async.get(), 1);
        assert_eq!(s.kernel.timeouts.get(), 1);
        assert_eq!(s.pagestore.faults.get(), 2);
        assert_eq!(s.pagestore.page_copies.get(), 1);
        assert_eq!(s.pagestore.zero_fills.get(), 1);
        assert_eq!(s.pagestore.bytes_copied.get(), 4096);
        assert_eq!(s.pagestore.frames_freed.get(), 1);
        assert_eq!(
            s.frames_resident.get(),
            1,
            "one CoW + one zero-fill - one free; dedupe does not move it"
        );
        assert_eq!(s.dedupe.frames_deduped.get(), 1);
        assert_eq!(s.dedupe.bytes_saved.get(), 4096);
        assert_eq!(s.dedupe.hash_skips.get(), 1);
        assert_eq!(s.dedupe.cache_evictions.get(), 1);
        assert_eq!(s.dedupe.cache_evict_bytes.get(), 8192);
        assert_eq!(s.net.nacks.get(), 1);
        assert_eq!(s.pagestore.checkpoints.get(), 1);
        assert_eq!(s.ipc.snapshot().iter().map(|(_, v)| v).sum::<u64>(), 5);
        assert_eq!(s.ipc.split_spawns.get(), 1);
        assert_eq!(s.remote.rforks.get(), 1);
        assert_eq!(s.remote.rpc_sends.get(), 1);
        assert_eq!(s.remote.rpc_retries.get(), 1);
        assert_eq!(s.remote.rpc_timeouts.get(), 1);
        assert_eq!(s.commit_latency.snapshot().count, 1);
        assert_eq!(s.elim_latency.snapshot().count, 1);
        assert_eq!(s.rpc_latency.snapshot().count, 1);
        assert_eq!(s.guard_pass_rate(), Some(0.5));
    }

    #[test]
    fn replay_equals_live_absorption() {
        let events: Vec<Event> = (0..20)
            .map(|i| {
                ev(match i % 4 {
                    0 => EventKind::Spawn { alt: i },
                    1 => EventKind::Commit {
                        dirty_pages: i,
                        overhead_ns: i * 10,
                        site: None,
                    },
                    2 => EventKind::EliminateSync {
                        overhead_ns: i,
                        site: None,
                    },
                    _ => EventKind::CowCopy {
                        vpn: i,
                        bytes: 4096,
                    },
                })
            })
            .collect();
        let live = replay(&events);
        let replayed = replay(&events);
        assert_eq!(live.render_summary(), replayed.render_summary());
    }

    #[test]
    fn truncated_replay_clamps_frames_resident() {
        // A stream captured from a registry attached mid-run (or truncated
        // at the front) can free frames it never saw allocated; the gauge
        // must clamp at zero rather than wrap to ~u64::MAX.
        let events = vec![
            ev(EventKind::FrameFree { frames: 3 }),
            ev(EventKind::ZeroFill { vpn: 0 }),
            ev(EventKind::CowCopy { vpn: 1, bytes: 64 }),
        ];
        let s = replay(&events);
        assert_eq!(s.frames_resident.get(), 2);
        assert_eq!(s.pagestore.frames_freed.get(), 3, "counter still exact");
    }

    #[test]
    fn summary_mentions_each_subsystem() {
        let s = RunStats::new();
        s.absorb(&ev(EventKind::Spawn { alt: 0 }));
        let text = s.render_summary();
        for needle in [
            "[kernel]",
            "[pagestore]",
            "[ipc]",
            "[remote]",
            "worlds_spawned",
            "frames_resident",
        ] {
            assert!(text.contains(needle), "summary missing {needle}:\n{text}");
        }
        assert!(
            !text.contains("[exec]"),
            "idle executor section must stay out of replayed summaries:\n{text}"
        );
        assert!(
            !text.contains("[dedupe]"),
            "dedupe section must stay out when nothing deduped:\n{text}"
        );
    }

    #[test]
    fn summary_shows_dedupe_section_only_when_index_hit() {
        let s = RunStats::new();
        s.absorb(&ev(EventKind::FrameDedup {
            vpn: 0,
            bytes: 4096,
        }));
        let text = s.render_summary();
        for needle in ["[dedupe]", "frames_deduped", "bytes_saved"] {
            assert!(text.contains(needle), "summary missing {needle}:\n{text}");
        }
    }

    #[test]
    fn summary_shows_exec_section_only_when_pool_was_used() {
        let s = RunStats::new();
        s.exec.tasks_run.incr();
        s.exec.tasks_stolen.incr();
        let text = s.render_summary();
        for needle in ["[exec]", "tasks_run", "tasks_stolen", "queue_depth"] {
            assert!(text.contains(needle), "summary missing {needle}:\n{text}");
        }
    }
}
