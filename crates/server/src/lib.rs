//! # worlds-server — a multi-tenant speculation-as-a-service front door
//!
//! The paper's kernel speculates for *one* program. This crate makes
//! the same substrate — one shared COW [`PageStore`], one
//! work-stealing executor, one reaper — serve many mutually-untrusting
//! tenants over the `worlds-net` framed wire:
//!
//! * A tenant `SessionOpen`s a **named session** with a
//!   [`ResourceLimits`] contract (live worlds, resident frames,
//!   virtual-time budget; 0 = unlimited per axis) and gets a private
//!   root world inside the shared store.
//! * `SessionSpawn` forks one speculative world off that root,
//!   applies the tenant's page writes, and charges its declared cost.
//!   Spawns are released through a **deficit round-robin fair
//!   scheduler** keyed by session — a tenant fanning out thousands of
//!   worlds cannot starve a light one — and a full fair queue turns
//!   into `Nack(overloaded)` backpressure, never an unbounded buffer.
//! * `SessionCommit` is the paper's `alt_wait` rendezvous per tenant:
//!   the chosen world is adopted into the session root, every sibling
//!   is handed to the shared reaper, and a second commit without new
//!   spawns is refused — exactly-one-commit.
//! * `SessionFork` opens a **child session** rooted at a fork of the
//!   parent's root (lineage forking); `SessionClose { adopt: true }`
//!   later folds the child's committed state back into the parent
//!   wholesale, `adopt: false` discards it. Closing any session —
//!   gracefully or by a tenant vanishing mid-speculation — releases
//!   every world and frame it owned.
//!
//! [`FrontDoor`] is the serving shape: a [`worlds_net::NetNode`] with
//! the session handler and a telemetry handler answering
//! `worlds-top --sessions` with one live accounting row per session.
//! [`SessionManager`] is the same layer without the listener, for
//! embedding; [`SessionClient`] is the typed tenant side.
//!
//! ```
//! use worlds_server::{FrontDoor, ResourceLimits, ServerPolicy, SessionClient};
//! use worlds_net::RetryPolicy;
//! use worlds_obs::Registry;
//! use worlds_pagestore::PageStore;
//!
//! let door = FrontDoor::serve(
//!     1,
//!     PageStore::new(4096),
//!     Registry::disabled(),
//!     ServerPolicy::default(),
//! )
//! .unwrap();
//! let mut tenant = SessionClient::open(
//!     door.addr(),
//!     "tenant-a",
//!     ResourceLimits { max_live_worlds: 8, ..ResourceLimits::unlimited() },
//!     RetryPolicy::default(),
//!     Registry::disabled(),
//! )
//! .unwrap();
//! let w = tenant.spawn(1_000, vec![(0, b"alt 0".to_vec())]).unwrap();
//! tenant.commit(w).unwrap();
//! tenant.close(false).unwrap();
//! ```

mod client;
mod door;
mod limits;
mod manager;

pub use client::SessionClient;
pub use door::{install, FrontDoor};
pub use limits::{ResourceLimits, ResourceUsage};
pub use manager::{ServerPolicy, ServerTotals, SessionError, SessionManager};

// Re-exported so the doc example above compiles from this crate alone,
// and so embedders drive the wire vocabulary without naming worlds-net.
pub use worlds_net::{nack, Conn, NetError, Request, RetryPolicy};
pub use worlds_pagestore::PageStore;
