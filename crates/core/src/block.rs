//! The alternative-block builder.

use std::time::Duration;

use crate::alternative::{AltResult, Alternative};
use crate::ctx::WorldCtx;

/// Sibling-elimination mode for the thread executor (§2.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ElimMode {
    /// The block returns only after every losing alternative's thread has
    /// been joined.
    Sync,
    /// Losing threads are detached and clean themselves up after the block
    /// returns — "asynchronous elimination gives better execution-time
    /// performance" (the default, matching the paper's finding).
    #[default]
    Async,
}

/// A block of mutually exclusive alternatives: "the meaning is that one of
/// the alternatives (including failure) are selected non-deterministically;
/// this selection is the result of the block" (§1.1).
pub struct AltBlock<T> {
    pub(crate) alts: Vec<Alternative<T>>,
    pub(crate) timeout: Option<Duration>,
    pub(crate) elim: ElimMode,
    pub(crate) site: Option<worlds_obs::SiteId>,
}

impl<T> Default for AltBlock<T> {
    fn default() -> Self {
        AltBlock {
            alts: Vec::new(),
            timeout: None,
            elim: ElimMode::default(),
            site: None,
        }
    }
}

impl<T> AltBlock<T> {
    /// An empty block (add alternatives before running it).
    pub fn new() -> Self {
        AltBlock::default()
    }

    /// Add an alternative (builder).
    pub fn alt(
        mut self,
        label: impl Into<String>,
        body: impl FnOnce(&mut WorldCtx) -> AltResult<T> + Send + 'static,
    ) -> Self {
        self.alts.push(Alternative::new(label, body));
        self
    }

    /// Add a pre-built alternative, e.g. one with an at-sync guard
    /// (builder).
    pub fn alternative(mut self, alt: Alternative<T>) -> Self {
        self.alts.push(alt);
        self
    }

    /// Set the parent's `alt_wait` TIMEOUT: how long to wait for *any*
    /// alternative before declaring failure. "TIMEOUT's value should be
    /// chosen so that after TIMEOUT time units have elapsed, it is unlikely
    /// that any of the alternatives have succeeded" (§2.2).
    pub fn timeout(mut self, d: Duration) -> Self {
        self.timeout = Some(d);
        self
    }

    /// Set the sibling-elimination mode (builder).
    pub fn elim(mut self, mode: ElimMode) -> Self {
        self.elim = mode;
        self
    }

    /// Label this block as a named call site (builder). The label is
    /// interned once ([`worlds_obs::site_id`]) and stamped on every
    /// guard/commit/elimination event the block emits, which is what
    /// keys the telemetry plane's per-site `Rμ`/`Ro`/`PI` estimates.
    /// Unlabelled blocks emit site-less events, exactly as before.
    pub fn site(mut self, label: &str) -> Self {
        self.site = Some(worlds_obs::site_id(label));
        self
    }

    /// Number of alternatives currently in the block.
    pub fn len(&self) -> usize {
        self.alts.len()
    }

    /// True when no alternatives have been added yet.
    pub fn is_empty(&self) -> bool {
        self.alts.is_empty()
    }
}

impl<T> std::fmt::Debug for AltBlock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AltBlock")
            .field(
                "alts",
                &self.alts.iter().map(|a| &a.label).collect::<Vec<_>>(),
            )
            .field("timeout", &self.timeout)
            .field("elim", &self.elim)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates() {
        let b: AltBlock<u32> = AltBlock::new()
            .alt("one", |_| Ok(1))
            .alt("two", |_| Ok(2))
            .alternative(Alternative::new("three", |_| Ok(3)).guard(|v| *v == 3))
            .timeout(Duration::from_millis(100))
            .elim(ElimMode::Sync);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(b.timeout, Some(Duration::from_millis(100)));
        assert_eq!(b.elim, ElimMode::Sync);
        let dbg = format!("{b:?}");
        assert!(dbg.contains("one") && dbg.contains("three"));
    }

    #[test]
    fn defaults() {
        let b: AltBlock<()> = AltBlock::new();
        assert!(b.is_empty());
        assert_eq!(b.timeout, None);
        assert_eq!(b.elim, ElimMode::Async);
    }
}
