//! The front door over real TCP: wire round trips, nack reasons in
//! client errors, retried/faulted delivery staying at-most-once, and
//! teardown after a tenant's connection dies mid-speculation.

use worlds_net::{
    nack, Conn, FaultKind, FaultProxy, FaultSchedule, NetError, Request, RetryPolicy,
};
use worlds_obs::Registry;
use worlds_pagestore::PageStore;
use worlds_server::{FrontDoor, ResourceLimits, ServerPolicy, SessionClient};
use worlds_telemetry::query_sessions;

fn door() -> FrontDoor {
    FrontDoor::serve(
        1,
        PageStore::new(4096),
        Registry::disabled(),
        ServerPolicy::default(),
    )
    .expect("bind front door")
}

#[test]
fn session_lifecycle_over_tcp() {
    let door = door();
    let mut tenant = SessionClient::open(
        door.addr(),
        "tenant-a",
        ResourceLimits {
            max_live_worlds: 8,
            ..ResourceLimits::unlimited()
        },
        RetryPolicy::default(),
        Registry::disabled(),
    )
    .unwrap();

    let w0 = tenant
        .spawn(1_000, vec![(0, b"alt zero".to_vec())])
        .unwrap();
    let w1 = tenant
        .spawn(1_000, vec![(0, b"alt one ".to_vec())])
        .unwrap();
    assert_ne!(w0, w1);
    tenant.commit(w1).unwrap();

    // Per-session telemetry rows are served off the same socket.
    let rows = query_sessions(door.addr()).unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].name, "tenant-a");
    assert_eq!(rows[0].spawns, 2);
    assert_eq!(rows[0].commits, 1);

    // Lineage over the wire: fork, commit in the child, adopt.
    let child_id = tenant.fork("tenant-a/scout").unwrap();
    let mut conn = Conn::new(0, door.addr(), RetryPolicy::default(), Registry::disabled());
    let w = conn
        .call_ack(&Request::SessionSpawn {
            session: child_id,
            spin_ns: 0,
            writes: vec![(7, b"scouted".to_vec())],
        })
        .unwrap();
    conn.call_ack(&Request::SessionCommit {
        session: child_id,
        world: w,
    })
    .unwrap();
    conn.call_ack(&Request::SessionClose {
        session: child_id,
        adopt: true,
    })
    .unwrap();

    let mgr = door.manager();
    let sess = tenant.id();
    let root = mgr.root_of(sess).unwrap();
    assert_eq!(
        mgr.store().read_vec(root, 7, 0, 7).unwrap(),
        b"scouted",
        "child lineage adopted into parent over the wire"
    );
    tenant.close(false).unwrap();
    assert_eq!(mgr.session_count(), 0);
    mgr.quiesce();
    mgr.store().verify_refcounts().unwrap();
}

#[test]
fn nack_reasons_surface_in_client_errors() {
    let door = door();
    let mut conn = Conn::new(0, door.addr(), RetryPolicy::default(), Registry::disabled());

    // Bad name → bad_request.
    let err = conn
        .call_ack(&Request::SessionOpen {
            name: String::new(),
            max_live_worlds: 0,
            max_resident_frames: 0,
            vt_budget_ns: 0,
        })
        .unwrap_err();
    assert_eq!(err.nack_code(), Some(nack::BAD_REQUEST));
    assert!(err.to_string().contains("bad_request"), "{err}");

    // Unknown session → unknown_session.
    let err = conn
        .call_ack(&Request::SessionSpawn {
            session: 999,
            spin_ns: 0,
            writes: vec![],
        })
        .unwrap_err();
    assert_eq!(err.nack_code(), Some(nack::UNKNOWN_SESSION));
    assert!(err.to_string().contains("unknown_session"), "{err}");

    // Busting a limit → limit_exceeded.
    let session = conn
        .call_ack(&Request::SessionOpen {
            name: "capped".into(),
            max_live_worlds: 1,
            max_resident_frames: 0,
            vt_budget_ns: 0,
        })
        .unwrap();
    conn.call_ack(&Request::SessionSpawn {
        session,
        spin_ns: 0,
        writes: vec![],
    })
    .unwrap();
    let err = conn
        .call_ack(&Request::SessionSpawn {
            session,
            spin_ns: 0,
            writes: vec![],
        })
        .unwrap_err();
    assert_eq!(err.nack_code(), Some(nack::LIMIT_EXCEEDED));
    assert!(err.to_string().contains("limit_exceeded"), "{err}");

    // A node with no session handler refuses session traffic.
    let plain = worlds_net::NetNode::serve(9, PageStore::new(4096), Registry::disabled()).unwrap();
    let mut conn = Conn::new(0, plain.addr(), RetryPolicy::fast(), Registry::disabled());
    let err = conn
        .call_ack(&Request::SessionOpen {
            name: "nobody-home".into(),
            max_live_worlds: 0,
            max_resident_frames: 0,
            vt_budget_ns: 0,
        })
        .unwrap_err();
    assert_eq!(err.nack_code(), Some(nack::BAD_REQUEST));
}

#[test]
fn faulted_retries_stay_at_most_once() {
    // Every second op loses its *reply*: the client times out and
    // retries, the server's corr-id ledger replays the recorded Ack.
    // If spawns were re-applied, live_worlds would overshoot.
    let door = door();
    let proxy = FaultProxy::spawn(
        door.addr(),
        FaultSchedule::every_with(2, FaultKind::DropReply),
        Registry::disabled(),
    )
    .unwrap();
    let mut tenant = SessionClient::open(
        proxy.addr(),
        "flaky",
        ResourceLimits::unlimited(),
        RetryPolicy::fast(),
        Registry::disabled(),
    )
    .unwrap();
    for i in 0..4u64 {
        tenant.spawn(0, vec![(i, vec![i as u8; 16])]).unwrap();
    }
    assert!(proxy.faults_injected() > 0, "schedule actually fired");
    let rows = query_sessions(door.addr()).unwrap();
    assert_eq!(rows[0].live_worlds, 4, "retries never double-applied");
    assert_eq!(rows[0].spawns, 4);
    proxy.shutdown();
}

#[test]
fn connection_reset_mid_speculation_then_close_releases_everything() {
    let door = door();
    let mgr = door.manager().clone();
    let store = mgr.store().clone();
    let world_baseline = store.world_count();
    let frame_baseline = store.live_frames();

    // The tenant speaks through a proxy that starts resetting its
    // connection partway through the spawn storm.
    let proxy = FaultProxy::spawn(
        door.addr(),
        FaultSchedule::every_with(5, FaultKind::Reset),
        Registry::disabled(),
    )
    .unwrap();
    let mut tenant = SessionClient::open(
        proxy.addr(),
        "unlucky",
        ResourceLimits::unlimited(),
        RetryPolicy::fast(),
        Registry::disabled(),
    )
    .unwrap();
    let session = tenant.id();
    let mut outcomes: Vec<Result<u64, NetError>> = Vec::new();
    for i in 0..8u64 {
        outcomes.push(tenant.spawn(1_000, vec![(i, vec![i as u8; 32])]));
    }
    // Resets may or may not have eaten calls (retries absorb most);
    // either way worlds are now live server-side and the tenant's
    // connection story is a mess. No commit ever lands.
    assert!(outcomes.iter().any(|r| r.is_ok()), "some spawns landed");
    assert!(mgr.usage(session).unwrap().live_worlds > 0);
    proxy.shutdown();

    // The tenant is gone; the operator (or an idle sweeper) closes the
    // session from a clean connection. Everything must come back.
    let mut conn = Conn::new(0, door.addr(), RetryPolicy::default(), Registry::disabled());
    conn.call_ack(&Request::SessionClose {
        session,
        adopt: false,
    })
    .unwrap();

    assert_eq!(mgr.session_count(), 0);
    assert_eq!(store.world_count(), world_baseline, "no world residue");
    assert_eq!(store.live_frames(), frame_baseline, "no frame residue");
    store.verify_refcounts().unwrap();
}
