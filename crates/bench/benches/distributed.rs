//! Ablation: the distributed (rfork) case vs shared memory (§3.1's
//! "Memory Copying" penalty discussion), and 1989 vs modern networks.
//!
//! Measures the harness cost of a distributed block (checkpoint bytes
//! really move between stores) at the two network presets; the virtual
//! times inside the reports carry the paper-shaped story (rfork dominates
//! short computations on the 1989 LAN, vanishes in a datacenter).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use worlds_kernel::VirtualTime;
use worlds_remote::{run_distributed_block, Cluster, DistAlt, NetModel, NodeId};

fn run_once(net: NetModel, pages: u64) -> worlds_remote::DistReport {
    let mut cluster = Cluster::new(3, 4096, net);
    let origin = cluster.create_world(NodeId(0));
    for vpn in 0..pages {
        cluster.write(origin, vpn, &[0xCC]).expect("origin live");
    }
    run_distributed_block(
        &mut cluster,
        origin,
        vec![
            DistAlt::new("fast", VirtualTime::from_secs(5.0), |c, w| {
                for vpn in 0..4 {
                    c.write(w, vpn, &[0xDD]).expect("replica live");
                }
            }),
            DistAlt::new("slow", VirtualTime::from_secs(20.0), |c, w| {
                for vpn in 0..4 {
                    c.write(w, vpn, &[0xEE]).expect("replica live");
                }
            }),
        ],
    )
    .expect("block runs")
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("distributed_block");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_millis(900));
    g.warm_up_time(std::time::Duration::from_millis(200));

    for (name, net) in [
        ("lan_1989", NetModel::lan_1989()),
        ("datacenter", NetModel::datacenter()),
    ] {
        for &pages in &[18u64, 160] {
            g.bench_with_input(
                BenchmarkId::new(name, format!("{pages}pages")),
                &pages,
                |b, &pages| {
                    b.iter(|| {
                        let report = run_once(net, pages);
                        assert!(report.succeeded());
                        report.wall
                    });
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
