//! # worlds-pagestore — the single-level store substrate
//!
//! Smith & Maguire's "Multiple Worlds" scheme (ICPP 1989) manages all *sink*
//! (idempotent) state as fixed-size pages behind a single-level store: "we
//! bury the entire memory hierarchy under the page abstraction; files are
//! named sets of pages" (§2.1). Speculative alternatives inherit the parent's
//! page map and share pages **copy-on-write**, so the state preserved per
//! world is proportional to the pages the world actually writes — the paper's
//! observed *write fraction* of 0.2–0.5 is what makes speculation affordable
//! (§2.3, §3.4).
//!
//! This crate is a faithful user-level implementation of that contract:
//!
//! * [`PageStore`] owns a reference-counted **frame table** (physical pages).
//! * Each **world** ([`WorldId`]) owns a **page map** from virtual page
//!   numbers to frames.
//! * [`PageStore::fork_world`] duplicates only the map (page-map
//!   inheritance); the first write to a shared page triggers a COW fault that
//!   copies exactly one page.
//! * [`PageStore::adopt`] atomically replaces a parent world's page map with
//!   a child's — the commit operation `alt_wait` performs when an alternative
//!   wins (§2.2: "the parent process absorbs the state changes made by its
//!   child by atomically replacing its page pointer with that of the child").
//! * [`StoreStats`] exposes the fault/copy counters the paper's §3.4
//!   measurements are phrased in (pages copied per second, write fraction).
//!
//! The store is thread-safe and built to scale with worlds: the world table
//! is split across [`NUM_SHARDS`] independently locked shards (two worlds in
//! different shards never contend), frames carry atomic refcounts, and a COW
//! fault stages its page copy with **no locks held**, committing under one
//! shard's write lock only. See the `store` module docs for the full
//! concurrency model.
//!
//! ```
//! use worlds_pagestore::{PageStore, PAGE_SIZE_DEFAULT};
//!
//! let store = PageStore::new(PAGE_SIZE_DEFAULT);
//! let parent = store.create_world();
//! store.write(parent, 0, 0, b"shared state").unwrap();
//!
//! // Speculative child: shares every page until it writes.
//! let child = store.fork_world(parent).unwrap();
//! assert_eq!(store.read_vec(child, 0, 0, 12).unwrap(), b"shared state");
//! store.write(child, 0, 0, b"child  state").unwrap(); // COW fault: 1 page copied
//!
//! // Parent is unaffected until the child is committed.
//! assert_eq!(store.read_vec(parent, 0, 0, 12).unwrap(), b"shared state");
//! store.adopt(parent, child).unwrap(); // alt_wait rendezvous
//! assert_eq!(store.read_vec(parent, 0, 0, 12).unwrap(), b"child  state");
//! ```

pub mod checkpoint;
mod content;
mod error;
mod file;
mod frame;
mod map;
mod page;
mod stats;
mod store;

pub use checkpoint::{
    checkpoint, checkpoint_content, checkpoint_delta, checkpoint_size, delta_manifest,
    image_version, restore,
};
pub use content::page_hash;
pub use error::{PageStoreError, Result};
pub use file::{FileHandle, FileSystem};
pub use frame::FrameId;
pub use map::PageMap;
pub use page::{PageData, Vpn, PAGE_SIZE_2K, PAGE_SIZE_4K, PAGE_SIZE_DEFAULT};
pub use stats::{ResidentFrames, StoreStats, WorldStats};
pub use store::{PageStore, WorldId, NUM_SHARDS};
