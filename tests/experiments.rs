//! Experiment-shape regression tests: every table/figure reproduction in
//! `worlds-bench` must keep the qualitative properties the paper reports.
//! (EXPERIMENTS.md records the quantitative snapshot.)

use worlds_bench::{fig3_measured, fig4_measured, table1_rows};

#[test]
fn fig3_shape_line_and_break_even() {
    let pts = fig3_measured(0.5, 5.0, 9);
    // Linear in Rμ: constant slope 1/1.5 between consecutive points.
    for w in pts.windows(2) {
        let slope = (w[1].pi - w[0].pi) / (w[1].x - w[0].x);
        assert!((slope - 1.0 / 1.5).abs() < 0.02, "slope {slope}");
    }
    // Break-even at Rμ = 1.5.
    for p in &pts {
        if p.x < 1.45 {
            assert!(p.pi < 1.0);
        }
        if p.x > 1.55 {
            assert!(p.pi > 1.0);
        }
    }
}

#[test]
fn fig4_shape_monotone_hyperbola() {
    let e = std::f64::consts::E;
    let pts = fig4_measured(e, 0.01, 1.0, 9);
    for w in pts.windows(2) {
        assert!(w[1].pi < w[0].pi, "PI must fall with overhead");
    }
    // Endpoints: ~e at tiny overhead, ~e/2 at Ro = 1.
    assert!((pts[0].pi - e / 1.01).abs() / (e / 1.01) < 0.02);
    assert!((pts[8].pi - e / 2.0).abs() / (e / 2.0) < 0.02);
    // Every plotted point wins (PI > 1), as in the paper's figure.
    assert!(pts.iter().all(|p| p.pi > 1.0));
}

#[test]
fn table1_shape_matches_paper() {
    let rows = table1_rows(6);

    // Column sanity.
    for r in &rows {
        assert!(
            r.max_s >= r.avg_s && r.avg_s >= r.min_s,
            "ordering in {r:?}"
        );
        assert!(r.par_s.is_finite(), "parallel run must finish: {r:?}");
    }
    // Speculation wins at 2 processes: par < avg (paper: 4.25 < 4.28).
    assert!(
        rows[1].par_s < rows[1].avg_s,
        "2-proc win lost: {:?}",
        rows[1]
    );
    // Oversubscription degrades par beyond the 2 CPUs (paper: 8.61 at 5).
    assert!(rows[4].par_s > rows[1].par_s);
    // fails appears by 5 processes (paper: 2 fails at procs = 5).
    assert!(
        rows[4].fails >= 1,
        "fails column must be nonzero at 5 procs"
    );
    assert_eq!(rows[0].fails, 0, "the first angle succeeds");
}

#[test]
fn superlinear_claim_holds_in_the_measured_regime() {
    // §3.3's boxed claim, verified on measured (simulated) numbers: at
    // high dispersion and low overhead, PI > N with N alternatives.
    let pts = fig3_measured(0.01, 5.0, 5);
    let best = pts.last().expect("nonempty");
    // 4 alternatives; Rμ = 5 at Ro = 0.01 gives PI ≈ 4.95 > 4.
    assert!(best.pi > 4.0, "superlinear point missing: {best:?}");
}

#[test]
fn domain_analysis_over_simulated_workloads() {
    // §3.3's whole-domain extension, fed by the simulator: two
    // complementary algorithms (each fast on half the inputs) vs two
    // redundant ones.
    use multiple_worlds::worlds_analysis::DomainAnalysis;
    use multiple_worlds::worlds_kernel::{AltSpec, BlockSpec, CostModel, Machine};

    // Per-input isolated times measured through the machine (ms).
    let inputs = 6usize;
    let alt_time = |alt: usize, input: usize| -> f64 {
        match alt {
            0 => {
                if input.is_multiple_of(2) {
                    50.0
                } else {
                    450.0
                }
            }
            _ => {
                if input.is_multiple_of(2) {
                    450.0
                } else {
                    50.0
                }
            }
        }
    };
    let mut times = vec![vec![0.0; inputs]; 2];
    let mut wall_wins = 0usize;
    #[allow(clippy::needless_range_loop)] // `input` indexes both the matrix and the workload
    for input in 0..inputs {
        let block = BlockSpec::new(vec![
            AltSpec::new("even-fast").compute_ms(alt_time(0, input)),
            AltSpec::new("odd-fast").compute_ms(alt_time(1, input)),
        ])
        .shared_pages(0);
        let mut m = Machine::new(CostModel::modern(2));
        let report = m.run_block(&block);
        for (a, alt) in report.alts.iter().enumerate() {
            times[a][input] = alt.isolated_time.as_ms();
        }
        if report.pi().unwrap() > 1.0 {
            wall_wins += 1;
        }
    }
    let overhead_ms = 0.1; // modern machine: forks in microseconds
    let d = DomainAnalysis::new(times, overhead_ms);
    assert_eq!(d.win_fraction(), 1.0, "complementary alts win everywhere");
    assert!(d.domain_pi() > 2.0, "domain PI {}", d.domain_pi());
    assert!(
        d.complementarity() > 0.5,
        "mirrored algorithms are complementary"
    );
    assert_eq!(d.winner_histogram(), vec![3, 3]);
    assert_eq!(wall_wins, inputs, "the simulator agrees input by input");
}
