//! # worlds-recovery — recovery blocks over Multiple Worlds (§4.1)
//!
//! A *recovery block* (Randell's software fault-tolerance construct) is
//! "composed of several alternative methods of computing a result; the
//! goal is to emulate the behavior of 'standby-spares' to tolerate faults
//! in software. Since each alternative is guaranteed the same initial
//! state, they can be executed concurrently."
//!
//! Two execution strategies over the same block:
//!
//! * **Sequential** (classical): run the primary in a speculative world;
//!   if the acceptance test rejects, *discard the world* (state
//!   restoration for free, courtesy of COW) and try the next alternate.
//! * **Parallel** (the paper's contribution): run every alternate
//!   concurrently in sibling worlds; the first to pass the acceptance
//!   test commits. Failures of slow/faulty alternates cost no response
//!   time because a spare is already running — "there is no execution
//!   time penalty paid for recovery" (§5).
//!
//! [`FaultPlan`] provides deterministic and probabilistic fault injection
//! so tests and benches can script which alternates fail.

mod block;
mod fault;

pub use block::{RecoveryBlock, RecoveryOutcome, RecoveryReport};
pub use fault::FaultPlan;
