//! The fate board: system-wide knowledge of which processes completed.
//!
//! §2.4.2 defines `complete(P)`: TRUE when `P` successfully synchronizes
//! with its parent, FALSE when `P` assumed `¬complete(Q)` for some `Q` that
//! completed (i.e. `P` was doomed), and otherwise indeterminate. The
//! [`FateBoard`] records these verdicts so predicate sets can be normalised
//! — true assumptions deleted, doomed worlds flagged for elimination.

use std::collections::HashMap;

use crate::pid::Pid;
use crate::set::{PredicateSet, Resolution};

/// The known fate of a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fate {
    /// Still running or blocked: `complete()` is indeterminate.
    Pending,
    /// Synchronized successfully with its parent.
    Completed,
    /// Aborted, timed out, was eliminated, or was doomed by a falsified
    /// assumption.
    Failed,
}

/// A registry of resolved process fates.
#[derive(Debug, Default, Clone)]
pub struct FateBoard {
    fates: HashMap<Pid, Fate>,
}

impl FateBoard {
    /// An empty board: everything pending.
    pub fn new() -> Self {
        FateBoard::default()
    }

    /// Record a verdict. A process's fate is final: re-recording a
    /// *different* final fate panics (it would mean the synchronization
    /// protocol double-fired), re-recording the same fate is a no-op.
    pub fn record(&mut self, pid: Pid, fate: Fate) {
        assert_ne!(fate, Fate::Pending, "cannot record Pending as a verdict");
        match self.fates.insert(pid, fate) {
            None => {}
            Some(prev) => assert_eq!(
                prev, fate,
                "conflicting fates recorded for {pid}: {prev:?} then {fate:?}"
            ),
        }
    }

    /// The current fate of `pid` (Pending when nothing is recorded).
    pub fn fate(&self, pid: Pid) -> Fate {
        self.fates.get(&pid).copied().unwrap_or(Fate::Pending)
    }

    /// Number of recorded verdicts.
    pub fn resolved_count(&self) -> usize {
        self.fates.len()
    }

    /// Apply every known verdict to `set`, deleting now-true assumptions.
    /// Returns `true` if the world holding the set is **doomed** (some
    /// assumption was falsified).
    pub fn normalize(&self, set: &mut PredicateSet) -> bool {
        let mut doomed = false;
        // Collect first: resolve() mutates the set.
        let pids: Vec<Pid> = set.must_complete().chain(set.cant_complete()).collect();
        for pid in pids {
            match self.fate(pid) {
                Fate::Pending => {}
                Fate::Completed => {
                    if set.resolve(pid, true) == Resolution::Doomed {
                        doomed = true;
                    }
                }
                Fate::Failed => {
                    if set.resolve(pid, false) == Resolution::Doomed {
                        doomed = true;
                    }
                }
            }
        }
        doomed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(n: u64) -> Pid {
        Pid(n)
    }

    #[test]
    fn unknown_is_pending() {
        let b = FateBoard::new();
        assert_eq!(b.fate(p(1)), Fate::Pending);
        assert_eq!(b.resolved_count(), 0);
    }

    #[test]
    fn record_and_query() {
        let mut b = FateBoard::new();
        b.record(p(1), Fate::Completed);
        b.record(p(2), Fate::Failed);
        assert_eq!(b.fate(p(1)), Fate::Completed);
        assert_eq!(b.fate(p(2)), Fate::Failed);
        assert_eq!(b.resolved_count(), 2);
    }

    #[test]
    fn re_recording_same_fate_is_ok() {
        let mut b = FateBoard::new();
        b.record(p(1), Fate::Completed);
        b.record(p(1), Fate::Completed);
        assert_eq!(b.resolved_count(), 1);
    }

    #[test]
    #[should_panic(expected = "conflicting fates")]
    fn conflicting_fate_panics() {
        let mut b = FateBoard::new();
        b.record(p(1), Fate::Completed);
        b.record(p(1), Fate::Failed);
    }

    #[test]
    #[should_panic(expected = "Pending")]
    fn pending_verdict_panics() {
        let mut b = FateBoard::new();
        b.record(p(1), Fate::Pending);
    }

    #[test]
    fn normalize_deletes_true_assumptions() {
        let mut b = FateBoard::new();
        b.record(p(1), Fate::Completed);
        b.record(p(2), Fate::Failed);
        let mut set = PredicateSet::new([p(1), p(3)], [p(2), p(4)]);
        let doomed = b.normalize(&mut set);
        assert!(!doomed);
        // 1 and 2 resolved true; 3 and 4 still pending.
        assert!(set.assumes_completes(p(3)));
        assert!(set.assumes_fails(p(4)));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn normalize_dooms_falsified_worlds() {
        let mut b = FateBoard::new();
        b.record(p(1), Fate::Completed);
        // This world bet against P1 ("sibling rivalry") and lost.
        let mut set = PredicateSet::new([p(9)], [p(1)]);
        assert!(b.normalize(&mut set));
        // The surviving assumption about P9 is untouched.
        assert!(set.assumes_completes(p(9)));
    }

    #[test]
    fn normalize_dooms_on_failed_must() {
        let mut b = FateBoard::new();
        b.record(p(9), Fate::Failed);
        let mut set = PredicateSet::new([p(9)], []);
        assert!(b.normalize(&mut set));
        assert!(set.is_resolved());
    }
}
