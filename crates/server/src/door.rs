//! The TCP front door: a [`NetNode`] with a [`SessionManager`] behind
//! the five `Session*` RPCs and a telemetry handler answering
//! `worlds-top --sessions`.
//!
//! The wire layer stays ignorant of session semantics: worlds-net
//! frames, CRCs, retries and the corr-id reply ledger are exactly the
//! ones page traffic rides; the manager only sees decoded
//! [`Request`]s through the pluggable handler hook. In particular a
//! retried `SessionOpen` (client timed out, server was just slow)
//! replays the recorded Ack with the *same* session id instead of
//! admitting a second tenant — at-most-once comes from the ledger,
//! for free.

use crate::limits::ResourceLimits;
use crate::manager::{ServerPolicy, SessionManager};
use std::net::SocketAddr;
use std::sync::Arc;
use worlds_net::{NetNode, Reply, Request};
use worlds_obs::Registry;
use worlds_pagestore::PageStore;
use worlds_telemetry::{encode_session_table, MSG_SESSIONS};

/// A serving front door: one TCP listener, one session manager, one
/// shared store.
pub struct FrontDoor {
    node: NetNode,
    manager: SessionManager,
}

impl FrontDoor {
    /// Bind a front door for `store` on a kernel-assigned loopback
    /// port, serving as cluster node `node_id`.
    pub fn serve(
        node_id: u64,
        store: PageStore,
        obs: Registry,
        policy: ServerPolicy,
    ) -> std::io::Result<FrontDoor> {
        let node = NetNode::serve(node_id, store.clone(), obs.clone())?;
        let manager = SessionManager::with_defaults(store, obs, policy);
        install(&node, &manager);
        Ok(FrontDoor { node, manager })
    }

    /// Where tenants connect.
    pub fn addr(&self) -> SocketAddr {
        self.node.addr()
    }

    /// The session layer, for in-process inspection and embedding.
    pub fn manager(&self) -> &SessionManager {
        &self.manager
    }

    /// The underlying node (e.g. to compose more handlers).
    pub fn node(&self) -> &NetNode {
        &self.node
    }

    /// Stop serving (dropping the door also stops it).
    pub fn shutdown(&self) {
        self.node.shutdown();
    }
}

/// Put `manager` behind `node`'s session RPCs and session-table
/// telemetry queries. Exposed separately so an existing node (one
/// already serving pages) can become a front door too.
pub fn install(node: &NetNode, manager: &SessionManager) {
    let mgr = manager.clone();
    node.set_session_handler(Arc::new(move |req| {
        let out = match req {
            Request::SessionOpen {
                name,
                max_live_worlds,
                max_resident_frames,
                vt_budget_ns,
            } => mgr.open(
                name,
                ResourceLimits {
                    max_live_worlds: *max_live_worlds,
                    max_resident_frames: *max_resident_frames,
                    vt_budget_ns: *vt_budget_ns,
                },
            ),
            Request::SessionSpawn {
                session,
                spin_ns,
                writes,
            } => mgr.spawn(*session, *spin_ns, writes),
            Request::SessionCommit { session, world } => {
                mgr.commit(*session, *world).map(|()| *world)
            }
            Request::SessionFork { session, name } => mgr.fork(*session, name),
            Request::SessionClose { session, adopt } => {
                mgr.close(*session, *adopt).map(|()| *session)
            }
            other => Err(crate::SessionError::BadRequest(format!(
                "kind {} is not a session request",
                other.kind()
            ))),
        };
        match out {
            Ok(subject) => Reply::Ack { world: subject },
            Err(e) => Reply::Nack {
                code: e.nack_code(),
                detail: e.to_string(),
            },
        }
    }));
    let mgr = manager.clone();
    node.set_telemetry_handler(Arc::new(move |bytes| match bytes.first() {
        Some(&MSG_SESSIONS) if bytes.len() == 1 => Ok(Some(encode_session_table(&mgr.reports()))),
        _ => Err("front door answers session-table queries only".into()),
    }));
}
