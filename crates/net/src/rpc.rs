//! The RPC vocabulary: what cluster nodes say to each other.
//!
//! One request kind per remote-fork lifecycle step (§3.4's rfork /
//! commit-back protocol) plus the predicated message send of §2.4.1:
//!
//! | kind | request          | carries                                   |
//! |------|------------------|-------------------------------------------|
//! | 1    | `Ping`           | nothing — liveness + RTT probe            |
//! | 2    | `Rfork`          | a checkpoint image (v1 full or v2 delta)  |
//! | 3    | `CommitBack`     | the winner's dirty pages, applied to base |
//! | 4    | `Discard`        | a losing world to drop                    |
//! | 5    | `PredicatedSend` | an `ipc::Message` incl. its predicate set |
//! | 6    | `Telemetry`      | opaque telemetry bytes (rollup delta/query)|
//! | 7    | `HashProbe`      | page-content hashes to test for presence  |
//! | 8    | `SessionOpen`    | tenant name + resource limits             |
//! | 9    | `SessionSpawn`   | speculative world: page writes + vt cost  |
//! | 10   | `SessionCommit`  | the session's chosen winner world         |
//! | 11   | `SessionFork`    | lineage-fork a child session              |
//! | 12   | `SessionClose`   | teardown; child close may adopt-to-parent |
//!
//! Replies are `Ack { world }` (0x80), `Nack { code, detail }` (0x81),
//! `Telemetry { payload }` (0x82) answering a telemetry query, or
//! `Present { present }` (0x83) answering a hash probe with one
//! presence bit per probed hash.
//!
//! Serialisation is hand-rolled little-endian — the same std-only
//! discipline as the checkpoint image and the obs JSONL codec. Every
//! variable-length field is length-prefixed, and decoders bound-check
//! before every slice so a hostile payload yields `NetError::Protocol`,
//! never a panic.

use crate::error::{NetError, Result};
use worlds_ipc::{Message, MsgId};
use worlds_obs::TraceCtx;
use worlds_predicate::{Pid, PredicateSet};

/// Frame-kind bytes for requests.
pub mod kind {
    pub const PING: u8 = 1;
    pub const RFORK: u8 = 2;
    pub const COMMIT_BACK: u8 = 3;
    pub const DISCARD: u8 = 4;
    pub const PREDICATED_SEND: u8 = 5;
    pub const TELEMETRY: u8 = 6;
    pub const HASH_PROBE: u8 = 7;
    pub const SESSION_OPEN: u8 = 8;
    pub const SESSION_SPAWN: u8 = 9;
    pub const SESSION_COMMIT: u8 = 10;
    pub const SESSION_FORK: u8 = 11;
    pub const SESSION_CLOSE: u8 = 12;
    pub const ACK: u8 = 0x80;
    pub const NACK: u8 = 0x81;
    pub const TELEMETRY_REPLY: u8 = 0x82;
    pub const PRESENT: u8 = 0x83;
}

/// Nack codes — coarse, machine-checkable failure classes.
pub mod nack {
    /// Checkpoint image rejected (bad magic/version/size, missing base).
    pub const BAD_IMAGE: u32 = 1;
    /// Target world does not exist on this node.
    pub const NO_SUCH_WORLD: u32 = 2;
    /// Request payload failed to parse.
    pub const BAD_REQUEST: u32 = 3;
    /// The store refused the operation (I/O level failure).
    pub const STORE: u32 = 4;
    /// The server is saturated (bounded admission queue full, or the
    /// reaper/recycler has fallen behind) — back off and retry later.
    pub const OVERLOADED: u32 = 5;
    /// The session's own `ResourceLimits` would be exceeded; retrying
    /// without releasing resources is pointless.
    pub const LIMIT_EXCEEDED: u32 = 6;
    /// The named session does not exist (never opened, or already
    /// closed/adopted by its parent).
    pub const UNKNOWN_SESSION: u32 = 7;

    /// Stable human name for a nack code; client errors and the
    /// `worlds-report --net` per-reason table both render through this
    /// so a code never surfaces as a bare number.
    pub fn reason(code: u32) -> &'static str {
        match code {
            BAD_IMAGE => "bad_image",
            NO_SUCH_WORLD => "no_such_world",
            BAD_REQUEST => "bad_request",
            STORE => "store",
            OVERLOADED => "overloaded",
            LIMIT_EXCEEDED => "limit_exceeded",
            UNKNOWN_SESSION => "unknown_session",
            _ => "unknown",
        }
    }
}

/// A client-to-server request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe; the reply's RTT feeds the `net_rtt` histogram.
    Ping,
    /// Restore this checkpoint image as a new world on the receiving
    /// node — the state-shipping half of `rfork()`.
    Rfork { image: Vec<u8> },
    /// Apply the winner's dirty pages to world `base` on the receiving
    /// node — the commit-back that makes speculative remote work real.
    /// Retransmits reuse the correlation id, and the server's reply
    /// ledger guarantees the pages are applied at most once.
    CommitBack {
        base: u64,
        pages: Vec<(u64, Vec<u8>)>,
    },
    /// Drop a losing speculative world on the receiving node.
    Discard { world: u64 },
    /// Ship a predicated IPC message (§2.4.1) to the receiving node's
    /// inbox, sending predicate and all.
    PredicatedSend { msg: Message },
    /// Telemetry-plane traffic (rollup deltas pushed node→collector,
    /// table queries from `worlds-top`). The payload is opaque at this
    /// layer — `worlds-telemetry` owns the schema — so the wire protocol
    /// stays ignorant of metric shapes, exactly as it is of checkpoint
    /// internals. Servers without a telemetry handler Nack it.
    Telemetry { payload: Vec<u8> },
    /// Ask which page-content hashes the receiving node's store can
    /// satisfy from its content index — the manifest round-trip that
    /// lets a v3 content-delta checkpoint ship refs instead of bytes.
    /// Presence is a *hint*: the receiver re-verifies by re-hashing at
    /// apply time, so a stale answer costs a fallback, never corruption.
    HashProbe { hashes: Vec<u64> },
    /// Admit a named tenant session with its resource limits (0 means
    /// "unlimited" for each axis). Ack carries the new session id.
    /// Servers without a session handler Nack with `BAD_REQUEST`.
    SessionOpen {
        name: String,
        max_live_worlds: u64,
        max_resident_frames: u64,
        vt_budget_ns: u64,
    },
    /// Fork a speculative world under the session root, apply `writes`
    /// (one page image per vpn, written at offset 0) and charge
    /// `spin_ns` of exploration work against the session's vt budget.
    /// Ack carries the spawned world id.
    SessionSpawn {
        session: u64,
        spin_ns: u64,
        writes: Vec<(u64, Vec<u8>)>,
    },
    /// Commit one of the session's speculative worlds into the session
    /// root and discard its siblings — the exactly-one-commit step.
    SessionCommit { session: u64, world: u64 },
    /// Lineage-fork a child session whose root is a fork of the
    /// parent's root; the parent later adopts or discards it wholesale
    /// via `SessionClose`. Ack carries the child session id.
    SessionFork { session: u64, name: String },
    /// Tear a session down, releasing every world and frame it owns.
    /// For a child session, `adopt` commits its root back into the
    /// parent's root first (adopt-wholesale); otherwise everything is
    /// discarded.
    SessionClose { session: u64, adopt: bool },
}

/// A server-to-client reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// Success. `world` is the operation's subject: the restored world
    /// for `Rfork`, the base for `CommitBack`, the dropped world for
    /// `Discard`, the message id for `PredicatedSend`, 0 for `Ping`.
    Ack { world: u64 },
    /// Failure the server diagnosed; see [`nack`] for codes.
    Nack { code: u32, detail: String },
    /// Answer to a [`Request::Telemetry`] query — an opaque payload the
    /// telemetry layer decodes (e.g. the collector's cluster table).
    Telemetry { payload: Vec<u8> },
    /// Answer to a [`Request::HashProbe`]: `present[i]` is whether the
    /// node holds a live frame whose contents hash to `hashes[i]`.
    /// Encoded as a count plus a packed bitmap — 17 probed pages cost
    /// 7 payload bytes, not 17.
    Present { present: Vec<bool> },
}

impl Request {
    /// The frame-kind byte announcing this request.
    pub fn kind(&self) -> u8 {
        match self {
            Request::Ping => kind::PING,
            Request::Rfork { .. } => kind::RFORK,
            Request::CommitBack { .. } => kind::COMMIT_BACK,
            Request::Discard { .. } => kind::DISCARD,
            Request::PredicatedSend { .. } => kind::PREDICATED_SEND,
            Request::Telemetry { .. } => kind::TELEMETRY,
            Request::HashProbe { .. } => kind::HASH_PROBE,
            Request::SessionOpen { .. } => kind::SESSION_OPEN,
            Request::SessionSpawn { .. } => kind::SESSION_SPAWN,
            Request::SessionCommit { .. } => kind::SESSION_COMMIT,
            Request::SessionFork { .. } => kind::SESSION_FORK,
            Request::SessionClose { .. } => kind::SESSION_CLOSE,
        }
    }

    /// Serialise the payload (the frame codec adds header and CRC).
    pub fn encode_payload(&self) -> Vec<u8> {
        match self {
            Request::Ping => Vec::new(),
            Request::Rfork { image } => image.clone(),
            Request::CommitBack { base, pages } => {
                let per_page: usize = pages.iter().map(|(_, p)| 12 + p.len()).sum();
                let mut out = Vec::with_capacity(12 + per_page);
                out.extend_from_slice(&base.to_le_bytes());
                out.extend_from_slice(&(pages.len() as u32).to_le_bytes());
                for (vpn, bytes) in pages {
                    out.extend_from_slice(&vpn.to_le_bytes());
                    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                    out.extend_from_slice(bytes);
                }
                out
            }
            Request::Discard { world } => world.to_le_bytes().to_vec(),
            Request::PredicatedSend { msg } => encode_message(msg),
            Request::Telemetry { payload } => payload.clone(),
            Request::HashProbe { hashes } => {
                let mut out = Vec::with_capacity(4 + 8 * hashes.len());
                out.extend_from_slice(&(hashes.len() as u32).to_le_bytes());
                for h in hashes {
                    out.extend_from_slice(&h.to_le_bytes());
                }
                out
            }
            Request::SessionOpen {
                name,
                max_live_worlds,
                max_resident_frames,
                vt_budget_ns,
            } => {
                let mut out = Vec::with_capacity(28 + name.len());
                out.extend_from_slice(&(name.len() as u32).to_le_bytes());
                out.extend_from_slice(name.as_bytes());
                out.extend_from_slice(&max_live_worlds.to_le_bytes());
                out.extend_from_slice(&max_resident_frames.to_le_bytes());
                out.extend_from_slice(&vt_budget_ns.to_le_bytes());
                out
            }
            Request::SessionSpawn {
                session,
                spin_ns,
                writes,
            } => {
                let per_write: usize = writes.iter().map(|(_, p)| 12 + p.len()).sum();
                let mut out = Vec::with_capacity(20 + per_write);
                out.extend_from_slice(&session.to_le_bytes());
                out.extend_from_slice(&spin_ns.to_le_bytes());
                out.extend_from_slice(&(writes.len() as u32).to_le_bytes());
                for (vpn, bytes) in writes {
                    out.extend_from_slice(&vpn.to_le_bytes());
                    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                    out.extend_from_slice(bytes);
                }
                out
            }
            Request::SessionCommit { session, world } => {
                let mut out = Vec::with_capacity(16);
                out.extend_from_slice(&session.to_le_bytes());
                out.extend_from_slice(&world.to_le_bytes());
                out
            }
            Request::SessionFork { session, name } => {
                let mut out = Vec::with_capacity(12 + name.len());
                out.extend_from_slice(&session.to_le_bytes());
                out.extend_from_slice(&(name.len() as u32).to_le_bytes());
                out.extend_from_slice(name.as_bytes());
                out
            }
            Request::SessionClose { session, adopt } => {
                let mut out = Vec::with_capacity(9);
                out.extend_from_slice(&session.to_le_bytes());
                out.push(u8::from(*adopt));
                out
            }
        }
    }

    /// Parse a request from its frame-kind byte and payload.
    pub fn decode(kind_byte: u8, payload: &[u8]) -> Result<Request> {
        let mut r = Reader::new(payload);
        let req = match kind_byte {
            kind::PING => Request::Ping,
            kind::RFORK => Request::Rfork {
                image: payload.to_vec(),
            },
            kind::COMMIT_BACK => {
                let base = r.u64("base")?;
                let count = r.u32("page count")? as usize;
                let mut pages = Vec::with_capacity(count.min(4096));
                for _ in 0..count {
                    let vpn = r.u64("vpn")?;
                    let len = r.u32("page len")? as usize;
                    pages.push((vpn, r.bytes(len, "page bytes")?.to_vec()));
                }
                r.done("commit_back")?;
                Request::CommitBack { base, pages }
            }
            kind::DISCARD => {
                let world = r.u64("world")?;
                r.done("discard")?;
                Request::Discard { world }
            }
            kind::PREDICATED_SEND => Request::PredicatedSend {
                msg: decode_message(payload)?,
            },
            kind::TELEMETRY => Request::Telemetry {
                payload: payload.to_vec(),
            },
            kind::HASH_PROBE => {
                let count = r.u32("hash count")? as usize;
                let mut hashes = Vec::with_capacity(count.min(4096));
                for _ in 0..count {
                    hashes.push(r.u64("hash")?);
                }
                r.done("hash_probe")?;
                Request::HashProbe { hashes }
            }
            kind::SESSION_OPEN => {
                let nlen = r.u32("name len")? as usize;
                let name = String::from_utf8_lossy(r.bytes(nlen, "name")?).into_owned();
                let max_live_worlds = r.u64("max live worlds")?;
                let max_resident_frames = r.u64("max resident frames")?;
                let vt_budget_ns = r.u64("vt budget")?;
                r.done("session_open")?;
                Request::SessionOpen {
                    name,
                    max_live_worlds,
                    max_resident_frames,
                    vt_budget_ns,
                }
            }
            kind::SESSION_SPAWN => {
                let session = r.u64("session")?;
                let spin_ns = r.u64("spin")?;
                let count = r.u32("write count")? as usize;
                let mut writes = Vec::with_capacity(count.min(4096));
                for _ in 0..count {
                    let vpn = r.u64("vpn")?;
                    let len = r.u32("write len")? as usize;
                    writes.push((vpn, r.bytes(len, "write bytes")?.to_vec()));
                }
                r.done("session_spawn")?;
                Request::SessionSpawn {
                    session,
                    spin_ns,
                    writes,
                }
            }
            kind::SESSION_COMMIT => {
                let session = r.u64("session")?;
                let world = r.u64("world")?;
                r.done("session_commit")?;
                Request::SessionCommit { session, world }
            }
            kind::SESSION_FORK => {
                let session = r.u64("session")?;
                let nlen = r.u32("name len")? as usize;
                let name = String::from_utf8_lossy(r.bytes(nlen, "name")?).into_owned();
                r.done("session_fork")?;
                Request::SessionFork { session, name }
            }
            kind::SESSION_CLOSE => {
                let session = r.u64("session")?;
                let adopt = match r.u8("adopt flag")? {
                    0 => false,
                    1 => true,
                    other => {
                        return Err(NetError::Protocol(format!("bad adopt flag {other}")));
                    }
                };
                r.done("session_close")?;
                Request::SessionClose { session, adopt }
            }
            other => return Err(NetError::Protocol(format!("unknown request kind {other}"))),
        };
        Ok(req)
    }
}

impl Reply {
    /// The frame-kind byte announcing this reply.
    pub fn kind(&self) -> u8 {
        match self {
            Reply::Ack { .. } => kind::ACK,
            Reply::Nack { .. } => kind::NACK,
            Reply::Telemetry { .. } => kind::TELEMETRY_REPLY,
            Reply::Present { .. } => kind::PRESENT,
        }
    }

    /// Serialise the payload (the frame codec adds header and CRC).
    pub fn encode_payload(&self) -> Vec<u8> {
        match self {
            Reply::Ack { world } => world.to_le_bytes().to_vec(),
            Reply::Nack { code, detail } => {
                let mut out = Vec::with_capacity(8 + detail.len());
                out.extend_from_slice(&code.to_le_bytes());
                out.extend_from_slice(&(detail.len() as u32).to_le_bytes());
                out.extend_from_slice(detail.as_bytes());
                out
            }
            Reply::Telemetry { payload } => payload.clone(),
            Reply::Present { present } => {
                let mut out = Vec::with_capacity(4 + present.len().div_ceil(8));
                out.extend_from_slice(&(present.len() as u32).to_le_bytes());
                let mut byte = 0u8;
                for (i, &p) in present.iter().enumerate() {
                    if p {
                        byte |= 1 << (i % 8);
                    }
                    if i % 8 == 7 {
                        out.push(byte);
                        byte = 0;
                    }
                }
                if present.len() % 8 != 0 {
                    out.push(byte);
                }
                out
            }
        }
    }

    /// Parse a reply from its frame-kind byte and payload.
    pub fn decode(kind_byte: u8, payload: &[u8]) -> Result<Reply> {
        let mut r = Reader::new(payload);
        let reply = match kind_byte {
            kind::ACK => {
                let world = r.u64("world")?;
                r.done("ack")?;
                Reply::Ack { world }
            }
            kind::NACK => {
                let code = r.u32("code")?;
                let len = r.u32("detail len")? as usize;
                let detail = String::from_utf8_lossy(r.bytes(len, "detail")?).into_owned();
                r.done("nack")?;
                Reply::Nack { code, detail }
            }
            kind::TELEMETRY_REPLY => Reply::Telemetry {
                payload: payload.to_vec(),
            },
            kind::PRESENT => {
                let count = r.u32("present count")? as usize;
                let bitmap = r.bytes(count.div_ceil(8), "present bitmap")?;
                let present = (0..count)
                    .map(|i| bitmap[i / 8] >> (i % 8) & 1 == 1)
                    .collect();
                r.done("present")?;
                Reply::Present { present }
            }
            other => return Err(NetError::Protocol(format!("unknown reply kind {other}"))),
        };
        Ok(reply)
    }
}

/// Serialise an [`worlds_ipc::Message`] — id, endpoints, the full
/// predicate set (must-complete and can't-complete pid lists), payload,
/// and the optional trace context.
pub fn encode_message(msg: &Message) -> Vec<u8> {
    let must: Vec<Pid> = msg.predicate.must_complete().collect();
    let cant: Vec<Pid> = msg.predicate.cant_complete().collect();
    let mut out = Vec::with_capacity(45 + 8 * (must.len() + cant.len()) + msg.payload.len());
    out.extend_from_slice(&msg.id.0.to_le_bytes());
    out.extend_from_slice(&msg.src.raw().to_le_bytes());
    out.extend_from_slice(&msg.dst.raw().to_le_bytes());
    out.extend_from_slice(&(must.len() as u32).to_le_bytes());
    for pid in &must {
        out.extend_from_slice(&pid.raw().to_le_bytes());
    }
    out.extend_from_slice(&(cant.len() as u32).to_le_bytes());
    for pid in &cant {
        out.extend_from_slice(&pid.raw().to_le_bytes());
    }
    out.extend_from_slice(&(msg.payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&msg.payload);
    match &msg.trace {
        None => out.push(0),
        Some(t) => {
            out.push(1);
            out.extend_from_slice(&t.root.to_le_bytes());
            out.extend_from_slice(&t.world.to_le_bytes());
        }
    }
    out
}

/// Parse a message serialised by [`encode_message`].
pub fn decode_message(payload: &[u8]) -> Result<Message> {
    let mut r = Reader::new(payload);
    let id = r.u64("msg id")?;
    let src = Pid(r.u64("src")?);
    let dst = Pid(r.u64("dst")?);
    let n_must = r.u32("must count")? as usize;
    let mut must = Vec::with_capacity(n_must.min(4096));
    for _ in 0..n_must {
        must.push(Pid(r.u64("must pid")?));
    }
    let n_cant = r.u32("cant count")? as usize;
    let mut cant = Vec::with_capacity(n_cant.min(4096));
    for _ in 0..n_cant {
        cant.push(Pid(r.u64("cant pid")?));
    }
    let plen = r.u32("payload len")? as usize;
    let body = r.bytes(plen, "payload")?.to_vec();
    let trace = match r.u8("trace flag")? {
        0 => None,
        1 => Some(TraceCtx {
            root: r.u64("trace root")?,
            world: r.u64("trace world")?,
        }),
        other => {
            return Err(NetError::Protocol(format!("bad trace flag {other}")));
        }
    };
    r.done("message")?;
    let mut msg = Message::new(src, dst, PredicateSet::new(must, cant), body);
    msg.id = MsgId(id);
    msg.trace = trace;
    Ok(msg)
}

/// Bounds-checked little-endian cursor: every decoder in this module
/// reads through it so malformed payloads surface as `Protocol` errors.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn bytes(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| NetError::Protocol(format!("short payload reading {what}")))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self, what: &str) -> Result<u8> {
        Ok(self.bytes(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.bytes(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self, what: &str) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.bytes(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    fn done(&self, what: &str) -> Result<()> {
        if self.pos != self.buf.len() {
            return Err(NetError::Protocol(format!(
                "{} trailing bytes after {what}",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let payload = req.encode_payload();
        let back = Request::decode(req.kind(), &payload).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn all_requests_round_trip() {
        round_trip_request(Request::Ping);
        round_trip_request(Request::Rfork {
            image: vec![1, 2, 3, 4],
        });
        round_trip_request(Request::CommitBack {
            base: 42,
            pages: vec![(0, vec![9; 32]), (17, vec![0; 32]), (3, Vec::new())],
        });
        round_trip_request(Request::CommitBack {
            base: 0,
            pages: Vec::new(),
        });
        round_trip_request(Request::Discard { world: u64::MAX });
        let msg = Message::new(
            Pid(3),
            Pid(9),
            PredicateSet::new([Pid(1), Pid(2)], [Pid(7)]),
            b"speculative hello".to_vec(),
        );
        round_trip_request(Request::PredicatedSend { msg });
        round_trip_request(Request::Telemetry {
            payload: vec![0, 1, 2, 0xFF],
        });
        round_trip_request(Request::Telemetry {
            payload: Vec::new(),
        });
        round_trip_request(Request::HashProbe {
            hashes: vec![0xDEAD_BEEF, u64::MAX, 1],
        });
        round_trip_request(Request::HashProbe { hashes: Vec::new() });
        round_trip_request(Request::SessionOpen {
            name: "tenant-a".into(),
            max_live_worlds: 8,
            max_resident_frames: 1024,
            vt_budget_ns: u64::MAX,
        });
        round_trip_request(Request::SessionOpen {
            name: String::new(),
            max_live_worlds: 0,
            max_resident_frames: 0,
            vt_budget_ns: 0,
        });
        round_trip_request(Request::SessionSpawn {
            session: 7,
            spin_ns: 1_000,
            writes: vec![(0, vec![3; 64]), (9, Vec::new())],
        });
        round_trip_request(Request::SessionSpawn {
            session: 0,
            spin_ns: 0,
            writes: Vec::new(),
        });
        round_trip_request(Request::SessionCommit {
            session: 7,
            world: 42,
        });
        round_trip_request(Request::SessionFork {
            session: 7,
            name: "child".into(),
        });
        round_trip_request(Request::SessionClose {
            session: 7,
            adopt: true,
        });
        round_trip_request(Request::SessionClose {
            session: 7,
            adopt: false,
        });
    }

    #[test]
    fn session_payloads_reject_truncation_and_garbage() {
        let open = Request::SessionOpen {
            name: "t".into(),
            max_live_worlds: 1,
            max_resident_frames: 2,
            vt_budget_ns: 3,
        }
        .encode_payload();
        for n in 0..open.len() {
            assert!(Request::decode(kind::SESSION_OPEN, &open[..n]).is_err());
        }
        let spawn = Request::SessionSpawn {
            session: 1,
            spin_ns: 2,
            writes: vec![(3, vec![4; 8])],
        }
        .encode_payload();
        for n in 0..spawn.len() {
            assert!(Request::decode(kind::SESSION_SPAWN, &spawn[..n]).is_err());
        }
        // A bad adopt flag is a protocol error, not a silent bool.
        let mut close = Request::SessionClose {
            session: 1,
            adopt: false,
        }
        .encode_payload();
        *close.last_mut().unwrap() = 9;
        assert!(Request::decode(kind::SESSION_CLOSE, &close).is_err());
        // Trailing bytes are rejected on fixed-size session frames.
        let mut commit = Request::SessionCommit {
            session: 1,
            world: 2,
        }
        .encode_payload();
        commit.push(0);
        assert!(Request::decode(kind::SESSION_COMMIT, &commit).is_err());
    }

    #[test]
    fn nack_reasons_have_stable_names() {
        assert_eq!(nack::reason(nack::OVERLOADED), "overloaded");
        assert_eq!(nack::reason(nack::LIMIT_EXCEEDED), "limit_exceeded");
        assert_eq!(nack::reason(nack::UNKNOWN_SESSION), "unknown_session");
        assert_eq!(nack::reason(nack::BAD_REQUEST), "bad_request");
        assert_eq!(nack::reason(999), "unknown");
    }

    #[test]
    fn message_with_id_and_trace_round_trips() {
        let mut msg = Message::new(Pid(1), Pid(2), PredicateSet::empty(), Vec::new());
        msg.id = MsgId(77);
        msg.trace = Some(TraceCtx { root: 5, world: 6 });
        let back = decode_message(&encode_message(&msg)).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn replies_round_trip() {
        for reply in [
            Reply::Ack { world: 123 },
            Reply::Nack {
                code: nack::BAD_IMAGE,
                detail: "no such base".into(),
            },
            Reply::Nack {
                code: 0,
                detail: String::new(),
            },
            Reply::Telemetry {
                payload: vec![9, 8, 7],
            },
            Reply::Present {
                present: Vec::new(),
            },
            Reply::Present {
                present: vec![true, false, true],
            },
            // 17 bits exercises the bitmap spill into a third byte.
            Reply::Present {
                present: (0..17).map(|i| i % 3 == 0).collect(),
            },
        ] {
            let payload = reply.encode_payload();
            assert_eq!(Reply::decode(reply.kind(), &payload).unwrap(), reply);
        }
    }

    #[test]
    fn present_bitmap_is_packed() {
        let reply = Reply::Present {
            present: vec![true; 17],
        };
        assert_eq!(reply.encode_payload().len(), 4 + 3, "17 bits in 3 bytes");
    }

    #[test]
    fn malformed_payloads_error_not_panic() {
        // Truncated at every prefix of a realistic CommitBack.
        let req = Request::CommitBack {
            base: 1,
            pages: vec![(4, vec![7; 16])],
        };
        let payload = req.encode_payload();
        for n in 0..payload.len() {
            assert!(Request::decode(kind::COMMIT_BACK, &payload[..n]).is_err());
        }
        // A count field promising more pages than the payload holds.
        let mut lying = payload.clone();
        lying[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(Request::decode(kind::COMMIT_BACK, &lying).is_err());
        // Unknown kinds.
        assert!(Request::decode(0xEE, &[]).is_err());
        assert!(Reply::decode(0xEE, &[]).is_err());
        // Trailing garbage is rejected, not ignored.
        let mut long = Request::Discard { world: 3 }.encode_payload();
        long.push(0);
        assert!(Request::decode(kind::DISCARD, &long).is_err());
        // Truncated hash probes and presence bitmaps.
        let probe = Request::HashProbe {
            hashes: vec![7, 8, 9],
        }
        .encode_payload();
        for n in 0..probe.len() {
            assert!(Request::decode(kind::HASH_PROBE, &probe[..n]).is_err());
        }
        let present = Reply::Present {
            present: vec![true; 9],
        }
        .encode_payload();
        for n in 0..present.len() {
            assert!(Reply::decode(kind::PRESENT, &present[..n]).is_err());
        }
        let mut long = present.clone();
        long.push(0);
        assert!(Reply::decode(kind::PRESENT, &long).is_err());
    }
}
