//! # worlds-rootfinder — the Table I workload
//!
//! §4.3 of the paper evaluates Multiple Worlds on a numerical application:
//! the complex Jenkins–Traub polynomial zero finder (CACM Algorithm 419,
//! "CPOLY"). The algorithm's stage-2 *fixed shift* starts from a point
//! `s = β·e^{iθ}` on the circle of radius β (a Cauchy lower bound on the
//! smallest zero's modulus) whose **angle θ is an ostensibly random
//! choice**: "In practice, several angles are tried, based on numerical
//! experience. A parallel version of this algorithm was created by making
//! several choices for the starting value and executing them in parallel."
//!
//! That is exactly the paper's Table I: 1–6 processes, each running the
//! full rootfinder from a different starting angle, first success wins.
//!
//! This crate implements, from scratch:
//!
//! * [`Complex`] — complex arithmetic (no external num crate);
//! * [`Poly`] — complex polynomials: Horner evaluation, derivative,
//!   synthetic division/deflation, Cauchy bound, construction from roots;
//! * [`jenkins_traub`] — the three-stage zero finder with the starting
//!   angle as an explicit degree of freedom, plus whole-polynomial drivers
//!   ([`find_all_roots`] strict single-angle, [`find_all_roots_robust`]
//!   with the classical +94° retry policy);
//! * [`parallel`] — the Multiple-Worlds parallel version racing several
//!   angles through the `worlds` speculation API.

mod complex;
mod fixtures;
mod jt;
pub mod parallel;
mod poly;

pub use complex::Complex;
pub use fixtures::{legendre_like, random_roots_poly, wilkinson_like, TEST_ANGLES};
pub use jt::{
    find_all_roots, find_all_roots_robust, jenkins_traub, FindError, JtConfig, RootReport,
};
pub use poly::Poly;
