//! `bench-baseline` — record the pagestore performance trajectory.
//!
//! Runs the contention workload (4 worlds, disjoint pages, real threads)
//! against the sharded store and the preserved global-lock baseline, plus
//! single-world fork and CoW-fault latencies, and writes the results as
//! `BENCH_pagestore.json` (or the path given as the first argument).
//!
//! ```text
//! cargo run --release -p worlds-bench --bin bench-baseline [out.json]
//! ```

use std::time::Instant;

use worlds_bench::baseline::GlobalLockStore;
use worlds_bench::contention::{best_throughput, ContentionConfig, CowStore};
use worlds_bench::dedupe::{rewrite_ns, sibling_dedupe_ratio, unique_write_ns, DedupeConfig};
use worlds_pagestore::PageStore;

/// Median per-iteration nanoseconds of `op`, sampled `samples` times with
/// `iters` iterations per sample.
fn median_ns(samples: usize, iters: usize, mut op: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                op();
            }
            t0.elapsed().as_secs_f64() * 1e9 / iters as f64
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

fn fork_latency_ns<S: CowStore>(store: &S, pages: u64) -> f64 {
    let parent = store.create_world();
    for vpn in 0..pages {
        store.write(parent, vpn, 0, &[1]);
    }
    median_ns(30, 200, || {
        let child = store.fork_world(parent);
        store.drop_world(child);
    })
}

fn cow_fault_ns<S: CowStore>(store: &S) -> f64 {
    let parent = store.create_world();
    store.write(parent, 0, 0, &[1]);
    median_ns(30, 200, || {
        let child = store.fork_world(parent);
        store.write(child, 0, 0, &[2]);
        store.drop_world(child);
    })
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pagestore.json".to_string());
    let cfg = ContentionConfig::default();
    let reps = 5;

    eprintln!(
        "contention workload: {} worlds x {} pages x {} rounds ({} writes/run, best of {reps})",
        cfg.worlds,
        cfg.pages_per_world,
        cfg.rounds,
        cfg.total_writes()
    );

    let global = best_throughput(&GlobalLockStore::new(cfg.page_size), &cfg, reps);
    eprintln!("global_lock: {global:.0} writes/s");
    let sharded = best_throughput(&PageStore::new(cfg.page_size), &cfg, reps);
    eprintln!("sharded:     {sharded:.0} writes/s");
    let speedup = sharded / global;
    eprintln!("speedup:     {speedup:.2}x");

    let fork_ns = fork_latency_ns(&PageStore::new(2048), 160);
    let cow_ns = cow_fault_ns(&PageStore::new(4096));
    let base_fork_ns = fork_latency_ns(&GlobalLockStore::new(2048), 160);
    let base_cow_ns = cow_fault_ns(&GlobalLockStore::new(4096));
    eprintln!("fork_world(160 pages): {fork_ns:.0} ns (global_lock {base_fork_ns:.0} ns)");
    eprintln!("cow_fault(4 KiB):      {cow_ns:.0} ns (global_lock {base_cow_ns:.0} ns)");

    // Content dedupe: savings on converging siblings, cost on misses.
    let dcfg = DedupeConfig::default();
    let (dedupe_ratio, dedupe_hits) = sibling_dedupe_ratio(&dcfg);
    let seal_ns_plain = unique_write_ns(false, 15, 512, 2048);
    let seal_ns_indexed = unique_write_ns(true, 15, 512, 2048);
    let rewrite_ns_plain = rewrite_ns(false, 30, 4096, 2048);
    let rewrite_ns_indexed = rewrite_ns(true, 30, 4096, 2048);
    let write_overhead = rewrite_ns_indexed / rewrite_ns_plain;
    eprintln!(
        "dedupe: {} siblings x {} pages -> {dedupe_ratio:.2}x resident ({dedupe_hits} re-shares)",
        dcfg.siblings, dcfg.pages
    );
    eprintln!(
        "seal, all-miss: {seal_ns_plain:.0} ns plain, {seal_ns_indexed:.0} ns indexed \
         (the budgeted hash+probe cost)"
    );
    eprintln!(
        "rewrite fast path: {rewrite_ns_plain:.0} ns plain, {rewrite_ns_indexed:.0} ns indexed \
         ({write_overhead:.3}x, gate <= 1.10)"
    );

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"pagestore_contention\",\n",
            "  \"unix_time\": {unix_time},\n",
            "  \"effective_cores\": {cores},\n",
            "  \"config\": {{\"worlds\": {worlds}, \"pages_per_world\": {pages}, ",
            "\"rounds\": {rounds}, \"page_size\": {page_size}}},\n",
            "  \"global_lock_writes_per_sec\": {global:.0},\n",
            "  \"sharded_writes_per_sec\": {sharded:.0},\n",
            "  \"speedup\": {speedup:.3},\n",
            "  \"sharded\": {{\"fork_world_160_pages_ns\": {fork_ns:.0}, ",
            "\"cow_fault_4k_ns\": {cow_ns:.0}}},\n",
            "  \"global_lock\": {{\"fork_world_160_pages_ns\": {base_fork_ns:.0}, ",
            "\"cow_fault_4k_ns\": {base_cow_ns:.0}}},\n",
            "  \"dedupe_ratio\": {dedupe_ratio:.3},\n",
            "  \"dedupe\": {{\"siblings\": {dsiblings}, \"pages\": {dpages}, ",
            "\"re_shares\": {dedupe_hits}, \"seal_ns_plain\": {seal_ns_plain:.0}, ",
            "\"seal_ns_indexed\": {seal_ns_indexed:.0}, ",
            "\"rewrite_ns_plain\": {rewrite_ns_plain:.0}, ",
            "\"rewrite_ns_indexed\": {rewrite_ns_indexed:.0}, ",
            "\"write_overhead\": {write_overhead:.3}}},\n",
            "  \"note\": \"speedup is thread-parallel throughput; on a ",
            "single-core host (effective_cores=1) the sharded store cannot ",
            "exceed the uncontended global lock and the number reflects ",
            "per-op overhead only\"\n",
            "}}\n",
        ),
        unix_time = unix_time,
        cores = cores,
        worlds = cfg.worlds,
        pages = cfg.pages_per_world,
        rounds = cfg.rounds,
        page_size = cfg.page_size,
        global = global,
        sharded = sharded,
        speedup = speedup,
        fork_ns = fork_ns,
        cow_ns = cow_ns,
        base_fork_ns = base_fork_ns,
        base_cow_ns = base_cow_ns,
        dedupe_ratio = dedupe_ratio,
        dsiblings = dcfg.siblings,
        dpages = dcfg.pages,
        dedupe_hits = dedupe_hits,
        seal_ns_plain = seal_ns_plain,
        seal_ns_indexed = seal_ns_indexed,
        rewrite_ns_plain = rewrite_ns_plain,
        rewrite_ns_indexed = rewrite_ns_indexed,
        write_overhead = write_overhead,
    );
    std::fs::write(&out, &json).expect("write results file");
    println!("wrote {out}");
}
