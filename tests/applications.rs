//! End-to-end application tests: the three §4 application domains driven
//! through the full public API, checking cross-crate agreement.

use std::time::Duration;

use multiple_worlds::worlds::Speculation;
use multiple_worlds::worlds_prolog::{
    or_parallel_solve, parse_query, solve, Database, SolveConfig,
};
use multiple_worlds::worlds_recovery::{FaultPlan, RecoveryBlock, RecoveryOutcome};
use multiple_worlds::worlds_rootfinder::parallel::{committed_roots, parallel_find_roots};
use multiple_worlds::worlds_rootfinder::{legendre_like, JtConfig, TEST_ANGLES};

#[test]
fn rootfinder_race_commits_verified_roots() {
    let (poly, expected) = legendre_like(10);
    let spec = Speculation::new();
    let report = parallel_find_roots(
        &spec,
        &poly,
        &TEST_ANGLES[..3],
        &JtConfig::default(),
        Some(Duration::from_secs(30)),
    );
    assert!(
        report.succeeded(),
        "default budgets converge: {:?}",
        report.outcome
    );
    let committed = committed_roots(&spec).expect("winner wrote its roots");
    assert_eq!(committed.len(), expected.len());
    // Every committed root is near some constructed root.
    for r in &committed {
        let d = expected
            .iter()
            .map(|t| (*r - *t).abs())
            .fold(f64::INFINITY, f64::min);
        assert!(d < 1e-4, "root {r} is {d} from the nearest true root");
    }
}

#[test]
fn prolog_or_parallel_agrees_with_sequential_provability() {
    let db = Database::consult(
        "edge(a,b). edge(b,c). edge(a,x). edge(x,c). edge(c,d).\n\
         path(U,V) :- edge(U,V).\n\
         path(U,V) :- edge(U,W), path(W,V).",
    )
    .unwrap();
    let cfg = SolveConfig::default();
    for (query, provable) in [
        ("path(a, d)", true),
        ("path(d, a)", false),
        ("path(a, c)", true),
        ("edge(b, a)", false),
    ] {
        let goals = parse_query(query).unwrap();
        let (seq, _) = solve(&db, &goals, &cfg);
        let spec = Speculation::new();
        let par = or_parallel_solve(&spec, &db, &goals, &cfg, None);
        assert_eq!(
            seq.is_empty(),
            par.solution.is_none(),
            "sequential and OR-parallel must agree on provability of {query}"
        );
        assert_eq!(provable, !seq.is_empty(), "fixture sanity for {query}");
    }
}

#[test]
fn recovery_block_full_pipeline_with_speculative_file_state() {
    let spec = Speculation::new();
    spec.setup(|c| c.put_str("account", "balance=100")).unwrap();

    // Probabilistic faults, seeded for reproducibility; the plan is
    // shared, so sequential attempts consume the same fault sequence.
    let plan = FaultPlan::probabilistic(0.99, 1234); // primary virtually always faults
    let block = RecoveryBlock::new(|v: &String| v.contains("balance="))
        .alternate("flaky-primary", {
            let plan = plan.clone();
            move |ctx| {
                if plan.next_faults() {
                    ctx.put_str("account", "###")?;
                    Ok("corrupt".to_string())
                } else {
                    ctx.put_str("account", "balance=150")?;
                    Ok("balance=150".to_string())
                }
            }
        })
        .alternate("conservative-spare", |ctx| {
            let prev = ctx.get_str("account").expect("setup wrote it");
            assert_eq!(prev, "balance=100", "spare must see pristine state");
            ctx.put_str("account", "balance=100+fee")?;
            Ok("balance=100+fee".to_string())
        });

    let r = block.run_sequential(&spec);
    assert!(matches!(r.outcome, RecoveryOutcome::Accepted { .. }));
    let committed = spec.read(|c| c.get_str("account")).unwrap();
    assert!(
        committed.contains("balance="),
        "no corruption committed: {committed}"
    );
    assert_ne!(committed, "###");
}

#[test]
fn sequential_then_parallel_blocks_compose_over_one_session() {
    // A Speculation session survives multiple blocks, with state flowing
    // through commits — the paper's "sequence of alternative blocks".
    let spec = Speculation::new();
    spec.setup(|c| c.put_u64("v", 1)).unwrap();
    for step in 0..4u64 {
        let report = spec.run(
            multiple_worlds::worlds::AltBlock::new()
                .alt("triple", move |ctx| {
                    let v = ctx.get_u64("v").unwrap();
                    ctx.put_u64("v", v * 3)?;
                    Ok(v * 3)
                })
                .alt("triple-slowly", move |ctx| {
                    std::thread::sleep(Duration::from_millis(10 * step));
                    ctx.checkpoint()?;
                    let v = ctx.get_u64("v").unwrap();
                    ctx.put_u64("v", v * 3)?;
                    Ok(v * 3)
                })
                .elim(multiple_worlds::worlds::ElimMode::Sync),
        );
        assert!(report.succeeded());
    }
    assert_eq!(
        spec.read(|c| c.get_u64("v")),
        Some(81),
        "3^4 via four committed blocks"
    );
}
