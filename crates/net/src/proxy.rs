//! `FaultProxy` — a loopback man-in-the-middle that makes the network
//! misbehave on schedule.
//!
//! The proxy sits between a [`crate::Conn`] and a [`crate::NetNode`],
//! parses the frame stream (it must, to drop or truncate *whole* frames
//! rather than arbitrary bytes), and consults a [`FaultSchedule`] to
//! decide each operation's fate. Operations are numbered by **first
//! appearance of a correlation id**: a retransmitted frame carries a
//! corr the proxy has already seen, so a scheduled fault fires exactly
//! once per logical op and the retry sails through — deterministic
//! single-retry faults, never accidental livelock.

use crate::fault::{FaultKind, FaultSchedule};
use crate::frame::{read_frame_idle, Frame, FRAME_HEADER};
use std::collections::HashMap;
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use worlds_exec::Executor;
use worlds_obs::Registry;

/// Shared first-seen-corr → op-index assignment. A cluster runs one
/// proxy per node but numbers its logical transfers from a single
/// sequence; handing every proxy a clone of one `OpLedger` makes the
/// proxies' op numbering match the cluster's transfer counter, which is
/// what lets one seeded [`FaultSchedule`] mean the same thing on every
/// transport.
#[derive(Clone, Default)]
pub struct OpLedger(Arc<OpLedgerInner>);

#[derive(Default)]
struct OpLedgerInner {
    /// corr → assigned op index; ops are numbered in first-seen order.
    ops: Mutex<HashMap<u64, u64>>,
    next_op: AtomicU64,
}

impl OpLedger {
    pub fn new() -> OpLedger {
        OpLedger::default()
    }

    /// The op index for `corr`, and whether this is its first delivery
    /// (only first deliveries are eligible for faults).
    fn op_for(&self, corr: u64) -> (u64, bool) {
        let mut ops = self.0.ops.lock().expect("ops lock");
        match ops.get(&corr) {
            Some(&op) => (op, false),
            None => {
                let op = self.0.next_op.fetch_add(1, Ordering::Relaxed);
                ops.insert(corr, op);
                (op, true)
            }
        }
    }
}

struct Shared {
    upstream: SocketAddr,
    schedule: FaultSchedule,
    stop: AtomicBool,
    faults: AtomicU64,
    forwarded: AtomicU64,
    ops: OpLedger,
}

/// A fault-injecting TCP relay in front of one upstream server.
pub struct FaultProxy {
    shared: Arc<Shared>,
    addr: SocketAddr,
}

impl FaultProxy {
    /// Listen on `127.0.0.1:0` and relay every connection to `upstream`,
    /// injecting faults per `schedule`. Point clients at
    /// [`FaultProxy::addr`] instead of the real server.
    pub fn spawn(
        upstream: SocketAddr,
        schedule: FaultSchedule,
        obs: Registry,
    ) -> std::io::Result<FaultProxy> {
        FaultProxy::spawn_with_ops(upstream, schedule, obs, OpLedger::new())
    }

    /// Like [`FaultProxy::spawn`], but numbering operations from a
    /// shared [`OpLedger`] — for fleets of proxies (one per node) that
    /// must share one global op sequence.
    pub fn spawn_with_ops(
        upstream: SocketAddr,
        schedule: FaultSchedule,
        obs: Registry,
        ops: OpLedger,
    ) -> std::io::Result<FaultProxy> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            upstream,
            schedule,
            stop: AtomicBool::new(false),
            faults: AtomicU64::new(0),
            forwarded: AtomicU64::new(0),
            ops,
        });
        let accept_shared = shared.clone();
        Executor::global().spawn(&obs, move || {
            while !accept_shared.stop.load(Ordering::Acquire) {
                let client = match listener.accept() {
                    Ok((s, _)) => s,
                    Err(_) => continue,
                };
                if accept_shared.stop.load(Ordering::Acquire) {
                    break;
                }
                let relay_shared = accept_shared.clone();
                Executor::global().spawn(&Registry::disabled(), move || {
                    relay(client, relay_shared);
                });
            }
        });
        Ok(FaultProxy { shared, addr })
    }

    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Faults injected so far.
    pub fn faults_injected(&self) -> u64 {
        self.shared.faults.load(Ordering::Relaxed)
    }

    /// Request frames forwarded cleanly so far.
    pub fn frames_forwarded(&self) -> u64 {
        self.shared.forwarded.load(Ordering::Relaxed)
    }

    /// Stop relaying. Existing connections die on their next frame.
    pub fn shutdown(&self) {
        if self.shared.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        let _ = TcpStream::connect(self.addr);
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Relay one client connection. The protocol is strict request/reply per
/// connection, so the relay alternates: read request from client, decide
/// fate, forward upstream, pump the reply back.
fn relay(mut client: TcpStream, shared: Arc<Shared>) {
    let _ = client.set_read_timeout(Some(Duration::from_millis(25)));
    let _ = client.set_nodelay(true);
    let mut upstream: Option<TcpStream> = None;
    loop {
        let frame = match read_frame_idle(&mut client, &shared.stop) {
            Ok(Some((frame, _))) => frame,
            Ok(None) | Err(_) => return,
        };
        let (op, first) = shared.ops.op_for(frame.corr);
        let fault = if first {
            shared.schedule.fault_for(op)
        } else {
            None
        };
        if let Some(kind) = fault {
            shared.faults.fetch_add(1, Ordering::Relaxed);
            match kind {
                FaultKind::Drop => continue,
                FaultKind::Delay { ms } => {
                    std::thread::sleep(Duration::from_millis(ms));
                    // Fall through to a clean forward; the client has
                    // usually timed out and abandoned this connection,
                    // in which case the forward fails and we exit.
                }
                FaultKind::Reset => {
                    let _ = client.shutdown(Shutdown::Both);
                    return;
                }
                FaultKind::Truncate => {
                    // Apply upstream, then cut the reply mid-frame.
                    let reply = match pump(&mut upstream, &shared, &frame) {
                        Ok(r) => r,
                        Err(()) => return,
                    };
                    let bytes = reply.encode();
                    let cut = FRAME_HEADER.min(bytes.len() - 1);
                    let _ = client.write_all(&bytes[..cut]);
                    let _ = client.shutdown(Shutdown::Both);
                    return;
                }
                FaultKind::DropReply => {
                    // Apply upstream, swallow the reply: the op has
                    // really happened, the client just can't know. Its
                    // retry is the idempotency probe.
                    if pump(&mut upstream, &shared, &frame).is_err() {
                        return;
                    }
                    continue;
                }
            }
        }
        shared.forwarded.fetch_add(1, Ordering::Relaxed);
        let reply = match pump(&mut upstream, &shared, &frame) {
            Ok(r) => r,
            Err(()) => return,
        };
        if client.write_all(&reply.encode()).is_err() {
            return;
        }
    }
}

/// Forward `frame` upstream (connecting lazily) and read the reply.
fn pump(upstream: &mut Option<TcpStream>, shared: &Shared, frame: &Frame) -> Result<Frame, ()> {
    for fresh in [false, true] {
        if upstream.is_none() || fresh {
            let s = TcpStream::connect(shared.upstream).map_err(|_| ())?;
            let _ = s.set_nodelay(true);
            let _ = s.set_read_timeout(Some(Duration::from_secs(5)));
            *upstream = Some(s);
        }
        let s = upstream.as_mut().expect("connected above");
        if s.write_all(&frame.encode()).is_err() {
            *upstream = None;
            continue;
        }
        match crate::frame::read_frame(s) {
            Ok((reply, _)) => return Ok(reply),
            Err(_) => {
                *upstream = None;
                continue;
            }
        }
    }
    Err(())
}
