//! The content-dedupe workloads behind `BENCH_pagestore.json`'s
//! `dedupe` block.
//!
//! Two questions, two workloads:
//!
//! 1. **How much does the index save** when sibling worlds converge on
//!    the same bytes? [`sibling_dedupe_ratio`] runs the rootfinder
//!    shape — N siblings forked from one parent, each computing the
//!    same intermediate table into its own private pages — and reports
//!    logical resident bytes over physical resident bytes. Without the
//!    index the ratio is 1.0 by construction; with it, every sibling
//!    past the first re-shares the first's sealed frames.
//!
//! 2. **What does the index cost when it never helps?** Two prices,
//!    kept separate because they differ by an order of magnitude:
//!    [`rewrite_ns`] times the in-place write fast path, where dedupe-on
//!    adds one generation bump (and a single hash invalidation per
//!    sealed page) but never hashes — the ratio of on/off is the
//!    regression gate CI holds at ≤ 1.10. [`unique_write_ns`] times the
//!    seal path on never-repeating content, where every commit pays the
//!    full-page hash and a failed probe — the budgeted miss cost,
//!    recorded so the trajectory is visible but not gated (a hash pass
//!    can't hide inside 10% of a bare page copy).

use std::time::Instant;

use worlds_pagestore::PageStore;

/// Shape of the sibling-convergence workload.
#[derive(Debug, Clone, Copy)]
pub struct DedupeConfig {
    /// Sibling worlds forked from the seeded parent.
    pub siblings: usize,
    /// Pages each sibling writes (its whole private view).
    pub pages: u64,
    /// Store page size in bytes.
    pub page_size: usize,
}

impl Default for DedupeConfig {
    fn default() -> Self {
        DedupeConfig {
            siblings: 8,
            pages: 32,
            page_size: 2048,
        }
    }
}

/// One sibling's "computed" page: a function of the vpn only, so every
/// sibling derives identical bytes — the rootfinder siblings all
/// tabulating the same polynomial.
fn computed_page(vpn: u64, page_size: usize) -> Vec<u8> {
    let mut page = vec![0u8; page_size];
    for (i, b) in page.iter_mut().enumerate() {
        *b = (vpn as u8).wrapping_mul(31).wrapping_add(i as u8 ^ 0x5A);
    }
    page
}

/// Run the sibling workload with the content index armed and return
/// `(dedupe_ratio, dedupe_hits)`: logical resident bytes (every world's
/// mapped pages) over physical resident bytes (live frames), plus the
/// store's own hit count as a cross-check.
pub fn sibling_dedupe_ratio(cfg: &DedupeConfig) -> (f64, u64) {
    let store = PageStore::new(cfg.page_size);
    store.set_dedupe(true);
    let parent = store.create_world();
    // Seed the parent with bytes no sibling will reproduce, so every
    // sibling write genuinely diverges (a CoW commit, not a no-op).
    let mut seed = vec![0xEEu8; cfg.page_size];
    for vpn in 0..cfg.pages {
        seed[0] = vpn as u8;
        store.write(parent, vpn, 0, &seed).expect("seed parent");
    }
    let kids: Vec<_> = (0..cfg.siblings)
        .map(|_| store.fork_world(parent).expect("fork sibling"))
        .collect();
    for &kid in &kids {
        for vpn in 0..cfg.pages {
            let page = computed_page(vpn, cfg.page_size);
            store.write(kid, vpn, 0, &page).expect("sibling compute");
        }
    }
    let mut logical_pages = 0u64;
    for &w in kids.iter().chain(std::iter::once(&parent)) {
        logical_pages += store.mapped_vpns(w).expect("world live").len() as u64;
    }
    let physical_pages = store.live_frames() as u64;
    let hits = store.stats().dedupe_hits;
    for kid in kids {
        store.drop_world(kid).expect("drop sibling");
    }
    store.drop_world(parent).expect("drop parent");
    (logical_pages as f64 / physical_pages.max(1) as f64, hits)
}

/// Median ns per full-page write of never-repeating content, with the
/// content index on or off. Every on-path commit pays the hash and a
/// failed probe — the worst honest case for the index.
pub fn unique_write_ns(dedupe: bool, samples: usize, pages: u64, page_size: usize) -> f64 {
    let store = PageStore::new(page_size);
    store.set_dedupe(dedupe);
    let mut stamp = 0u64;
    let mut times: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            let world = store.create_world();
            let mut page = vec![0u8; page_size];
            let t0 = Instant::now();
            for vpn in 0..pages {
                stamp += 1;
                // Unique content per write: the probe can never hit.
                page[..8].copy_from_slice(&stamp.to_le_bytes());
                store.write(world, vpn, 0, &page).expect("bench write");
            }
            let per = t0.elapsed().as_secs_f64() * 1e9 / pages as f64;
            store.drop_world(world).expect("bench world");
            per
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

/// Median ns per in-place *partial* rewrite — the write fast path the
/// contention workload lives on — with the content index on or off.
/// Partial writes are not seal points: dedupe-on pays one generation
/// bump per write and a single hash invalidation per sealed page, never
/// a hash. This is the number the ≤ 10% regression gate holds. (A
/// *full-page* rewrite is a seal point by design and pays the hash —
/// that cost is [`unique_write_ns`]'s.)
pub fn rewrite_ns(dedupe: bool, samples: usize, pages: u64, page_size: usize) -> f64 {
    let store = PageStore::new(page_size);
    store.set_dedupe(dedupe);
    let world = store.create_world();
    // Unique content per page, so nothing dedupes at populate time and
    // every frame is private when the timed rewrites begin.
    let mut page = vec![0u8; page_size];
    for vpn in 0..pages {
        page[..8].copy_from_slice(&vpn.to_le_bytes());
        store.write(world, vpn, 0, &page).expect("populate");
    }
    let mut stamp = 0u64;
    let mut record = vec![0u8; 64.min(page_size)];
    let mut times: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            let t0 = Instant::now();
            for vpn in 0..pages {
                stamp += 1;
                // Content varies so the rewrite is never a silent no-op.
                record[..8].copy_from_slice(&stamp.to_le_bytes());
                store.write(world, vpn, 0, &record).expect("rewrite");
            }
            t0.elapsed().as_secs_f64() * 1e9 / pages as f64
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sibling_workload_dedupes_well_past_the_gate() {
        let (ratio, hits) = sibling_dedupe_ratio(&DedupeConfig {
            siblings: 4,
            pages: 16,
            page_size: 512,
        });
        assert!(ratio > 1.5, "sibling convergence must dedupe: {ratio:.2}x");
        assert!(hits as usize >= 3 * 16, "later siblings all hit: {hits}");
    }

    #[test]
    fn unique_writes_time_both_paths() {
        let off = unique_write_ns(false, 3, 64, 512);
        let on = unique_write_ns(true, 3, 64, 512);
        assert!(off > 0.0 && on > 0.0);
    }

    #[test]
    fn rewrites_time_both_paths() {
        let off = rewrite_ns(false, 3, 64, 512);
        let on = rewrite_ns(true, 3, 64, 512);
        assert!(off > 0.0 && on > 0.0);
    }
}
