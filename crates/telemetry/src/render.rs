//! Terminal tables for the live telemetry plane, shared by
//! `worlds-top` and `worlds-report --live`.

use crate::wire::{NodeReport, SessionReport};
use worlds_obs::fmt_ns;

/// The full cluster view: a per-node table followed by the merged
/// per-site PI table. Plain text, one trailing newline.
pub fn render_cluster(reports: &[NodeReport]) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str(&format!(
        "== worlds cluster telemetry ({} node{}) ==\n",
        reports.len(),
        if reports.len() == 1 { "" } else { "s" }
    ));
    out.push_str(&format!(
        "{:>9}  {:>6}  {:>7}  {:>7}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}  {:>5}  hottest site\n",
        "node",
        "live",
        "frames",
        "backlog",
        "events/s",
        "blocks/s",
        "elims/s",
        "net/s",
        "rtt",
        "cpu%"
    ));
    for r in reports {
        let cpu = if r.cpu_util > 0.0 {
            format!("{:>5.1}", 100.0 * r.cpu_util)
        } else {
            format!("{:>5}", "-")
        };
        let hot = match r.hot_site() {
            Some((label, share)) => format!("{label} ({:.0}%)", 100.0 * share),
            None => "-".to_string(),
        };
        out.push_str(&format!(
            "{:>9}  {:>6}  {:>7}  {:>7}  {:>9.1}  {:>9.1}  {:>9.1}  {:>9.1}  {:>9}  {cpu}  {hot}\n",
            node_name(r.node),
            r.live_worlds,
            r.frames_resident,
            r.elim_backlog,
            r.events_s,
            r.commits_s,
            r.elims_s,
            r.net_frames_s,
            fmt_ns(r.rtt_mean_ns as u64),
        ));
    }
    out.push_str(&render_sites(reports));
    out
}

/// The merged per-site PI table: `PI = Rμ/(1+Ro)` per call site per
/// node, the paper's §3.3 model estimated live. Empty string when no
/// node reported a labelled site.
pub fn render_sites(reports: &[NodeReport]) -> String {
    let mut rows: Vec<(u64, &crate::wire::SiteReport)> = reports
        .iter()
        .flat_map(|r| r.sites.iter().map(move |s| (r.node, s)))
        .collect();
    if rows.is_empty() {
        return String::new();
    }
    rows.sort_by(|a, b| (a.1.label.as_str(), a.0).cmp(&(b.1.label.as_str(), b.0)));
    let mut out = String::with_capacity(512);
    out.push_str("-- per-site PI (PI = R\u{3bc}/(1+Ro), \u{a7}3.3) --\n");
    out.push_str(&format!(
        "{:<28}  {:>9}  {:>7}  {:>6}  {:>6}  {:>6}  {:>6}  alts\n",
        "site", "node", "commits", "R\u{3bc}", "Ro", "PI", "cpuR\u{3bc}"
    ));
    for (node, site) in rows {
        let alts = site
            .alts
            .iter()
            .map(|a| format!("a{}:{}@{}", a.alt, a.count, fmt_ns(a.mean_ns as u64)))
            .collect::<Vec<_>>()
            .join(" ");
        let mut label = site.label.clone();
        if label.len() > 28 {
            let mut cut = 27;
            while !label.is_char_boundary(cut) {
                cut -= 1;
            }
            label.truncate(cut);
            label.push('\u{2026}');
        }
        // A cpuRμ of 0 means "no profiler samples yet", not "no
        // dispersion" — render the absence, not a misleading number.
        let cpu_r_mu = if site.cpu_r_mu > 0.0 {
            format!("{:>6.2}", site.cpu_r_mu)
        } else {
            format!("{:>6}", "-")
        };
        out.push_str(&format!(
            "{label:<28}  {:>9}  {:>7}  {:>6.2}  {:>6.2}  {:>6.2}  {cpu_r_mu}  {alts}\n",
            node_name(node),
            site.commits,
            site.r_mu,
            site.r_o,
            site.pi,
        ));
    }
    out
}

/// The per-session table a worlds-server front door answers
/// `worlds-top --sessions` with: one row per admitted session, id
/// order, lineage shown as `parent → child`. Plain text, one trailing
/// newline.
pub fn render_sessions(reports: &[SessionReport]) -> String {
    let mut out = String::with_capacity(512);
    out.push_str(&format!(
        "== worlds sessions ({} session{}) ==\n",
        reports.len(),
        if reports.len() == 1 { "" } else { "s" }
    ));
    if reports.is_empty() {
        return out;
    }
    out.push_str(&format!(
        "{:>5}  {:<24}  {:>6}  {:>6}  {:>7}  {:>9}  {:>9}  {:>7}  {:>7}  {:>6}  {:>6}\n",
        "sess",
        "name",
        "parent",
        "live",
        "frames",
        "vt spent",
        "vt quota",
        "spawns",
        "commits",
        "rej",
        "queued"
    ));
    let mut rows: Vec<&SessionReport> = reports.iter().collect();
    rows.sort_by_key(|r| r.session);
    for r in rows {
        let mut name = r.name.clone();
        if name.len() > 24 {
            let mut cut = 23;
            while !name.is_char_boundary(cut) {
                cut -= 1;
            }
            name.truncate(cut);
            name.push('\u{2026}');
        }
        let parent = if r.parent == 0 {
            "-".to_string()
        } else {
            r.parent.to_string()
        };
        let quota = if r.vt_budget_ns == 0 {
            format!("{:>9}", "\u{221e}")
        } else {
            format!("{:>9}", fmt_ns(r.vt_budget_ns))
        };
        out.push_str(&format!(
            "{:>5}  {name:<24}  {parent:>6}  {:>6}  {:>7}  {:>9}  {quota}  {:>7}  {:>7}  {:>6}  {:>6}\n",
            r.session,
            r.live_worlds,
            r.resident_frames,
            fmt_ns(r.vt_spent_ns),
            r.spawns,
            r.commits,
            r.rejected,
            r.queued,
        ));
    }
    out
}

/// The machine-readable session snapshot (`worlds-top --sessions
/// --json`): one JSON object, stable key order, one trailing newline.
pub fn render_sessions_json(reports: &[SessionReport]) -> String {
    let mut rows: Vec<&SessionReport> = reports.iter().collect();
    rows.sort_by_key(|r| r.session);
    let mut s = String::with_capacity(512);
    s.push_str("{\"sessions\":[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            concat!(
                "{{\"session\":{},\"name\":{:?},\"parent\":{},",
                "\"live_worlds\":{},\"resident_frames\":{},",
                "\"vt_spent_ns\":{},\"vt_budget_ns\":{},",
                "\"spawns\":{},\"commits\":{},\"rejected\":{},\"queued\":{}}}"
            ),
            r.session,
            r.name,
            r.parent,
            r.live_worlds,
            r.resident_frames,
            r.vt_spent_ns,
            r.vt_budget_ns,
            r.spawns,
            r.commits,
            r.rejected,
            r.queued,
        ));
    }
    s.push_str("]}\n");
    s
}

/// The machine-readable cluster snapshot (`worlds-top --json`): one
/// JSON object, one trailing newline, stable key order. Same content
/// as [`render_cluster`], for scripts and CI assertions instead of
/// eyes.
pub fn render_cluster_json(reports: &[NodeReport]) -> String {
    let mut s = String::with_capacity(1024);
    s.push_str("{\"nodes\":[");
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let (hot_label, hot_share) = match r.hot_site() {
            Some((label, share)) => (format!("{label:?}"), format!("{share:.4}")),
            None => ("null".into(), "null".into()),
        };
        s.push_str(&format!(
            concat!(
                "{{\"node\":{},\"window_ns\":{},\"wall_ns\":{},",
                "\"live_worlds\":{},\"frames_resident\":{},\"elim_backlog\":{},",
                "\"stalls\":{},\"events_s\":{:.1},\"spawns_s\":{:.1},",
                "\"commits_s\":{:.1},\"elims_s\":{:.1},\"faults_s\":{:.1},",
                "\"net_frames_s\":{:.1},\"rtt_mean_ns\":{:.0},",
                "\"cpu_util\":{:.4},\"hot_site\":{},\"hot_site_share\":{},",
                "\"sites\":["
            ),
            r.node,
            r.window_ns,
            r.wall_ns,
            r.live_worlds,
            r.frames_resident,
            r.elim_backlog,
            r.stalls,
            r.events_s,
            r.spawns_s,
            r.commits_s,
            r.elims_s,
            r.faults_s,
            r.net_frames_s,
            r.rtt_mean_ns,
            r.cpu_util,
            hot_label,
            hot_share,
        ));
        for (j, site) in r.sites.iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"site\":{},\"label\":{:?},\"commits\":{},\"r_mu\":{:.3},\"r_o\":{:.3},\"pi\":{:.3},\"cpu_r_mu\":{:.3},\"alts\":[",
                site.site, site.label, site.commits, site.r_mu, site.r_o, site.pi, site.cpu_r_mu
            ));
            for (k, alt) in site.alts.iter().enumerate() {
                if k > 0 {
                    s.push(',');
                }
                s.push_str(&format!(
                    "{{\"alt\":{},\"count\":{},\"mean_ns\":{:.0},\"cpu_ns\":{:.0}}}",
                    alt.alt, alt.count, alt.mean_ns, alt.cpu_ns
                ));
            }
            s.push_str("]}");
        }
        s.push_str("]}");
    }
    s.push_str("]}\n");
    s
}

fn node_name(node: u64) -> String {
    if node == crate::COLLECTOR_NODE_ID {
        "collector".into()
    } else {
        node.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{AltReport, SiteReport};

    #[test]
    fn renders_nodes_and_sites() {
        let reports = vec![
            NodeReport {
                node: 0,
                live_worlds: 3,
                events_s: 100.0,
                sites: vec![SiteReport {
                    site: 1,
                    label: "rootfinder/solve".into(),
                    commits: 9,
                    r_mu: 1.8,
                    r_o: 0.05,
                    pi: 1.71,
                    cpu_r_mu: 0.0,
                    alts: vec![AltReport {
                        alt: 0,
                        count: 12,
                        mean_ns: 1500.0,
                        cpu_ns: 0.0,
                    }],
                }],
                ..NodeReport::default()
            },
            NodeReport {
                node: 1,
                ..NodeReport::default()
            },
        ];
        let text = render_cluster(&reports);
        assert!(text.contains("2 nodes"));
        assert!(text.contains("rootfinder/solve"));
        assert!(text.contains("1.71"));
        assert!(text.contains("a0:12@1.50us"));
        let one_node = render_cluster(&reports[1..]);
        assert!(one_node.contains("1 node"));
        assert!(!one_node.contains("per-site"), "no sites, no site table");
    }

    #[test]
    fn renders_cpu_columns_when_profiled() {
        let mut r = NodeReport {
            node: 0,
            cpu_util: 0.625,
            sites: vec![SiteReport {
                site: 1,
                label: "rootfinder/solve".into(),
                commits: 9,
                r_mu: 1.8,
                r_o: 0.05,
                pi: 1.71,
                cpu_r_mu: 1.40,
                alts: vec![AltReport {
                    alt: 0,
                    count: 12,
                    mean_ns: 1500.0,
                    cpu_ns: 9000.0,
                }],
            }],
            ..NodeReport::default()
        };
        let text = render_cluster(std::slice::from_ref(&r));
        assert!(text.contains("cpu%"), "{text}");
        assert!(text.contains("62.5"), "{text}");
        assert!(text.contains("rootfinder/solve (100%)"), "{text}");
        assert!(text.contains("1.40"), "cpuR\u{3bc} column: {text}");
        // Without samples both render as absent, not as zeros.
        r.cpu_util = 0.0;
        r.sites[0].cpu_r_mu = 0.0;
        r.sites[0].alts[0].cpu_ns = 0.0;
        let text = render_cluster(std::slice::from_ref(&r));
        assert!(!text.contains("(100%)"), "{text}");
        assert!(!text.contains("0.0  rootfinder"), "{text}");
    }

    #[test]
    fn renders_session_table_in_id_order() {
        let reports = vec![
            SessionReport {
                session: 2,
                name: "tenant-b".into(),
                parent: 1,
                live_worlds: 4,
                resident_frames: 12,
                vt_spent_ns: 1_500_000,
                vt_budget_ns: 0,
                spawns: 8,
                commits: 1,
                rejected: 3,
                queued: 2,
            },
            SessionReport {
                session: 1,
                name: "tenant-a".into(),
                vt_budget_ns: 2_000_000_000,
                ..SessionReport::default()
            },
        ];
        let text = render_sessions(&reports);
        assert!(text.contains("2 sessions"), "{text}");
        let a = text.find("tenant-a").unwrap();
        let b = text.find("tenant-b").unwrap();
        assert!(a < b, "rows sorted by session id: {text}");
        assert!(
            text.contains('\u{221e}'),
            "0 budget renders unlimited: {text}"
        );
        assert!(text.contains("2.00s"), "budget rendered via fmt_ns: {text}");
        assert!(render_sessions(&[]).contains("0 sessions"));

        let json = render_sessions_json(&reports);
        worlds_obs::validate_json(&json).expect("session snapshot is valid JSON");
        for key in [
            "\"session\":1",
            "\"name\":\"tenant-b\"",
            "\"parent\":1",
            "\"rejected\":3",
            "\"queued\":2",
        ] {
            assert!(json.contains(key), "missing {key}: {json}");
        }
        worlds_obs::validate_json(&render_sessions_json(&[])).unwrap();
    }

    #[test]
    fn json_snapshot_is_valid_and_complete() {
        let reports = vec![
            NodeReport {
                node: 0,
                live_worlds: 3,
                stalls: 1,
                cpu_util: 0.5,
                sites: vec![SiteReport {
                    site: 1,
                    label: "rootfinder/solve".into(),
                    commits: 9,
                    r_mu: 1.8,
                    r_o: 0.05,
                    pi: 1.71,
                    cpu_r_mu: 1.2,
                    alts: vec![AltReport {
                        alt: 0,
                        count: 12,
                        mean_ns: 1500.0,
                        cpu_ns: 8000.0,
                    }],
                }],
                ..NodeReport::default()
            },
            NodeReport {
                node: 1,
                ..NodeReport::default()
            },
        ];
        let json = render_cluster_json(&reports);
        worlds_obs::validate_json(&json).expect("snapshot is valid JSON");
        for key in [
            "\"nodes\":[",
            "\"live_worlds\":3",
            "\"stalls\":1",
            "\"cpu_util\":0.5000",
            "\"hot_site\":\"rootfinder/solve\"",
            "\"hot_site_share\":1.0000",
            "\"cpu_r_mu\":1.200",
            "\"cpu_ns\":8000",
            "\"hot_site\":null",
        ] {
            assert!(json.contains(key), "missing {key}: {json}");
        }
        // Empty table is still a valid, parseable document.
        worlds_obs::validate_json(&render_cluster_json(&[])).unwrap();
    }
}
