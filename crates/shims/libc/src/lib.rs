//! Offline stand-in for the `libc` crate.
//!
//! The real `libc` crate is unreachable in this container (no network, no
//! registry mirror), and it is only FFI declarations anyway — the symbols
//! live in the system C library that every Rust binary already links. So
//! we declare exactly the subset this workspace calls, with the glibc
//! x86-64/aarch64 Linux ABI types.
#![cfg(unix)]
#![allow(non_camel_case_types)]

pub use core::ffi::c_void;

/// C `int`.
pub type c_int = i32;
/// C `short`.
pub type c_short = i16;
/// C `long` (LP64).
pub type c_long = i64;
/// POSIX process id.
pub type pid_t = i32;
/// POSIX clock id.
pub type clockid_t = i32;
/// `time_t` (LP64).
pub type time_t = i64;
/// `size_t`.
pub type size_t = usize;
/// `ssize_t`.
pub type ssize_t = isize;
/// Number of poll fds.
pub type nfds_t = u64;

/// `CLOCK_MONOTONIC` (Linux).
pub const CLOCK_MONOTONIC: clockid_t = 1;
/// Data available to read.
pub const POLLIN: c_short = 0x001;
/// Unblockable kill signal.
pub const SIGKILL: c_int = 9;
/// User-defined signal 1 (Linux).
pub const SIGUSR1: c_int = 10;

/// Signal handler as `signal(2)` takes it: a function pointer, or the
/// `SIG_DFL`/`SIG_IGN` sentinels, carried as a plain machine word.
pub type sighandler_t = size_t;
/// Default signal action, for `signal(2)`.
pub const SIG_DFL: sighandler_t = 0;
/// Error return of `signal(2)`.
pub const SIG_ERR: sighandler_t = usize::MAX;

/// `struct timespec` (LP64 layout).
#[repr(C)]
#[derive(Debug, Clone, Copy, Default)]
pub struct timespec {
    /// Whole seconds.
    pub tv_sec: time_t,
    /// Nanoseconds within the second.
    pub tv_nsec: c_long,
}

/// `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy, Default)]
pub struct pollfd {
    /// File descriptor to watch.
    pub fd: c_int,
    /// Requested events.
    pub events: c_short,
    /// Returned events.
    pub revents: c_short,
}

extern "C" {
    pub fn fork() -> pid_t;
    pub fn _exit(status: c_int) -> !;
    pub fn waitpid(pid: pid_t, status: *mut c_int, options: c_int) -> pid_t;
    pub fn kill(pid: pid_t, sig: c_int) -> c_int;
    pub fn pause() -> c_int;
    pub fn pipe(fds: *mut c_int) -> c_int;
    pub fn close(fd: c_int) -> c_int;
    pub fn read(fd: c_int, buf: *mut c_void, count: size_t) -> ssize_t;
    pub fn write(fd: c_int, buf: *const c_void, count: size_t) -> ssize_t;
    pub fn poll(fds: *mut pollfd, nfds: nfds_t, timeout: c_int) -> c_int;
    pub fn clock_gettime(clk: clockid_t, tp: *mut timespec) -> c_int;
    pub fn signal(signum: c_int, handler: sighandler_t) -> sighandler_t;
    pub fn raise(sig: c_int) -> c_int;
    pub fn atexit(cb: extern "C" fn()) -> c_int;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_ticks() {
        let mut a = timespec::default();
        let mut b = timespec::default();
        unsafe {
            assert_eq!(clock_gettime(CLOCK_MONOTONIC, &mut a), 0);
            assert_eq!(clock_gettime(CLOCK_MONOTONIC, &mut b), 0);
        }
        assert!((b.tv_sec, b.tv_nsec) >= (a.tv_sec, a.tv_nsec));
    }

    #[test]
    fn pipe_write_read_round_trip() {
        let mut fds = [0 as c_int; 2];
        unsafe {
            assert_eq!(pipe(fds.as_mut_ptr()), 0);
            let msg = b"ping";
            assert_eq!(write(fds[1], msg.as_ptr().cast(), msg.len()), 4);
            let mut buf = [0u8; 4];
            assert_eq!(read(fds[0], buf.as_mut_ptr().cast(), 4), 4);
            assert_eq!(&buf, msg);
            close(fds[0]);
            close(fds[1]);
        }
    }
}
