//! §4.3 application bench: the scalar polyalgorithm — sequential
//! likelihood-ordered attempts vs Multiple-Worlds fastest-first — on
//! problems where the preferred method diverges.

use criterion::{criterion_group, criterion_main, Criterion};
use worlds::Speculation;
use worlds_poly::scalar::{standard_polyalgorithm, ScalarProblem};

/// atan from a far guess: Newton (tried first without a bracket hint)
/// diverges after scouting a bracket; bisection then finishes.
fn hostile_problem() -> ScalarProblem {
    ScalarProblem::new(|x| x.atan(), 2.0)
}

/// The classic cubic with a bracket: every method succeeds, Newton is
/// fastest.
fn friendly_problem() -> ScalarProblem {
    ScalarProblem::new(|x| x * x * x - 2.0 * x - 5.0, 2.0).bracket(2.0, 3.0)
}

fn bench(c: &mut Criterion) {
    let poly = standard_polyalgorithm();

    let mut g = c.benchmark_group("polyalgorithm");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_millis(900));
    g.warm_up_time(std::time::Duration::from_millis(200));

    for (name, problem) in [
        ("friendly", friendly_problem()),
        ("hostile", hostile_problem()),
    ] {
        let p = problem.clone();
        g.bench_function(format!("sequential/{name}"), move |b| {
            let poly = standard_polyalgorithm();
            b.iter(|| {
                let out = poly.run_sequential(&p);
                assert!(out.solved());
                out
            });
        });
        let p = problem;
        g.bench_function(format!("fastest_first/{name}"), move |b| {
            let poly = standard_polyalgorithm();
            b.iter(|| {
                let spec = Speculation::new();
                let out = poly.run_fastest_first(&spec, &p, None);
                assert!(out.solved());
                out
            });
        });
    }
    let _ = poly;
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
