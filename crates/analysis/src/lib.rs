//! # worlds-analysis — the paper's performance model
//!
//! §3 of "Exploring 'Multiple Worlds' in Parallel" derives when speculative
//! parallel execution of `N` alternatives beats the nondeterministic
//! sequential choice. With
//!
//! * `τ(C_best, λ) ≤ … ≤ τ(C_worst, λ)` the alternatives' runtimes on input
//!   `λ`,
//! * `τ(C_mean, λ)` their arithmetic mean (the expected cost of Scheme B:
//!   pick an alternative at random), and
//! * `τ(overhead)` the speculation machinery's cost,
//!
//! the **performance improvement** is
//!
//! ```text
//! PI = τ(C_mean) / (τ(C_best) + τ(overhead)) = (1 / (1 + Ro)) · Rμ
//! ```
//!
//! where `Rμ = τ(C_mean)/τ(C_best)` captures runtime *dispersion* and
//! `Ro = τ(overhead)/τ(C_best)` captures *overhead*. Parallel execution
//! wins iff `PI > 1`; with enough dispersion and little enough overhead,
//! `N` processors can deliver `PI > N` — superlinear speedup versus the
//! expected sequential cost.
//!
//! This crate implements that algebra ([`PerfModel`]), the whole-domain
//! extension of §3.3 ([`domain`]), the exact data series behind the paper's
//! Figures 3 and 4 ([`series`]), and a small ASCII plotter ([`plot`]) used
//! by the figure regenerators in `worlds-bench`.

pub mod domain;
pub mod export;
pub mod model;
pub mod plot;
pub mod series;
pub mod stats;

pub use domain::DomainAnalysis;
pub use export::{from_csv, to_csv, write_csv};
pub use model::PerfModel;
pub use series::{fig3_series, fig4_series, FigPoint};
