//! Fair submission: per-tenant deficit round-robin over the injector.
//!
//! The pool itself is greedy — whoever submits first runs first — which
//! is exactly wrong once many tenants share one [`Executor`]: a tenant
//! that dumps ten thousand tasks starves everyone behind it in the
//! injector. [`FairScheduler`] sits in front of the pool and meters
//! admission instead: each tenant gets a bounded FIFO queue, and a
//! deficit round-robin pass (Shreedhar & Varghese's DRR, the classic
//! packet-scheduling discipline) releases tasks into the pool. Every
//! visit tops a tenant's deficit up by one quantum; a task of cost `c`
//! may only leave when the deficit covers `c`. Over any window, tenants
//! with pending work therefore share released cost equally, no matter
//! how unbalanced their arrival rates are.
//!
//! Two bounds make it a backpressure device as well as a fairness one:
//!
//! * a **per-tenant queue cap** — a full queue fails [`submit`]
//!   immediately with [`Saturated`], which the server layer turns into
//!   `Nack::Overloaded` (the client backs off; nothing blocks), and
//! * a **global in-flight cap** — at most `max_inflight` released tasks
//!   occupy the pool at once, so a burst never floods the injector and
//!   the DRR pass, not the pool's steal order, decides who runs next.
//!
//! Completion is panic-safe: the released wrapper decrements the
//! in-flight count on drop, so a panicking task cannot wedge the
//! scheduler.
//!
//! [`submit`]: FairScheduler::submit

use crate::pool::Executor;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use worlds_obs::Registry;

type Task = Box<dyn FnOnce() + Send + 'static>;

/// Tuning knobs for a [`FairScheduler`].
#[derive(Debug, Clone, Copy)]
pub struct FairPolicy {
    /// Deficit added per round-robin visit. Costs are caller-defined
    /// units (the server layer passes virtual nanoseconds); a tenant
    /// whose head task costs more than one quantum simply waits more
    /// visits — expensive work is amortised, never refused.
    pub quantum: u64,
    /// Per-tenant queue bound; a full queue fails `submit`.
    pub queue_cap: usize,
    /// Released tasks allowed in the pool at once.
    pub max_inflight: usize,
}

impl Default for FairPolicy {
    fn default() -> FairPolicy {
        FairPolicy {
            quantum: 1_000_000,
            queue_cap: 64,
            max_inflight: 0, // 0 = twice the executor's worker count
        }
    }
}

/// `submit` refused a task because the tenant's queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Saturated {
    /// The tenant whose queue was full.
    pub key: u64,
    /// The queue bound it hit.
    pub cap: usize,
}

impl fmt::Display for Saturated {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant {} queue full ({} tasks)", self.key, self.cap)
    }
}

impl std::error::Error for Saturated {}

/// A tenant's scheduler-side counters, snapshotted under the lock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Tasks accepted into the queue.
    pub submitted: u64,
    /// Tasks whose released wrapper has finished (or unwound).
    pub completed: u64,
    /// Submissions refused with [`Saturated`].
    pub rejected: u64,
    /// Tasks queued, not yet released.
    pub queued: usize,
    /// Tasks released into the pool, not yet finished.
    pub inflight: usize,
}

struct Tenant {
    queue: VecDeque<(u64, Task)>,
    deficit: u64,
    in_ring: bool,
    inflight: usize,
    submitted: u64,
    completed: u64,
    rejected: u64,
}

impl Tenant {
    fn new() -> Tenant {
        Tenant {
            queue: VecDeque::new(),
            deficit: 0,
            in_ring: false,
            inflight: 0,
            submitted: 0,
            completed: 0,
            rejected: 0,
        }
    }

    fn idle(&self) -> bool {
        self.queue.is_empty() && self.inflight == 0
    }
}

struct State {
    tenants: HashMap<u64, Tenant>,
    /// Keys with queued work, in round-robin order.
    ring: VecDeque<u64>,
    inflight: usize,
}

struct Inner {
    exec: Executor,
    obs: Registry,
    quantum: u64,
    queue_cap: usize,
    max_inflight: usize,
    state: Mutex<State>,
    idle: Condvar,
}

/// See the module docs. Cloning shares the scheduler.
#[derive(Clone)]
pub struct FairScheduler {
    inner: Arc<Inner>,
}

impl FairScheduler {
    /// A scheduler releasing into `exec` under `policy`.
    pub fn new(exec: Executor, obs: Registry, policy: FairPolicy) -> FairScheduler {
        let max_inflight = if policy.max_inflight == 0 {
            exec.workers().saturating_mul(2).max(1)
        } else {
            policy.max_inflight
        };
        FairScheduler {
            inner: Arc::new(Inner {
                exec,
                obs,
                quantum: policy.quantum.max(1),
                queue_cap: policy.queue_cap.max(1),
                max_inflight,
                state: Mutex::new(State {
                    tenants: HashMap::new(),
                    ring: VecDeque::new(),
                    inflight: 0,
                }),
                idle: Condvar::new(),
            }),
        }
    }

    /// Queue `task` for tenant `key` at DRR cost `cost` (0 is treated
    /// as 1 so a flood of "free" tasks still round-robins). Fails
    /// immediately — never blocks — when the tenant's queue is full.
    pub fn submit(
        &self,
        key: u64,
        cost: u64,
        task: impl FnOnce() + Send + 'static,
    ) -> Result<(), Saturated> {
        let mut state = self.inner.state.lock().expect("fair lock");
        let tenant = state.tenants.entry(key).or_insert_with(Tenant::new);
        if tenant.queue.len() >= self.inner.queue_cap {
            tenant.rejected += 1;
            return Err(Saturated {
                key,
                cap: self.inner.queue_cap,
            });
        }
        tenant.submitted += 1;
        tenant.queue.push_back((cost.max(1), Box::new(task)));
        if !tenant.in_ring {
            tenant.in_ring = true;
            state.ring.push_back(key);
        }
        self.pump(&mut state);
        Ok(())
    }

    /// Drop every still-queued task for `key` (released ones run to
    /// completion). Returns how many were dropped.
    pub fn purge(&self, key: u64) -> usize {
        let mut state = self.inner.state.lock().expect("fair lock");
        let Some(tenant) = state.tenants.get_mut(&key) else {
            return 0;
        };
        let dropped = tenant.queue.len();
        tenant.queue.clear();
        if tenant.in_ring {
            tenant.in_ring = false;
            state.ring.retain(|&k| k != key);
        }
        if dropped > 0 && state.tenants.get(&key).is_none_or(Tenant::idle) {
            self.inner.idle.notify_all();
        }
        dropped
    }

    /// Block until tenant `key` has nothing queued and nothing in
    /// flight (trivially true for a tenant that never submitted).
    pub fn drain(&self, key: u64) {
        let mut state = self.inner.state.lock().expect("fair lock");
        while state.tenants.get(&key).is_some_and(|t| !t.idle()) {
            state = self.inner.idle.wait(state).expect("fair lock");
        }
    }

    /// The tenant's counters right now.
    pub fn stats(&self, key: u64) -> TenantStats {
        let state = self.inner.state.lock().expect("fair lock");
        match state.tenants.get(&key) {
            None => TenantStats::default(),
            Some(t) => TenantStats {
                submitted: t.submitted,
                completed: t.completed,
                rejected: t.rejected,
                queued: t.queue.len(),
                inflight: t.inflight,
            },
        }
    }

    /// Forget an idle tenant's bookkeeping entirely. No-op (returning
    /// `false`) while it still has queued or in-flight work.
    pub fn forget(&self, key: u64) -> bool {
        let mut state = self.inner.state.lock().expect("fair lock");
        if state.tenants.get(&key).is_some_and(|t| !t.idle()) {
            return false;
        }
        state.tenants.remove(&key).is_some()
    }

    /// One DRR pass: release queued tasks into the pool until the
    /// in-flight cap is hit or every queue is empty. Called with the
    /// lock held from `submit` and from task completion.
    fn pump(&self, state: &mut State) {
        while state.inflight < self.inner.max_inflight {
            let Some(&key) = state.ring.front() else {
                break;
            };
            let quantum = self.inner.quantum;
            let max_inflight = self.inner.max_inflight;
            let tenant = state.tenants.get_mut(&key).expect("ring key exists");
            tenant.deficit = tenant.deficit.saturating_add(quantum);
            let mut released: Vec<Task> = Vec::new();
            while state.inflight + released.len() < max_inflight {
                let Some(&(cost, _)) = tenant.queue.front() else {
                    break;
                };
                if tenant.deficit < cost {
                    break;
                }
                let (cost, task) = tenant.queue.pop_front().expect("front exists");
                tenant.deficit -= cost;
                released.push(task);
            }
            tenant.inflight += released.len();
            if tenant.queue.is_empty() {
                // An empty queue leaves the ring and forfeits its
                // deficit — classic DRR, so an idle tenant cannot bank
                // credit and burst past the others later.
                tenant.deficit = 0;
                tenant.in_ring = false;
                state.ring.pop_front();
            } else {
                // Still backlogged: move to the back of the ring so the
                // next visit serves someone else.
                state.ring.rotate_left(1);
            }
            state.inflight += released.len();
            for task in released {
                let inner = self.inner.clone();
                let obs = self.inner.obs.clone();
                self.inner.exec.spawn(&obs, move || {
                    // Completion bookkeeping on drop, so a panicking
                    // task still gives its in-flight slot back.
                    let _done = DoneGuard { inner, key };
                    task();
                });
            }
        }
    }
}

struct DoneGuard {
    inner: Arc<Inner>,
    key: u64,
}

impl Drop for DoneGuard {
    fn drop(&mut self) {
        let mut state = self.inner.state.lock().expect("fair lock");
        state.inflight -= 1;
        if let Some(tenant) = state.tenants.get_mut(&self.key) {
            tenant.inflight -= 1;
            tenant.completed += 1;
        }
        let sched = FairScheduler {
            inner: self.inner.clone(),
        };
        sched.pump(&mut state);
        if state.tenants.get(&self.key).is_none_or(Tenant::idle) {
            self.inner.idle.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    fn counting_task(log: &Arc<Mutex<Vec<u64>>>, key: u64) -> impl FnOnce() + Send + 'static {
        let log = log.clone();
        move || {
            std::thread::sleep(Duration::from_micros(200));
            log.lock().unwrap().push(key);
        }
    }

    #[test]
    fn hog_cannot_starve_a_light_tenant() {
        let exec = Executor::new(2);
        let fair = FairScheduler::new(
            exec.clone(),
            Registry::disabled(),
            FairPolicy {
                quantum: 1,
                queue_cap: 1024,
                max_inflight: 2,
            },
        );
        let log = Arc::new(Mutex::new(Vec::new()));
        // The hog floods first; the mouse trickles in afterwards.
        for _ in 0..200 {
            fair.submit(1, 1, counting_task(&log, 1)).unwrap();
        }
        for _ in 0..10 {
            fair.submit(2, 1, counting_task(&log, 2)).unwrap();
        }
        fair.drain(2);
        let order = log.lock().unwrap().clone();
        let mouse_done = order
            .iter()
            .enumerate()
            .filter(|&(_, &k)| k == 2)
            .map(|(i, _)| i)
            .max()
            .expect("mouse ran");
        let hog_before = order[..=mouse_done].iter().filter(|&&k| k == 1).count();
        // Round-robin means the mouse's 10 tasks complete alongside
        // roughly 10 hog tasks, not after the hog's entire backlog.
        assert!(
            hog_before < 100,
            "mouse finished after {hog_before} of 200 hog tasks — starved"
        );
        fair.drain(1);
        assert_eq!(fair.stats(1).completed, 200);
        assert_eq!(fair.stats(2).completed, 10);
        exec.shutdown();
    }

    #[test]
    fn full_queue_saturates_instead_of_blocking() {
        let exec = Executor::new(1);
        let fair = FairScheduler::new(
            exec.clone(),
            Registry::disabled(),
            FairPolicy {
                quantum: 1,
                queue_cap: 2,
                max_inflight: 1,
            },
        );
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let blocker = {
            let gate = gate.clone();
            move || {
                let (lock, cv) = &*gate;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
            }
        };
        // One in flight (held at the gate) + two queued = full.
        fair.submit(7, 1, blocker).unwrap();
        fair.submit(7, 1, || {}).unwrap();
        fair.submit(7, 1, || {}).unwrap();
        let err = fair.submit(7, 1, || {}).unwrap_err();
        assert_eq!(err, Saturated { key: 7, cap: 2 });
        assert_eq!(fair.stats(7).rejected, 1);
        // Another tenant is unaffected by 7's saturation.
        fair.submit(8, 1, || {}).unwrap();
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        fair.drain(7);
        fair.drain(8);
        assert_eq!(fair.stats(7).completed, 3);
        assert_eq!(fair.stats(8).completed, 1);
        exec.shutdown();
    }

    #[test]
    fn purge_drops_queued_work_and_drain_returns() {
        let exec = Executor::new(1);
        let fair = FairScheduler::new(
            exec.clone(),
            Registry::disabled(),
            FairPolicy {
                quantum: 1,
                queue_cap: 64,
                max_inflight: 1,
            },
        );
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let ran = Arc::new(AtomicU64::new(0));
        {
            let gate = gate.clone();
            fair.submit(3, 1, move || {
                let (lock, cv) = &*gate;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
            })
            .unwrap();
        }
        for _ in 0..5 {
            let ran = ran.clone();
            fair.submit(3, 1, move || {
                ran.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        assert_eq!(fair.purge(3), 5, "all queued tasks dropped");
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        fair.drain(3);
        assert_eq!(ran.load(Ordering::Relaxed), 0, "purged tasks never ran");
        assert_eq!(fair.stats(3).completed, 1, "only the in-flight blocker");
        assert!(fair.forget(3));
        assert_eq!(fair.stats(3), TenantStats::default());
        exec.shutdown();
    }

    #[test]
    fn costly_tasks_wait_more_visits_but_run() {
        let exec = Executor::new(1);
        let fair = FairScheduler::new(
            exec.clone(),
            Registry::disabled(),
            FairPolicy {
                quantum: 10,
                queue_cap: 8,
                max_inflight: 1,
            },
        );
        let ran = Arc::new(AtomicU64::new(0));
        let r = ran.clone();
        // Cost far above one quantum: served only once the deficit
        // accumulates across visits.
        fair.submit(1, 95, move || {
            r.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
        fair.drain(1);
        assert_eq!(ran.load(Ordering::Relaxed), 1);
        exec.shutdown();
    }
}
