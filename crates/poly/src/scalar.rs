//! A concrete polyalgorithm instance: scalar root finding.
//!
//! Three textbook methods with genuinely different success envelopes —
//! the precondition the paper sets for Multiple Worlds to pay off
//! ("expected performance differences between the alternatives, due to
//! data dependencies or use of heuristic methods"):
//!
//! * **bisection** — needs a sign-change bracket; never diverges; slow;
//! * **Newton** — needs only a guess; quadratic near the root; diverges
//!   happily on steep/flat regions (and *learns* where it blew up);
//! * **secant** — derivative-free middle ground.

use std::fmt;
use std::sync::Arc;

use crate::knowledge::Knowledge;
use crate::method::{Method, MethodError};
use crate::Polyalgorithm;

/// A scalar root-finding problem: find `x` with `f(x) = 0`.
#[derive(Clone)]
pub struct ScalarProblem {
    /// The function.
    pub f: Arc<dyn Fn(f64) -> f64 + Send + Sync>,
    /// A sign-change bracket, if the caller has one.
    pub bracket: Option<(f64, f64)>,
    /// An initial guess for open methods.
    pub guess: f64,
    /// Absolute residual tolerance.
    pub tol: f64,
}

impl ScalarProblem {
    /// A problem from a function and a guess (no bracket).
    pub fn new(f: impl Fn(f64) -> f64 + Send + Sync + 'static, guess: f64) -> Self {
        ScalarProblem {
            f: Arc::new(f),
            bracket: None,
            guess,
            tol: 1e-10,
        }
    }

    /// Provide a bracket (builder).
    pub fn bracket(mut self, lo: f64, hi: f64) -> Self {
        self.bracket = Some((lo, hi));
        self
    }

    /// Override the tolerance (builder).
    pub fn tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Evaluate `f`.
    pub fn eval(&self, x: f64) -> f64 {
        (self.f)(x)
    }

    /// Is `x` a root to tolerance?
    pub fn is_root(&self, x: f64) -> bool {
        self.eval(x).abs() <= self.tol
    }
}

impl fmt::Debug for ScalarProblem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScalarProblem")
            .field("bracket", &self.bracket)
            .field("guess", &self.guess)
            .field("tol", &self.tol)
            .finish()
    }
}

/// Bisection: robust whenever a sign-change bracket exists (from the
/// problem or learned by a previous method's scouting).
pub fn bisection() -> Method<ScalarProblem, f64> {
    Method::with_likelihood(
        "bisection",
        |p: &ScalarProblem, k: &Knowledge| {
            if p.bracket.is_some()
                || (k.fact("bracket_lo").is_some() && k.fact("bracket_hi").is_some())
            {
                0.95
            } else {
                0.05
            }
        },
        |p, k| {
            let (mut lo, mut hi) = match p
                .bracket
                .or_else(|| Some((k.fact("bracket_lo")?, k.fact("bracket_hi")?)))
            {
                Some(b) => b,
                None => return Err(MethodError::NotApplicable("no bracket".into())),
            };
            let (flo, fhi) = (p.eval(lo), p.eval(hi));
            if flo == 0.0 {
                return Ok(lo);
            }
            if fhi == 0.0 {
                return Ok(hi);
            }
            if flo.signum() == fhi.signum() {
                return Err(MethodError::NotApplicable(format!(
                    "no sign change on [{lo}, {hi}]"
                )));
            }
            let mut flo = flo;
            for _ in 0..200 {
                let mid = 0.5 * (lo + hi);
                let fmid = p.eval(mid);
                if fmid.abs() <= p.tol || (hi - lo).abs() <= f64::EPSILON * mid.abs().max(1.0) {
                    return Ok(mid);
                }
                if flo.signum() == fmid.signum() {
                    lo = mid;
                    flo = fmid;
                } else {
                    hi = mid;
                }
            }
            Err(MethodError::Diverged("bisection iteration cap".into()))
        },
    )
}

/// Newton with a central-difference derivative. Fails informatively: a
/// divergence records the last iterate and, when it stumbled across a
/// sign change on the way, a bracket for bisection to use.
pub fn newton(max_iters: usize) -> Method<ScalarProblem, f64> {
    Method::with_likelihood(
        "newton",
        |_, k: &Knowledge| if k.has_failed("newton") { 0.0 } else { 0.6 },
        move |p: &ScalarProblem, k: &mut Knowledge| {
            let mut x = p.guess;
            let mut prev = (x, p.eval(x));
            for _ in 0..max_iters {
                let fx = p.eval(x);
                if fx.abs() <= p.tol {
                    return Ok(x);
                }
                // Opportunistic bracket scouting for later methods.
                if fx.signum() != prev.1.signum() && prev.1.is_finite() {
                    k.learn("bracket_lo", prev.0.min(x));
                    k.learn("bracket_hi", prev.0.max(x));
                }
                prev = (x, fx);
                let h = 1e-6 * x.abs().max(1.0);
                let d = (p.eval(x + h) - p.eval(x - h)) / (2.0 * h);
                if d.abs() < 1e-300 {
                    k.learn("flat_at", x);
                    return Err(MethodError::Diverged(format!("flat derivative at {x}")));
                }
                let next = x - fx / d;
                if !next.is_finite() || next.abs() > 1e12 {
                    k.learn("last_iterate", x);
                    return Err(MethodError::Diverged(format!("iterate escaped from {x}")));
                }
                x = next;
            }
            k.learn("last_iterate", x);
            Err(MethodError::Diverged(format!(
                "no convergence after {max_iters} iters"
            )))
        },
    )
}

/// Secant from `guess` and `guess + 1`.
pub fn secant(max_iters: usize) -> Method<ScalarProblem, f64> {
    Method::new(
        "secant",
        0.5,
        move |p: &ScalarProblem, k: &mut Knowledge| {
            let (mut x0, mut x1) = (p.guess, p.guess + 1.0);
            let (mut f0, mut f1) = (p.eval(x0), p.eval(x1));
            for _ in 0..max_iters {
                if f1.abs() <= p.tol {
                    return Ok(x1);
                }
                if f0.signum() != f1.signum() {
                    k.learn("bracket_lo", x0.min(x1));
                    k.learn("bracket_hi", x0.max(x1));
                }
                let denom = f1 - f0;
                if denom.abs() < 1e-300 {
                    return Err(MethodError::Diverged(format!("flat secant at {x1}")));
                }
                let next = x1 - f1 * (x1 - x0) / denom;
                if !next.is_finite() || next.abs() > 1e12 {
                    k.learn("last_iterate", x1);
                    return Err(MethodError::Diverged(format!("iterate escaped from {x1}")));
                }
                x0 = x1;
                f0 = f1;
                x1 = next;
                f1 = p.eval(x1);
            }
            k.learn("last_iterate", x1);
            Err(MethodError::Diverged(format!(
                "no convergence after {max_iters} iters"
            )))
        },
    )
}

/// The standard scalar polyalgorithm: Newton, secant, bisection, with
/// their likelihood heuristics.
pub fn standard_polyalgorithm() -> Polyalgorithm<ScalarProblem, f64> {
    Polyalgorithm::new()
        .method(newton(60))
        .method(secant(80))
        .method(bisection())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PolyOutcome;

    fn classic() -> ScalarProblem {
        // x³ − 2x − 5: the root Newton was born for (x ≈ 2.0945514).
        ScalarProblem::new(|x| x * x * x - 2.0 * x - 5.0, 2.0).bracket(2.0, 3.0)
    }

    #[test]
    fn each_method_solves_the_classic() {
        for m in [newton(60), secant(80), bisection()] {
            let mut k = Knowledge::new();
            let x = m.attempt(&classic(), &mut k).unwrap_or_else(|e| {
                panic!("{} failed: {e}", m.name);
            });
            assert!((x - 2.094551481542327).abs() < 1e-7, "{}: x = {x}", m.name);
        }
    }

    #[test]
    fn bisection_demands_a_bracket() {
        let no_bracket = ScalarProblem::new(|x| x - 1.0, 0.0);
        let mut k = Knowledge::new();
        assert!(matches!(
            bisection().attempt(&no_bracket, &mut k),
            Err(MethodError::NotApplicable(_))
        ));
        // …but accepts one learned by a scout.
        k.learn("bracket_lo", 0.0);
        k.learn("bracket_hi", 2.0);
        let x = bisection().attempt(&no_bracket, &mut k).unwrap();
        assert!((x - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bisection_rejects_same_sign_bracket() {
        let p = ScalarProblem::new(|x| x * x + 1.0, 0.0).bracket(-1.0, 1.0);
        assert!(matches!(
            bisection().attempt(&p, &mut Knowledge::new()),
            Err(MethodError::NotApplicable(_))
        ));
    }

    #[test]
    fn newton_diverges_on_steep_sigmoid_from_far_guess() {
        // tanh(20x) from x = 3: Newton's first step overshoots violently.
        let p = ScalarProblem::new(|x| (20.0 * x).tanh(), 3.0);
        let mut k = Knowledge::new();
        let r = newton(60).attempt(&p, &mut k);
        assert!(r.is_err(), "expected divergence, got {r:?}");
        assert!(
            k.fact("last_iterate").is_some() || k.fact("flat_at").is_some(),
            "failure must leave information behind"
        );
    }

    #[test]
    fn sequential_polyalgorithm_solves_where_newton_cannot() {
        // With a bracket supplied, the likelihood heuristic puts bisection
        // first and it solves outright; Newton would have diverged.
        let p = ScalarProblem::new(|x| (20.0 * x).tanh(), 3.0).bracket(-1.0, 2.0);
        match standard_polyalgorithm().run_sequential(&p) {
            PolyOutcome::Solved { result, method, .. } => {
                assert!(result.abs() < 1e-6, "root of tanh is 0, got {result}");
                assert_ne!(method, "newton", "newton diverges from x=3 on this problem");
            }
            other => panic!("expected solved, got {other:?}"),
        }
    }

    #[test]
    fn sequential_polyalgorithm_recovers_via_learned_knowledge() {
        // No bracket given: the plan is newton → secant → bisection.
        // Newton on atan(x) from x = 2 overshoots with alternating signs —
        // diverging, but *scouting a bracket* on the way; bisection (whose
        // likelihood jumps once a bracket is known) then uses it.
        let p = ScalarProblem::new(|x| x.atan(), 2.0);
        let out = standard_polyalgorithm().run_sequential(&p);
        match out {
            PolyOutcome::Solved {
                result,
                method,
                attempts,
            } => {
                assert!(result.abs() < 1e-6, "root of tanh is 0, got {result}");
                assert!(
                    attempts >= 2,
                    "the first method must have failed (got {method})"
                );
            }
            PolyOutcome::Unsolved(k) => {
                // Acceptable only if no method ever scouted a bracket —
                // make the failure informative.
                panic!("expected a recovery; knowledge was {k:?}");
            }
        }
    }

    #[test]
    fn fastest_first_beats_the_method_ladder_to_an_answer() {
        let p = ScalarProblem::new(|x| (20.0 * x).tanh(), 3.0).bracket(-1.0, 2.0);
        let spec = worlds::Speculation::new();
        match standard_polyalgorithm().run_fastest_first(&spec, &p, None) {
            PolyOutcome::Solved { result, .. } => {
                assert!(result.abs() < 1e-6, "root of tanh is 0, got {result}");
            }
            other => panic!("expected solved, got {other:?}"),
        }
    }

    #[test]
    fn transcendental_problems() {
        // cos x = x and e^x = 3.
        let fixed_point = ScalarProblem::new(|x| x.cos() - x, 0.5).bracket(0.0, 1.0);
        let exp3 = ScalarProblem::new(|x| x.exp() - 3.0, 1.0).bracket(0.0, 2.0);
        for (p, expect) in [(fixed_point, 0.7390851332151607), (exp3, 3.0f64.ln())] {
            let out = standard_polyalgorithm().run_sequential(&p);
            match out {
                PolyOutcome::Solved { result, .. } => {
                    assert!(
                        (result - expect).abs() < 1e-7,
                        "got {result}, want {expect}"
                    )
                }
                other => panic!("expected solved, got {other:?}"),
            }
        }
    }
}
