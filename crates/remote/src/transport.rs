//! Pluggable byte movers: how cluster state actually travels.
//!
//! The [`Cluster`](crate::Cluster) decides *what* to ship (checkpoint
//! images, dirty pages), *what it costs* (the [`NetModel`](crate::NetModel)
//! virtual-time account, fault doubling included) and *when* (the
//! distributed block's serial-rfork schedule). The [`Transport`] decides
//! only *how the bytes get to the other store*:
//!
//! * [`InProcess`] applies them directly — today's simulation semantics,
//!   zero real I/O, exactly the behaviour every existing test encodes.
//! * [`Tcp`] runs one `worlds-net` [`NetNode`] per node and pushes every
//!   image and page over real loopback sockets, through real framing,
//!   deadlines and retries — and, when a fault schedule is armed, through
//!   a real [`FaultProxy`] per node that drops and mangles frames.
//!
//! Both transports are driven by the same [`FaultSchedule`] consulted at
//! the same logical op numbering, so "fault op 3" means *virtual cost
//! doubles* on `InProcess` and *the frame really vanishes* (timeout,
//! backoff, retransmit) on `Tcp` — one seed, one retry sequence, two
//! wires. The distributed-block outcome and the committed page bytes are
//! identical on both; `tests/transport_parity.rs` holds that line.

use std::collections::{HashMap, VecDeque};
use worlds_net::{
    Conn, FaultProxy, FaultSchedule, NetError, NetNode, OpLedger, Pool, Request, RetryPolicy,
};
use worlds_obs::Registry;
use worlds_pagestore::{restore, PageStore, PageStoreError, WorldId};

/// The byte-moving half of a cluster. Node indexes are positions in the
/// cluster's node list; world ids are raw (cluster stores share one id
/// allocator, so they are unambiguous).
pub trait Transport {
    /// Restore a checkpoint image (v1 full or v2 delta) into node
    /// `dst`'s store; returns the new world's id.
    fn ship_image(&mut self, dst: usize, image: &[u8]) -> Result<u64, PageStoreError>;

    /// Apply dirty pages to world `base` in node `dst`'s store.
    fn ship_pages(
        &mut self,
        dst: usize,
        base: u64,
        pages: &[(u64, Vec<u8>)],
    ) -> Result<(), PageStoreError>;

    /// Ask node `dst` which page-content hashes its store already holds
    /// (the v3 content-delta manifest round-trip). Answers are hints:
    /// the receiver re-verifies by re-hashing at apply time, so a stale
    /// `true` costs a fallback to shipping bytes, never corruption.
    fn probe_hashes(&mut self, dst: usize, hashes: &[u64]) -> Result<Vec<bool>, PageStoreError>;

    /// Drop `world` on node `dst`.
    fn discard(&mut self, dst: usize, world: u64) -> Result<(), PageStoreError>;

    /// Re-arm wire-level fault injection. `InProcess` has no wire, so
    /// this is a no-op there (the cluster's virtual cost doubling is the
    /// whole fault); `Tcp` rebuilds its fault proxies with the new
    /// schedule and a fresh op numbering.
    fn set_fault_schedule(&mut self, schedule: FaultSchedule);

    /// `"in-process"` or `"tcp"` — for reports and diagnostics.
    fn name(&self) -> &'static str;

    /// The serving [`NetNode`]s behind this transport, one per cluster
    /// node — empty when there is no wire (`InProcess`). The telemetry
    /// plane uses these to install per-node query handlers without the
    /// cluster knowing telemetry exists.
    fn nodes(&self) -> &[NetNode] {
        &[]
    }
}

/// Direct store-to-store application: the simulation transport.
pub struct InProcess {
    stores: Vec<PageStore>,
}

impl InProcess {
    /// A transport applying operations straight to `stores` (cheap
    /// clones sharing state with the cluster's nodes).
    pub fn new(stores: Vec<PageStore>) -> InProcess {
        InProcess { stores }
    }
}

impl Transport for InProcess {
    fn ship_image(&mut self, dst: usize, image: &[u8]) -> Result<u64, PageStoreError> {
        restore(&self.stores[dst], image).map(WorldId::raw)
    }

    fn ship_pages(
        &mut self,
        dst: usize,
        base: u64,
        pages: &[(u64, Vec<u8>)],
    ) -> Result<(), PageStoreError> {
        let base = WorldId::from_raw(base);
        for (vpn, data) in pages {
            self.stores[dst].write(base, *vpn, 0, data)?;
        }
        Ok(())
    }

    fn probe_hashes(&mut self, dst: usize, hashes: &[u64]) -> Result<Vec<bool>, PageStoreError> {
        Ok(hashes
            .iter()
            .map(|&h| self.stores[dst].content_probe(h))
            .collect())
    }

    fn discard(&mut self, dst: usize, world: u64) -> Result<(), PageStoreError> {
        self.stores[dst].drop_world(WorldId::from_raw(world))
    }

    fn set_fault_schedule(&mut self, _schedule: FaultSchedule) {}

    fn name(&self) -> &'static str {
        "in-process"
    }
}

/// Real sockets: every node's store behind a loopback [`NetNode`], every
/// operation a framed RPC with deadlines and retries. With a fault
/// schedule armed, accounted operations (rfork, commit-back) route
/// through a per-node [`FaultProxy`]; unaccounted chatter (discards)
/// always goes direct, so wire faults land on exactly the ops the
/// cluster's virtual cost model faults.
pub struct Tcp {
    servers: Vec<NetNode>,
    /// Un-proxied connections: discards and other unaccounted traffic.
    direct: Pool,
    /// Proxied connections for accounted ops; `None` when no schedule.
    proxies: Vec<FaultProxy>,
    proxied: Option<Pool>,
    policy: RetryPolicy,
    obs: Registry,
}

impl Tcp {
    /// Start one [`NetNode`] per store and connect a client pool.
    pub fn serve(stores: &[PageStore], obs: Registry) -> std::io::Result<Tcp> {
        Tcp::serve_with_policy(stores, obs, RetryPolicy::fast())
    }

    /// [`Tcp::serve`] with an explicit client retry policy.
    pub fn serve_with_policy(
        stores: &[PageStore],
        obs: Registry,
        policy: RetryPolicy,
    ) -> std::io::Result<Tcp> {
        let mut servers = Vec::with_capacity(stores.len());
        let mut direct = Pool::new(policy, obs.clone());
        for (i, store) in stores.iter().enumerate() {
            let node = NetNode::serve(i as u64, store.clone(), obs.clone())?;
            direct.register(i as u64, node.addr());
            servers.push(node);
        }
        Ok(Tcp {
            servers,
            direct,
            proxies: Vec::new(),
            proxied: None,
            policy,
            obs,
        })
    }

    /// The connection accounted ops should use: through the fault
    /// proxies when armed, direct otherwise.
    fn accounted(&mut self, dst: usize) -> Result<&mut Conn, PageStoreError> {
        let pool = self.proxied.as_mut().unwrap_or(&mut self.direct);
        pool.conn(dst as u64)
            .ok_or_else(|| net_err(dst, &NetError::Protocol("node not registered".into())))
    }
}

/// Map a transport failure into the cluster's error vocabulary.
fn net_err(dst: usize, e: &NetError) -> PageStoreError {
    // A Nack about a missing world keeps its precise meaning.
    if let NetError::Nack {
        code: worlds_net::nack::NO_SUCH_WORLD,
        detail,
    } = e
    {
        if let Some(id) = detail
            .rsplit(|c: char| !c.is_ascii_digit())
            .find(|s| !s.is_empty())
            .and_then(|s| s.parse().ok())
        {
            return PageStoreError::NoSuchWorld(id);
        }
    }
    PageStoreError::NoSuchFile(format!("tcp transport, node {dst}: {e}"))
}

impl Transport for Tcp {
    fn ship_image(&mut self, dst: usize, image: &[u8]) -> Result<u64, PageStoreError> {
        let req = Request::Rfork {
            image: image.to_vec(),
        };
        self.accounted(dst)?
            .call_ack(&req)
            .map_err(|e| net_err(dst, &e))
    }

    fn ship_pages(
        &mut self,
        dst: usize,
        base: u64,
        pages: &[(u64, Vec<u8>)],
    ) -> Result<(), PageStoreError> {
        let req = Request::CommitBack {
            base,
            pages: pages.to_vec(),
        };
        self.accounted(dst)?
            .call_ack(&req)
            .map(|_| ())
            .map_err(|e| net_err(dst, &e))
    }

    fn probe_hashes(&mut self, dst: usize, hashes: &[u64]) -> Result<Vec<bool>, PageStoreError> {
        // Accounted: the probe is part of an rfork's cost, and routing it
        // through the fault proxies keeps the wire's op numbering aligned
        // with the cluster's virtual one.
        self.accounted(dst)?
            .call_present(hashes.to_vec())
            .map_err(|e| net_err(dst, &e))
    }

    fn discard(&mut self, dst: usize, world: u64) -> Result<(), PageStoreError> {
        self.direct
            .call_ack(dst as u64, &Request::Discard { world })
            .map(|_| ())
            .map_err(|e| net_err(dst, &e))
    }

    fn set_fault_schedule(&mut self, schedule: FaultSchedule) {
        // Old proxies (and the pool pointing at them) wind down on drop.
        self.proxied = None;
        self.proxies.clear();
        if !schedule.is_active() {
            return;
        }
        let ops = OpLedger::new();
        let mut pool = Pool::new(self.policy, self.obs.clone());
        for (i, server) in self.servers.iter().enumerate() {
            match FaultProxy::spawn_with_ops(server.addr(), schedule, self.obs.clone(), ops.clone())
            {
                Ok(proxy) => {
                    pool.register(i as u64, proxy.addr());
                    self.proxies.push(proxy);
                }
                Err(e) => {
                    // No proxy, no wire faults for this node; the
                    // virtual cost model still accounts them.
                    eprintln!("worlds-remote: fault proxy for node {i} failed: {e}");
                    pool.register(i as u64, server.addr());
                }
            }
        }
        self.proxied = Some(pool);
    }

    fn name(&self) -> &'static str {
        "tcp"
    }

    fn nodes(&self) -> &[NetNode] {
        &self.servers
    }
}

impl Drop for Tcp {
    fn drop(&mut self) {
        for proxy in &self.proxies {
            proxy.shutdown();
        }
        for server in &self.servers {
            server.shutdown();
        }
    }
}

/// Environment variable overriding the delta-rfork cache's byte budget.
pub const CACHE_BYTES_ENV: &str = "WORLDS_NET_CACHE_BYTES";

/// Default pinned-base budget when [`CACHE_BYTES_ENV`] is unset: 64 MiB.
pub const CACHE_BYTES_DEFAULT: u64 = 64 * 1024 * 1024;

/// The delta-rfork base cache: per (destination node, source world), the
/// locally pinned snapshot of what was shipped and the pinned replica id
/// on the destination. See [`crate::Cluster::set_delta_rfork`].
///
/// LRU-bounded by a byte budget ([`CACHE_BYTES_ENV`], default 64 MiB):
/// each entry is charged the full image that pinned it, and inserting
/// past the budget evicts least-recently-forked entries — the caller
/// releases their pinned worlds and emits `net_cache_evict`. The
/// most-recent entry is never evicted, even when it alone exceeds the
/// budget: evicting it would force a full re-ship on every rfork, which
/// is strictly worse than briefly exceeding the budget.
#[derive(Debug)]
pub struct DeltaCache {
    entries: HashMap<(usize, u64), DeltaBase>,
    /// Keys oldest-first; `get` refreshes, `insert` appends.
    order: VecDeque<(usize, u64)>,
    bytes: u64,
    budget: u64,
    evictions: u64,
    evicted_bytes: u64,
}

impl Default for DeltaCache {
    fn default() -> DeltaCache {
        let budget = std::env::var(CACHE_BYTES_ENV)
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(CACHE_BYTES_DEFAULT);
        DeltaCache::with_budget(budget)
    }
}

/// One pinned shipment: `snapshot` lives in the source node's store (the
/// exact bytes that were shipped), `replica` lives on the destination
/// node. Neither is ever handed out, so block logic can never drop them.
#[derive(Debug, Clone, Copy)]
pub struct DeltaBase {
    /// Which node holds the snapshot (the rfork source).
    pub src_node: usize,
    /// Source-store world frozen at ship time.
    pub snapshot: WorldId,
    /// The pinned replica's raw id on the destination store.
    pub replica: u64,
    /// What this entry costs the budget: the full image that pinned it
    /// (one copy here, one there — charging the shipped size covers
    /// both to a page of accuracy).
    pub bytes: u64,
}

impl DeltaCache {
    /// A cache bounded to `budget` pinned bytes.
    pub fn with_budget(budget: u64) -> DeltaCache {
        DeltaCache {
            entries: HashMap::new(),
            order: VecDeque::new(),
            bytes: 0,
            budget,
            evictions: 0,
            evicted_bytes: 0,
        }
    }

    pub fn get(&mut self, dst: usize, src: WorldId) -> Option<DeltaBase> {
        let key = (dst, src.raw());
        let hit = self.entries.get(&key).copied();
        if hit.is_some() {
            // Refresh recency: this base was just used for a delta.
            if let Some(pos) = self.order.iter().position(|&k| k == key) {
                self.order.remove(pos);
                self.order.push_back(key);
            }
        }
        hit
    }

    /// Insert a pinned base, evicting least-recently-used entries past
    /// the byte budget. Returns the evicted entries; the caller must
    /// release their pinned worlds (snapshot and replica).
    pub fn insert(&mut self, dst: usize, src: WorldId, base: DeltaBase) -> Vec<(usize, DeltaBase)> {
        let key = (dst, src.raw());
        if let Some(old) = self.entries.insert(key, base) {
            self.bytes -= old.bytes;
            if let Some(pos) = self.order.iter().position(|&k| k == key) {
                self.order.remove(pos);
            }
        }
        self.bytes += base.bytes;
        self.order.push_back(key);
        self.evict_to_budget()
    }

    /// Re-bound the cache, evicting down to the new budget immediately.
    pub fn set_budget(&mut self, budget: u64) -> Vec<(usize, DeltaBase)> {
        self.budget = budget;
        self.evict_to_budget()
    }

    fn evict_to_budget(&mut self) -> Vec<(usize, DeltaBase)> {
        let mut evicted = Vec::new();
        while self.bytes > self.budget && self.order.len() > 1 {
            let key = self.order.pop_front().expect("len checked");
            let base = self.entries.remove(&key).expect("order tracks entries");
            self.bytes -= base.bytes;
            self.evictions += 1;
            self.evicted_bytes += base.bytes;
            evicted.push((key.0, base));
        }
        evicted
    }

    /// Pinned bytes currently charged against the budget.
    pub fn resident_bytes(&self) -> u64 {
        self.bytes
    }

    /// Lifetime `(evictions, evicted_bytes)` — surfaced by
    /// `worlds-report --net`.
    pub fn eviction_stats(&self) -> (u64, u64) {
        (self.evictions, self.evicted_bytes)
    }

    /// Empty the cache, yielding each entry's destination node and base
    /// so the caller can release the pinned worlds. Not counted as
    /// evictions: this is teardown, not budget pressure.
    pub fn drain(&mut self) -> Vec<(usize, DeltaBase)> {
        self.order.clear();
        self.bytes = 0;
        self.entries.drain().map(|((dst, _), b)| (dst, b)).collect()
    }
}
