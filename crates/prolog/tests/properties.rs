//! Property-based tests of the Horn-clause engine.

use proptest::prelude::*;
use worlds_prolog::{parse_query, solve, unify, Database, SolveConfig, Subst, Term};

/// Random ground (variable-free) terms.
fn arb_ground(depth: u32) -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        "[a-d]{1,3}".prop_map(Term::Atom),
        (-20i64..20).prop_map(Term::Int),
    ];
    leaf.prop_recursive(depth, 16, 3, |inner| {
        ("[f-h]", proptest::collection::vec(inner, 1..3))
            .prop_map(|(f, args)| Term::Compound(f, args))
    })
}

/// Random terms that may contain variables X, Y, Z.
fn arb_term(depth: u32) -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        "[a-d]{1,3}".prop_map(Term::Atom),
        (-20i64..20).prop_map(Term::Int),
        prop_oneof![Just("X"), Just("Y"), Just("Z")].prop_map(Term::var),
    ];
    leaf.prop_recursive(depth, 16, 3, |inner| {
        ("[f-h]", proptest::collection::vec(inner, 1..3))
            .prop_map(|(f, args)| Term::Compound(f, args))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A ground term unifies with itself and the substitution stays empty.
    #[test]
    fn ground_self_unification_is_trivial(t in arb_ground(3)) {
        let mut s = Subst::new();
        prop_assert!(unify(&mut s, &t, &t));
        prop_assert!(s.is_empty());
    }

    /// Two distinct ground terms unify iff they are equal.
    #[test]
    fn ground_unification_is_equality(a in arb_ground(2), b in arb_ground(2)) {
        let mut s = Subst::new();
        prop_assert_eq!(unify(&mut s, &a, &b), a == b);
    }

    /// A variable unifies with any ground term, and resolution then maps
    /// it to exactly that term.
    #[test]
    fn variable_binds_to_anything_ground(t in arb_ground(3)) {
        let mut s = Subst::new();
        prop_assert!(unify(&mut s, &Term::var("X"), &t));
        prop_assert_eq!(s.resolve(&Term::var("X")), t);
    }

    /// Unification is symmetric in outcome: unify(a, b) succeeds iff
    /// unify(b, a) does, and the resolved forms agree.
    #[test]
    fn unification_is_symmetric(a in arb_term(2), b in arb_term(2)) {
        let mut s1 = Subst::new();
        let mut s2 = Subst::new();
        let r1 = unify(&mut s1, &a, &b);
        let r2 = unify(&mut s2, &b, &a);
        prop_assert_eq!(r1, r2);
        if r1 {
            prop_assert_eq!(s1.resolve(&a), s1.resolve(&b), "unifier must equate the terms");
            prop_assert_eq!(s2.resolve(&a), s2.resolve(&b));
        }
    }

    /// After successful unification, applying the substitution yields a
    /// common instance — resolving twice changes nothing (idempotence).
    #[test]
    fn resolution_is_idempotent(a in arb_term(2), b in arb_term(2)) {
        let mut s = Subst::new();
        if unify(&mut s, &a, &b) {
            let ra = s.resolve(&a);
            prop_assert_eq!(s.resolve(&ra), ra.clone());
        }
    }

    /// Database facts: every stored ground fact is derivable, and queries
    /// with a variable enumerate exactly the stored facts in order.
    #[test]
    fn facts_are_what_you_can_prove(names in proptest::collection::btree_set("[a-z]{2,5}", 1..8)) {
        let mut src = String::new();
        for n in &names {
            src.push_str(&format!("item({n}).\n"));
        }
        let db = Database::consult(&src).unwrap();
        let cfg = SolveConfig::default();
        // Each fact is provable.
        for n in &names {
            let goals = parse_query(&format!("item({n})")).unwrap();
            let (sols, _) = solve(&db, &goals, &cfg);
            prop_assert_eq!(sols.len(), 1, "item({}) must be provable", n);
        }
        // A non-fact is not.
        let goals = parse_query("item(zzzzzz)").unwrap();
        let (sols, _) = solve(&db, &goals, &cfg);
        prop_assert!(sols.is_empty());
        // Enumeration matches insertion order.
        let goals = parse_query("item(X)").unwrap();
        let (sols, _) = solve(&db, &goals, &cfg);
        let got: Vec<String> = sols.iter().map(|b| b["X"].to_string()).collect();
        let want: Vec<String> = names.iter().cloned().collect();
        prop_assert_eq!(got, want);
    }

    /// Parser round trip: rendering any term and re-parsing it yields the
    /// same term (for parseable terms: our renderer and parser agree).
    #[test]
    fn parser_display_round_trip(t in arb_term(3)) {
        let rendered = t.to_string();
        let q = format!("wrap({rendered})");
        let parsed = parse_query(&q).expect("rendered terms must re-parse");
        let Term::Compound(_, args) = &parsed[0] else { panic!("wrap expected") };
        prop_assert_eq!(&args[0], &t, "round trip changed the term: {}", rendered);
    }

    /// list append: app(A, B, C) really concatenates, for random lists.
    #[test]
    fn append_concatenates(
        xs in proptest::collection::vec(0i64..50, 0..6),
        ys in proptest::collection::vec(0i64..50, 0..6),
    ) {
        let db = Database::consult(
            "app([], L, L).\napp([H|T], L, [H|R]) :- app(T, L, R).",
        ).unwrap();
        let list = |v: &[i64]| {
            let items: Vec<String> = v.iter().map(|i| i.to_string()).collect();
            format!("[{}]", items.join(","))
        };
        let q = format!("app({}, {}, C)", list(&xs), list(&ys));
        let goals = parse_query(&q).unwrap();
        let (sols, _) = solve(&db, &goals, &SolveConfig::default());
        prop_assert_eq!(sols.len(), 1);
        let mut all = xs.clone();
        all.extend(&ys);
        prop_assert_eq!(sols[0]["C"].to_string(), list(&all));
    }
}
