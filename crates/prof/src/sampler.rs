//! The watcher thread: samples every marker slot at a fixed rate,
//! accumulates attribution tables, flushes them as obs events, and
//! doubles as the stall watchdog.
//!
//! One sample = one consistent read of one slot. Accounting is
//! conservative by construction: every sample lands in exactly one
//! bucket — an on-CPU `(world, site, alt, phase)` key, the idle count,
//! or (theoretical) the torn-read key — so the tables always satisfy
//! `busy + idle == slot_samples` and `Σ by_key == busy`. The
//! concurrency property test pins that invariant under eight hammering
//! workers.

use crate::marker::{self, MarkerSample, Phase, NO_ALT, NO_SITE, NO_WORLD};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use worlds_obs::{Event, EventKind, Registry};

/// Default sampling rate. Prime, so the sampler never phase-locks with
/// millisecond-periodic work and systematically over- or under-samples
/// it.
pub const DEFAULT_HZ: u64 = 997;

/// Environment switch: any value but `0`/empty enables the sampler for
/// processes that call [`crate::autostart_from_env`].
pub const PROF_ENV: &str = "WORLDS_PROF";
/// Sampling rate override (Hz).
pub const HZ_ENV: &str = "WORLDS_PROF_HZ";
/// Flush interval override (milliseconds).
pub const FLUSH_ENV: &str = "WORLDS_PROF_FLUSH_MS";
/// Guard-phase stall deadline override (milliseconds).
pub const STALL_GUARD_ENV: &str = "WORLDS_PROF_STALL_GUARD_MS";
/// Any-phase stall deadline override (milliseconds).
pub const STALL_ENV: &str = "WORLDS_PROF_STALL_MS";
/// When set, the sampler rewrites this file with cumulative folded
/// stacks at every flush.
pub const FOLDED_ENV: &str = "WORLDS_PROF_FOLDED";

/// Sampler tuning. `Default` matches the documented defaults: 997 Hz,
/// 250 ms flushes, 5 s guard / 30 s overall stall deadlines, one dump
/// per 30 s.
#[derive(Debug, Clone)]
pub struct SamplerConfig {
    /// Samples per second per slot.
    pub hz: u64,
    /// How often accumulated deltas are emitted as obs events.
    pub flush_interval: Duration,
    /// Marker stuck in `Guard` longer than this ⇒ stall.
    pub guard_stall: Duration,
    /// Marker stuck in any non-idle phase longer than this ⇒ stall.
    pub overall_stall: Duration,
    /// Minimum spacing between stall-dump callbacks.
    pub dump_cooldown: Duration,
    /// Rewrite cumulative folded stacks here at each flush.
    pub folded_path: Option<PathBuf>,
}

impl Default for SamplerConfig {
    fn default() -> SamplerConfig {
        SamplerConfig {
            hz: DEFAULT_HZ,
            flush_interval: Duration::from_millis(250),
            guard_stall: Duration::from_secs(5),
            overall_stall: Duration::from_secs(30),
            dump_cooldown: Duration::from_secs(30),
            folded_path: None,
        }
    }
}

fn env_ms(name: &str) -> Option<Duration> {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .map(Duration::from_millis)
}

impl SamplerConfig {
    /// Defaults overridden by the `WORLDS_PROF_*` environment.
    pub fn from_env() -> SamplerConfig {
        let mut cfg = SamplerConfig::default();
        if let Some(hz) = std::env::var(HZ_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
        {
            cfg.hz = hz.clamp(1, 100_000);
        }
        if let Some(d) = env_ms(FLUSH_ENV) {
            cfg.flush_interval = d.max(Duration::from_millis(1));
        }
        if let Some(d) = env_ms(STALL_GUARD_ENV) {
            cfg.guard_stall = d;
        }
        if let Some(d) = env_ms(STALL_ENV) {
            cfg.overall_stall = d;
        }
        cfg.folded_path = std::env::var(FOLDED_ENV).ok().map(PathBuf::from);
        cfg
    }

    /// Estimated on-CPU nanoseconds one sample stands for.
    pub fn period_ns(&self) -> u64 {
        1_000_000_000 / self.hz.max(1)
    }
}

/// Is the `WORLDS_PROF` switch on?
pub fn prof_env_enabled() -> bool {
    std::env::var(PROF_ENV).map(|v| !v.is_empty() && v != "0") == Ok(true)
}

/// One attribution bucket: where a sampled thread was.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SampleKey {
    /// World id, or [`NO_WORLD`].
    pub world: u64,
    /// Interned site id, or [`NO_SITE`].
    pub site: u64,
    /// Alternative index, or [`NO_ALT`].
    pub alt: u64,
    /// Marker phase.
    pub phase: Phase,
}

/// The torn-read bucket: keeps conservation exact even if a read ever
/// exhausts its retries (a writer would have to wedge mid-seqlock).
pub const TORN_KEY: SampleKey = SampleKey {
    world: NO_WORLD,
    site: NO_SITE,
    alt: NO_ALT,
    phase: Phase::Task,
};

/// Largest number of distinct attribution keys kept before overflow
/// samples collapse into [`TORN_KEY`]-style catch-alls per phase.
const MAX_KEYS: usize = 65_536;

/// Cumulative sampler state, snapshot via [`Sampler::tables`].
#[derive(Debug, Clone, Default)]
pub struct SampleTables {
    /// Sampler wakeups.
    pub ticks: u64,
    /// Slot reads (ticks × live slots at each tick).
    pub slot_samples: u64,
    /// Samples that hit an on-CPU phase.
    pub busy_samples: u64,
    /// Samples that hit `Idle` or `Wait`.
    pub idle_samples: u64,
    /// On-CPU samples per `(world, site, alt, phase)`.
    pub by_key: HashMap<SampleKey, u64>,
    /// Per-worker `(busy, total)` sample counts.
    pub workers: HashMap<usize, (u64, u64)>,
    /// Stall events emitted.
    pub stalls: u64,
}

impl SampleTables {
    /// On-CPU samples per world (folded over sites/alts/phases).
    pub fn per_world(&self) -> HashMap<u64, u64> {
        let mut out = HashMap::new();
        for (k, v) in &self.by_key {
            *out.entry(k.world).or_insert(0) += v;
        }
        out
    }

    /// On-CPU samples per site (folded over worlds/alts/phases).
    pub fn per_site(&self) -> HashMap<u64, u64> {
        let mut out = HashMap::new();
        for (k, v) in &self.by_key {
            *out.entry(k.site).or_insert(0) += v;
        }
        out
    }
}

/// Everything a stall-dump callback learns about the wedge.
#[derive(Debug, Clone)]
pub struct StallInfo {
    /// Registry slot index of the wedged thread.
    pub worker: usize,
    /// World the marker points at, if any.
    pub world: Option<u64>,
    /// Site the marker points at, if any.
    pub site: Option<u64>,
    /// Phase the marker is stuck in.
    pub phase: Phase,
    /// How long the marker has not advanced.
    pub waited: Duration,
}

/// Callback fired (rate-limited) when the watchdog trips.
pub type StallHook = Box<dyn Fn(&StallInfo) + Send + Sync>;

struct Shared {
    tables: Mutex<SampleTables>,
    stop: AtomicBool,
}

/// Handle to a running sampler thread. Dropping stops it (with a final
/// flush).
pub struct Sampler {
    shared: Arc<Shared>,
    handle: Option<std::thread::JoinHandle<()>>,
    period_ns: u64,
}

impl Sampler {
    /// Spawn the watcher thread. Registers as a marker reader for its
    /// lifetime; deltas flush into `obs` as `cpu`/`wutil` events, and
    /// the watchdog emits `stall` events plus at most one `on_stall`
    /// call per [`SamplerConfig::dump_cooldown`].
    pub fn start(config: SamplerConfig, obs: Registry, on_stall: Option<StallHook>) -> Sampler {
        marker::acquire_reader();
        let shared = Arc::new(Shared {
            tables: Mutex::new(SampleTables::default()),
            stop: AtomicBool::new(false),
        });
        let period_ns = config.period_ns();
        let thread_shared = shared.clone();
        let handle = std::thread::Builder::new()
            .name("worlds-prof".into())
            .spawn(move || sampler_loop(thread_shared, config, obs, on_stall))
            .expect("spawn sampler thread");
        Sampler {
            shared,
            handle: Some(handle),
            period_ns,
        }
    }

    /// Snapshot the cumulative tables.
    pub fn tables(&self) -> SampleTables {
        self.shared
            .tables
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Cumulative folded stacks (`site;world;phase count`).
    pub fn folded(&self) -> String {
        crate::fold::render_folded_tables(&self.tables())
    }

    /// Estimated on-CPU nanoseconds per sample at the configured rate.
    pub fn period_ns(&self) -> u64 {
        self.period_ns
    }

    /// Stop the thread after one final flush.
    pub fn stop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
            marker::release_reader();
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop();
    }
}

#[derive(Debug, Clone, Copy)]
struct WatchState {
    seq: u64,
    since: Instant,
    reported: bool,
}

fn sampler_loop(
    shared: Arc<Shared>,
    config: SamplerConfig,
    obs: Registry,
    on_stall: Option<StallHook>,
) {
    let tick = Duration::from_nanos(config.period_ns());
    let period_ns = config.period_ns();
    let mut next = Instant::now() + tick;
    let mut next_flush = Instant::now() + config.flush_interval;
    // Deltas since the last flush.
    let mut pending: HashMap<SampleKey, u64> = HashMap::new();
    let mut pending_util: HashMap<usize, (u64, u64)> = HashMap::new();
    // Watchdog progress per slot index.
    let mut watch: HashMap<usize, WatchState> = HashMap::new();
    let mut last_dump: Option<Instant> = None;

    loop {
        let stopping = shared.stop.load(Ordering::Acquire);
        if !stopping {
            let now = Instant::now();
            if now < next {
                std::thread::sleep(next - now);
            }
            next += tick;
            // If we fell behind (debugger, suspended host), resynchronise
            // rather than burning CPU catching up tick debt.
            let now = Instant::now();
            if next < now {
                next = now + tick;
            }

            let slots = marker::live_slots();
            let mut tables = shared.tables.lock().unwrap_or_else(|e| e.into_inner());
            tables.ticks += 1;
            for (index, slot) in &slots {
                let sample = slot.sample(64);
                tables.slot_samples += 1;
                let key = classify(sample);
                let busy = key.is_some();
                match key {
                    Some(key) => {
                        tables.busy_samples += 1;
                        bump(&mut tables.by_key, key);
                        bump(&mut pending, key);
                    }
                    None => tables.idle_samples += 1,
                }
                let w = tables.workers.entry(*index).or_insert((0, 0));
                w.1 += 1;
                if busy {
                    w.0 += 1;
                }
                let u = pending_util.entry(*index).or_insert((0, 0));
                u.1 += 1;
                if busy {
                    u.0 += 1;
                }

                // Watchdog: has this slot's marker advanced?
                if let Some(s) = sample {
                    let now = Instant::now();
                    let st = watch.entry(*index).or_insert(WatchState {
                        seq: s.seq,
                        since: now,
                        reported: false,
                    });
                    if st.seq != s.seq || s.phase == Phase::Idle {
                        st.seq = s.seq;
                        st.since = now;
                        st.reported = false;
                    } else if !st.reported {
                        let waited = now.duration_since(st.since);
                        let deadline = if s.phase == Phase::Guard {
                            config.guard_stall
                        } else {
                            config.overall_stall
                        };
                        if waited >= deadline {
                            st.reported = true;
                            tables.stalls += 1;
                            drop(tables);
                            report_stall(
                                &obs,
                                &on_stall,
                                &mut last_dump,
                                config.dump_cooldown,
                                StallInfo {
                                    worker: *index,
                                    world: (s.world != NO_WORLD).then_some(s.world),
                                    site: (s.site != NO_SITE).then_some(s.site),
                                    phase: s.phase,
                                    waited,
                                },
                            );
                            tables = shared.tables.lock().unwrap_or_else(|e| e.into_inner());
                        }
                    }
                }
            }
        }

        if stopping || Instant::now() >= next_flush {
            next_flush = Instant::now() + config.flush_interval;
            flush(
                &shared,
                &obs,
                &config,
                period_ns,
                &mut pending,
                &mut pending_util,
            );
            if stopping {
                return;
            }
        }
    }
}

fn bump(map: &mut HashMap<SampleKey, u64>, key: SampleKey) {
    if map.len() >= MAX_KEYS && !map.contains_key(&key) {
        // Bounded memory: overflow collapses into the phase's catch-all.
        let fallback = SampleKey {
            world: NO_WORLD,
            site: NO_SITE,
            alt: NO_ALT,
            phase: key.phase,
        };
        *map.entry(fallback).or_insert(0) += 1;
    } else {
        *map.entry(key).or_insert(0) += 1;
    }
}

/// On-CPU sample ⇒ its key; idle/wait ⇒ `None`; torn ⇒ the torn bucket.
fn classify(sample: Option<MarkerSample>) -> Option<SampleKey> {
    match sample {
        Some(s) if s.phase.is_on_cpu() => Some(SampleKey {
            world: s.world,
            site: s.site,
            alt: s.alt,
            phase: s.phase,
        }),
        Some(_) => None,
        None => Some(TORN_KEY),
    }
}

fn report_stall(
    obs: &Registry,
    on_stall: &Option<StallHook>,
    last_dump: &mut Option<Instant>,
    cooldown: Duration,
    info: StallInfo,
) {
    obs.emit(|| {
        Event::new(
            EventKind::Stall {
                site: info.site,
                phase: info.phase as u64,
                waited_ns: info.waited.as_nanos() as u64,
            },
            info.world.unwrap_or(0),
            None,
            obs.now_ns(),
        )
    });
    if let Some(hook) = on_stall {
        let due = last_dump.map(|t| t.elapsed() >= cooldown).unwrap_or(true);
        if due {
            *last_dump = Some(Instant::now());
            hook(&info);
        }
    }
}

fn flush(
    shared: &Arc<Shared>,
    obs: &Registry,
    config: &SamplerConfig,
    period_ns: u64,
    pending: &mut HashMap<SampleKey, u64>,
    pending_util: &mut HashMap<usize, (u64, u64)>,
) {
    // Deterministic emission order keeps captures diffable.
    let mut keys: Vec<(SampleKey, u64)> = pending.drain().collect();
    keys.sort_unstable_by_key(|(k, _)| *k);
    for (key, samples) in keys {
        if key.world == NO_WORLD {
            // No world to attribute to; utilization still covers it.
            continue;
        }
        obs.emit(|| {
            Event::new(
                EventKind::CpuSamples {
                    samples,
                    period_ns,
                    site: (key.site != NO_SITE).then_some(key.site),
                    alt: (key.alt != NO_ALT).then_some(key.alt),
                    phase: key.phase as u64,
                },
                key.world,
                None,
                obs.now_ns(),
            )
        });
    }
    let mut workers: Vec<(usize, (u64, u64))> = pending_util.drain().collect();
    workers.sort_unstable_by_key(|(w, _)| *w);
    for (worker, (busy, total)) in workers {
        if total == 0 {
            continue;
        }
        obs.emit(|| {
            Event::new(
                EventKind::WorkerUtil {
                    worker: worker as u64,
                    busy,
                    total,
                },
                0,
                None,
                obs.now_ns(),
            )
        });
    }
    if let Some(path) = &config.folded_path {
        let tables = shared
            .tables
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        let _ = std::fs::write(path, crate::fold::render_folded_tables(&tables));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn fast_config() -> SamplerConfig {
        SamplerConfig {
            hz: 4000,
            flush_interval: Duration::from_millis(20),
            ..SamplerConfig::default()
        }
    }

    #[test]
    fn samples_are_conserved_across_tables() {
        let _serial = crate::test_serial();
        let (obs, _ring) = Registry::with_ring(4096);
        let mut sampler = Sampler::start(fast_config(), obs, None);
        let stop = Arc::new(AtomicBool::new(false));
        let workers: Vec<_> = (0..8)
            .map(|i| {
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let mut n = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        marker::mark(Some(i), Some(i % 2), Some(0), Phase::Guard);
                        n = n.wrapping_add(1);
                        if n % 64 == 0 {
                            std::thread::yield_now();
                        }
                    }
                    marker::mark_idle();
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(150));
        stop.store(true, Ordering::Relaxed);
        for w in workers {
            w.join().unwrap();
        }
        let t = sampler.tables();
        sampler.stop();
        assert!(t.ticks > 0 && t.busy_samples > 0, "sampler never sampled");
        let keyed: u64 = t.by_key.values().sum();
        assert_eq!(keyed, t.busy_samples, "Σ by_key must equal busy");
        assert_eq!(
            t.busy_samples + t.idle_samples,
            t.slot_samples,
            "every slot read lands in exactly one bucket"
        );
    }

    #[test]
    fn flush_emits_cpu_and_util_events() {
        let _serial = crate::test_serial();
        let (obs, ring) = Registry::with_ring(4096);
        let mut sampler = Sampler::start(fast_config(), obs, None);
        let stop = Arc::new(AtomicBool::new(false));
        let worker = {
            let stop = stop.clone();
            std::thread::spawn(move || {
                marker::mark(Some(42), Some(1), Some(0), Phase::Guard);
                while !stop.load(Ordering::Relaxed) {
                    std::hint::spin_loop();
                }
                marker::mark_idle();
            })
        };
        std::thread::sleep(Duration::from_millis(120));
        stop.store(true, Ordering::Relaxed);
        worker.join().unwrap();
        sampler.stop();
        let events = ring.events();
        let cpu: u64 = events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::CpuSamples { samples, .. } if e.world == 42 => Some(*samples),
                _ => None,
            })
            .sum();
        assert!(cpu > 0, "no cpu flush for the busy world: {events:?}");
        assert!(
            events
                .iter()
                .any(|e| matches!(e.kind, EventKind::WorkerUtil { .. })),
            "no worker utilization flush"
        );
    }

    #[test]
    fn wedge_fires_exactly_one_stall_and_one_dump() {
        let _serial = crate::test_serial();
        let (obs, ring) = Registry::with_ring(4096);
        let dumps = Arc::new(AtomicU64::new(0));
        let hook_dumps = dumps.clone();
        let config = SamplerConfig {
            hz: 2000,
            flush_interval: Duration::from_millis(20),
            guard_stall: Duration::from_millis(60),
            overall_stall: Duration::from_millis(400),
            dump_cooldown: Duration::from_secs(30),
            folded_path: None,
        };
        let mut sampler = Sampler::start(
            config,
            obs,
            Some(Box::new(move |_info| {
                hook_dumps.fetch_add(1, Ordering::SeqCst);
            })),
        );
        // The artificial wedge: a guard that never advances its marker.
        let stop = Arc::new(AtomicBool::new(false));
        let wedge = {
            let stop = stop.clone();
            std::thread::spawn(move || {
                marker::mark(Some(7), Some(3), Some(1), Phase::Guard);
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(5));
                }
                marker::mark_idle();
            })
        };
        std::thread::sleep(Duration::from_millis(300));
        stop.store(true, Ordering::Relaxed);
        wedge.join().unwrap();
        sampler.stop();
        let stalls: Vec<_> = ring
            .events()
            .into_iter()
            .filter(|e| matches!(e.kind, EventKind::Stall { .. }))
            .collect();
        assert_eq!(stalls.len(), 1, "one wedge ⇒ exactly one Stall: {stalls:?}");
        assert_eq!(stalls[0].world, 7);
        match &stalls[0].kind {
            EventKind::Stall {
                site,
                phase,
                waited_ns,
            } => {
                assert_eq!(*site, Some(3));
                assert_eq!(*phase, Phase::Guard as u64);
                assert!(*waited_ns >= 60_000_000);
            }
            other => panic!("not a stall: {other:?}"),
        }
        assert_eq!(dumps.load(Ordering::SeqCst), 1, "exactly one dump");
    }

    #[test]
    fn stall_clears_when_marker_advances() {
        let _serial = crate::test_serial();
        let (obs, ring) = Registry::with_ring(1024);
        let config = SamplerConfig {
            hz: 2000,
            flush_interval: Duration::from_millis(20),
            guard_stall: Duration::from_millis(50),
            overall_stall: Duration::from_millis(400),
            ..SamplerConfig::default()
        };
        let mut sampler = Sampler::start(config, obs, None);
        let worker = std::thread::spawn(move || {
            // Wedge once, recover, wedge again: two distinct episodes.
            for _ in 0..2 {
                marker::mark(Some(9), Some(1), None, Phase::Guard);
                std::thread::sleep(Duration::from_millis(130));
                marker::mark_idle();
                std::thread::sleep(Duration::from_millis(30));
            }
        });
        worker.join().unwrap();
        std::thread::sleep(Duration::from_millis(50));
        sampler.stop();
        let stalls = ring
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Stall { .. }))
            .count();
        assert_eq!(stalls, 2, "recovery must re-arm the watchdog");
    }
}
