//! §4.3's other half: a NAPSS-style polyalgorithm with fastest-first
//! scheduling through Multiple Worlds.
//!
//! ```sh
//! cargo run --example polyalgorithm
//! ```
//!
//! Scalar root finding with three methods (Newton, secant, bisection) and
//! likelihood heuristics. On a hostile problem the preferred method
//! diverges — sequentially you pay for its failure before recovering;
//! with fastest-first, a rotation that leads with the *right* method is
//! already running.

use worlds::Speculation;
use worlds_poly::scalar::{standard_polyalgorithm, ScalarProblem};
use worlds_poly::PolyOutcome;

fn describe(tag: &str, out: &PolyOutcome<f64>) {
    match out {
        PolyOutcome::Solved {
            result,
            method,
            attempts,
        } => {
            println!("{tag}: x = {result:.12} via {method} ({attempts} attempt(s)/rotations)")
        }
        PolyOutcome::Unsolved(k) => println!("{tag}: UNSOLVED; knowledge: {k:?}"),
    }
}

fn main() {
    let poly = standard_polyalgorithm();

    println!("-- friendly problem: x^3 - 2x - 5 with a bracket --");
    let friendly = ScalarProblem::new(|x| x * x * x - 2.0 * x - 5.0, 2.0).bracket(2.0, 3.0);
    describe("sequential   ", &poly.run_sequential(&friendly));
    let spec = Speculation::new();
    describe(
        "fastest-first",
        &poly.run_fastest_first(&spec, &friendly, None),
    );
    println!(
        "committed method cell: {:?}",
        spec.read(|c| c.get_str("poly_method"))
    );

    println!("\n-- hostile problem: atan(x) from x = 2, no bracket --");
    println!("(Newton's iterates overshoot with alternating signs: it diverges,");
    println!(" but *learns* a bracket on the way — failures build up knowledge)");
    let hostile = ScalarProblem::new(|x| x.atan(), 2.0);
    let seq = poly.run_sequential(&hostile);
    describe("sequential   ", &seq);
    let spec = Speculation::new();
    let par = poly.run_fastest_first(&spec, &hostile, None);
    describe("fastest-first", &par);

    match (&seq, &par) {
        (PolyOutcome::Solved { result: a, .. }, PolyOutcome::Solved { result: b, .. }) => {
            assert!(a.abs() < 1e-6 && b.abs() < 1e-6, "the root of atan is 0");
            println!("\nboth drivers agree the root is ~0; the parallel one did not have to");
            println!("wait through the preferred method's divergence before starting the cure.");
        }
        _ => panic!("both drivers should solve atan"),
    }
}
