//! # worlds-os — real `fork(2)` Multiple Worlds (Unix only)
//!
//! The paper's prototype *is* UNIX `fork()`: each alternative runs in a
//! forked child whose entire address space is inherited copy-on-write from
//! the parent — the kernel's MMU provides the "Multiple Worlds" isolation
//! for free, and §3.4's measurements (31 ms forks on the 3B2, 12 ms on the
//! HP 9000/350, 40/20 ms sync/async elimination of 16 children) are of
//! exactly this path.
//!
//! This crate reproduces that prototype on modern Unix:
//!
//! * [`ForkRace`] — run alternatives as real forked processes; the first
//!   child to write a result through the shared pipe wins (`PIPE_BUF`
//!   atomicity makes the rendezvous race-free); siblings are eliminated
//!   with `SIGKILL`, synchronously (wait for termination) or
//!   asynchronously.
//! * [`measure`] — §3.4's measurement kit: fork latency vs. dirty
//!   address-space size, COW page-copy service rate, and sync vs. async
//!   elimination cost for N children.
//!
//! ## Fork safety (the "multithread-fork care" this backend needs)
//!
//! After `fork()` in a multithreaded process only the calling thread
//! exists in the child; any lock held by another thread (notably the
//! allocator's) is left locked forever. Child-side code here therefore
//! allocates **nothing**: result buffers are preallocated before the
//! fork, and the child path uses only async-signal-safe calls (`write`,
//! `clock_gettime`, `_exit`). User closures run in the child and must
//! follow the same rule when the embedding process is multithreaded —
//! write into the provided buffer, do not allocate, do not lock.

#![cfg(unix)]

pub mod measure;
mod race;

pub use race::{ForkAlt, ForkElim, ForkOutcome, ForkRace, ForkReport};
