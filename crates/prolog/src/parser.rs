//! A hand-rolled parser for classical Horn-clause syntax.
//!
//! Grammar (ASCII, `%` line comments):
//!
//! ```text
//! program  := clause*
//! clause   := term ( ":-" terms )? "."
//! terms    := term ("," term)*
//! term     := var | int | atom ( "(" terms ")" )? | list
//! list     := "[" (terms ("|" term)?)? "]"
//! atom     := lowercase ident        var := uppercase/underscore ident
//! ```

use std::fmt;

use crate::db::Clause;
use crate::term::Term;

/// Parse failure with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            at: self.pos,
            msg: msg.into(),
        })
    }

    fn skip_ws(&mut self) {
        loop {
            while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
                self.pos += 1;
            }
            if self.pos < self.src.len() && self.src[self.pos] == b'%' {
                while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                    self.pos += 1;
                }
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.src.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), ParseError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected '{}'", expected as char))
        }
    }

    fn eat_str(&mut self, expected: &str) -> bool {
        self.skip_ws();
        if self.src[self.pos..].starts_with(expected.as_bytes()) {
            self.pos += expected.len();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> String {
        let start = self.pos;
        while self.pos < self.src.len()
            && (self.src[self.pos].is_ascii_alphanumeric() || self.src[self.pos] == b'_')
        {
            self.pos += 1;
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        match self.peek() {
            None => self.err("unexpected end of input"),
            Some(b'[') => self.list(),
            Some(c) if c.is_ascii_digit() => {
                let id = self.ident();
                id.parse::<i64>()
                    .map(Term::Int)
                    .or_else(|_| self.err(format!("bad integer {id:?}")))
            }
            Some(b'-') => {
                self.pos += 1;
                let id = self.ident();
                id.parse::<i64>()
                    .map(|v| Term::Int(-v))
                    .or_else(|_| self.err(format!("bad integer -{id:?}")))
            }
            Some(c) if c.is_ascii_uppercase() || c == b'_' => {
                let name = self.ident();
                Ok(Term::Var(name))
            }
            Some(c) if c.is_ascii_lowercase() => {
                let name = self.ident();
                if self.peek() == Some(b'(') {
                    self.eat(b'(')?;
                    let args = self.terms()?;
                    self.eat(b')')?;
                    if args.is_empty() {
                        return self.err("empty argument list");
                    }
                    Ok(Term::Compound(name, args))
                } else {
                    Ok(Term::Atom(name))
                }
            }
            Some(c) => self.err(format!("unexpected character '{}'", c as char)),
        }
    }

    fn terms(&mut self) -> Result<Vec<Term>, ParseError> {
        let mut out = vec![self.term()?];
        while self.peek() == Some(b',') {
            self.eat(b',')?;
            out.push(self.term()?);
        }
        Ok(out)
    }

    fn list(&mut self) -> Result<Term, ParseError> {
        self.eat(b'[')?;
        if self.peek() == Some(b']') {
            self.eat(b']')?;
            return Ok(Term::atom("[]"));
        }
        let items = self.terms()?;
        let tail = if self.peek() == Some(b'|') {
            self.eat(b'|')?;
            self.term()?
        } else {
            Term::atom("[]")
        };
        self.eat(b']')?;
        let mut t = tail;
        for item in items.into_iter().rev() {
            t = Term::Compound(".".into(), vec![item, t]);
        }
        Ok(t)
    }

    fn clause(&mut self) -> Result<Clause, ParseError> {
        let head = self.term()?;
        if head.functor().is_none() {
            return self.err("clause head must be an atom or compound term");
        }
        let body = if self.eat_str(":-") {
            self.terms()?
        } else {
            Vec::new()
        };
        self.eat(b'.')?;
        Ok(Clause { head, body })
    }
}

/// Parse a whole program (a sequence of clauses).
pub fn parse_program(src: &str) -> Result<Vec<Clause>, ParseError> {
    let mut p = Parser::new(src);
    let mut out = Vec::new();
    while p.peek().is_some() {
        out.push(p.clause()?);
    }
    Ok(out)
}

/// Parse a query: a comma-separated goal list (no trailing dot required).
pub fn parse_query(src: &str) -> Result<Vec<Term>, ParseError> {
    let mut p = Parser::new(src);
    let goals = p.terms()?;
    if p.peek() == Some(b'.') {
        p.eat(b'.')?;
    }
    if let Some(c) = p.peek() {
        return p.err(format!("trailing input starting at '{}'", c as char));
    }
    for g in &goals {
        if g.functor().is_none() {
            return Err(ParseError {
                at: 0,
                msg: format!("goal {g} is not callable"),
            });
        }
    }
    Ok(goals)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facts_and_rules() {
        let prog = parse_program(
            "parent(tom, bob).\n\
             parent(bob, ann).\n\
             grand(X, Z) :- parent(X, Y), parent(Y, Z).",
        )
        .unwrap();
        assert_eq!(prog.len(), 3);
        assert_eq!(prog[0].body.len(), 0);
        assert_eq!(prog[2].body.len(), 2);
        assert_eq!(prog[2].head.to_string(), "grand(X,Z)");
    }

    #[test]
    fn comments_and_whitespace() {
        let prog = parse_program("% a comment\n  a.  % trailing\nb(1).").unwrap();
        assert_eq!(prog.len(), 2);
        assert_eq!(prog[1].head.to_string(), "b(1)");
    }

    #[test]
    fn integers_including_negative() {
        let q = parse_query("f(3, -7)").unwrap();
        assert_eq!(q[0], Term::compound("f", vec![Term::Int(3), Term::Int(-7)]));
    }

    #[test]
    fn lists_sugar() {
        let q = parse_query("f([1,2,3], [], [H|T])").unwrap();
        assert_eq!(q[0].to_string(), "f([1,2,3],[],[H|T])");
    }

    #[test]
    fn variables_and_underscore() {
        let q = parse_query("f(X, _gap, Who)").unwrap();
        assert_eq!(q[0].vars(), vec!["X", "_gap", "Who"]);
    }

    #[test]
    fn query_with_conjunction() {
        let q = parse_query("parent(X, Y), parent(Y, Z).").unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn error_positions() {
        let e = parse_program("parent(tom bob).").unwrap_err();
        assert!(e.at > 0);
        assert!(e.to_string().contains("expected"));
        assert!(parse_program("f(").is_err());
        assert!(parse_query("3").is_err(), "a bare integer is not callable");
        assert!(parse_query("f(x) extra").is_err());
    }

    #[test]
    fn deep_nesting() {
        let q = parse_query("f(g(h(i(1))))").unwrap();
        assert_eq!(q[0].to_string(), "f(g(h(i(1))))");
    }
}
