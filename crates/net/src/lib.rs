//! `worlds-net` — a real wire transport for remote fork.
//!
//! §3.4 of the paper implements distributed speculation with `rfork()`:
//! checkpoint the process, ship the image to another machine, restore it
//! there, and later commit the winner's state back. `worlds-remote`
//! models the *costs* of that protocol; this crate supplies the *bytes*:
//! a synchronous, std-only TCP transport that really ships checkpoint
//! images, dirty pages and predicated messages between page stores over
//! loopback sockets — deadlines, retries, corruption and all.
//!
//! The stack, bottom to top:
//!
//! * [`crc32`] — the integrity check every frame ends with.
//! * [`Frame`] / [`read_frame`] / [`write_frame`] — the length-prefixed,
//!   versioned, checksummed frame codec ([`frame`] module docs give the
//!   byte layout).
//! * [`Request`] / [`Reply`] — the RPC vocabulary: `Ping`, `Rfork`
//!   (checkpoint image), `CommitBack` (dirty pages), `Discard`,
//!   `PredicatedSend` (an `ipc::Message`, predicate set included).
//! * [`NetNode`] — the server: one listener per node, handlers on the
//!   shared executor, and a corr-id reply ledger that makes every
//!   operation idempotent under retransmission.
//! * [`Conn`] / [`Pool`] — the client: per-request deadlines, bounded
//!   retries, exponential backoff with deterministic jitter, corr-id
//!   reuse.
//! * [`FaultSchedule`] / [`FaultProxy`] — deterministic misbehaviour:
//!   drops, delays, truncations, resets and swallowed replies from a
//!   seeded schedule, injected by a real man-in-the-middle relay.
//!
//! The same [`FaultSchedule`] drives the in-process transport in
//! `worlds-remote`, so "every 3rd transfer times out" means the same
//! retry sequence whether the bytes cross a channel or a socket.
//!
//! ```
//! use worlds_net::{Conn, NetNode, Request, Reply, RetryPolicy};
//! use worlds_obs::Registry;
//! use worlds_pagestore::{checkpoint, PageStore};
//!
//! // A "remote node": its own store behind a loopback listener.
//! let node = NetNode::serve(1, PageStore::new(64), Registry::disabled()).unwrap();
//!
//! // rfork: checkpoint here, restore there.
//! let local = PageStore::new(64);
//! let world = local.create_world();
//! local.write(world, 0, 0, b"speculate!").unwrap();
//! let image = checkpoint(&local, world).unwrap();
//!
//! let mut conn = Conn::new(1, node.addr(), RetryPolicy::default(), Registry::disabled());
//! let remote = conn.call_ack(&Request::Rfork { image }).unwrap();
//! let there = worlds_pagestore::WorldId::from_raw(remote);
//! assert_eq!(node.store().read_vec(there, 0, 0, 10).unwrap(), b"speculate!");
//! node.shutdown();
//! ```

mod client;
mod crc;
mod error;
mod fault;
mod frame;
mod proxy;
mod rpc;
mod server;

pub use client::{Conn, Pool, RetryPolicy};
pub use crc::crc32;
pub use error::{NetError, Result};
pub use fault::{FaultKind, FaultSchedule};
pub use frame::{
    read_frame, read_frame_idle, write_frame, Frame, FRAME_HEADER, FRAME_MAGIC, FRAME_TRAILER,
    FRAME_VERSION, MAX_PAYLOAD,
};
pub use proxy::{FaultProxy, OpLedger};
pub use rpc::{decode_message, encode_message, kind, nack, Reply, Request};
pub use server::{NetNode, SessionHandler, TelemetryHandler};
