//! Data series behind the paper's Figures 3 and 4.
//!
//! * **Figure 3**: `PI` as a function of `Rμ ∈ [0, 5]` with `Ro = 0.5` — a
//!   straight line of slope `1/1.5` crossing `PI = 1` at `Rμ = 1.5`. The
//!   paper picks `Ro = 0.5` because the measured COW *write fraction* fell
//!   between 0.2 and 0.5, making copying the dominant overhead.
//! * **Figure 4**: `PI` as a function of `Ro ∈ [0.01, 1.0]` with
//!   `Rμ = e ≈ 2.718`, drawn log–log — a hyperbola `e/(1+Ro)` crossing
//!   `PI = 1` at `Ro = e − 1 ≈ 1.718` (outside the plotted range; within
//!   the range `PI` falls from ≈ e toward ≈ e/2).

use crate::model::PerfModel;

/// One point of a figure series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FigPoint {
    /// The swept independent variable (`Rμ` for Fig. 3, `Ro` for Fig. 4).
    pub x: f64,
    /// The resulting performance improvement.
    pub pi: f64,
}

/// Figure 3's analytic series: `PI(Rμ)` at fixed `Ro`, swept over
/// `[0, r_mu_max]` in `steps` points. The paper uses `Ro = 0.5`,
/// `r_mu_max = 5`.
pub fn fig3_series(r_o: f64, r_mu_max: f64, steps: usize) -> Vec<FigPoint> {
    assert!(steps >= 2, "a series needs at least two points");
    (0..steps)
        .map(|i| {
            let r_mu = r_mu_max * i as f64 / (steps - 1) as f64;
            FigPoint {
                x: r_mu,
                pi: PerfModel::new(r_mu, r_o).pi(),
            }
        })
        .collect()
}

/// Figure 4's analytic series: `PI(Ro)` at fixed `Rμ`, swept
/// **logarithmically** over `[r_o_min, r_o_max]` in `steps` points (the
/// paper's axes are log–log, `Ro` from 0.01 to 1.0, `Rμ = e`).
pub fn fig4_series(r_mu: f64, r_o_min: f64, r_o_max: f64, steps: usize) -> Vec<FigPoint> {
    assert!(steps >= 2, "a series needs at least two points");
    assert!(
        r_o_min > 0.0 && r_o_max > r_o_min,
        "log sweep needs 0 < min < max"
    );
    let (lo, hi) = (r_o_min.ln(), r_o_max.ln());
    (0..steps)
        .map(|i| {
            let r_o = (lo + (hi - lo) * i as f64 / (steps - 1) as f64).exp();
            FigPoint {
                x: r_o,
                pi: PerfModel::new(r_mu, r_o).pi(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_is_a_line_through_origin() {
        let pts = fig3_series(0.5, 5.0, 11);
        assert_eq!(pts.len(), 11);
        assert_eq!(pts[0].x, 0.0);
        assert_eq!(pts[0].pi, 0.0);
        assert_eq!(pts[10].x, 5.0);
        // Slope 1/1.5 everywhere.
        for w in pts.windows(2) {
            let slope = (w[1].pi - w[0].pi) / (w[1].x - w[0].x);
            assert!((slope - 1.0 / 1.5).abs() < 1e-12);
        }
    }

    #[test]
    fn fig3_break_even_at_1_5() {
        // PI crosses 1 exactly at Rμ = 1 + Ro = 1.5.
        let pi_at = |r_mu: f64| PerfModel::new(r_mu, 0.5).pi();
        assert!(pi_at(1.49) < 1.0);
        assert!((pi_at(1.5) - 1.0).abs() < 1e-12);
        assert!(pi_at(1.51) > 1.0);
    }

    #[test]
    fn fig4_is_monotone_decreasing_hyperbola() {
        let e = std::f64::consts::E;
        let pts = fig4_series(e, 0.01, 1.0, 25);
        assert_eq!(pts.len(), 25);
        assert!((pts[0].x - 0.01).abs() < 1e-12);
        assert!((pts[24].x - 1.0).abs() < 1e-12);
        for w in pts.windows(2) {
            assert!(w[1].pi < w[0].pi, "PI must fall as overhead grows");
            assert!(w[1].x > w[0].x);
        }
        // Endpoint values: e/1.01 and e/2.
        assert!((pts[0].pi - e / 1.01).abs() < 1e-9);
        assert!((pts[24].pi - e / 2.0).abs() < 1e-9);
    }

    #[test]
    fn fig4_log_spacing() {
        let pts = fig4_series(2.0, 0.01, 1.0, 3);
        // Log-spaced midpoint of [0.01, 1] is 0.1.
        assert!((pts[1].x - 0.1).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "log sweep")]
    fn fig4_rejects_zero_min() {
        let _ = fig4_series(2.0, 0.0, 1.0, 5);
    }
}
