//! Regenerate the **§3.4 measured-overheads** table: fork latency,
//! COW page-copy service rate, write fraction, sibling elimination.
//!
//! Three columns per quantity: the paper's 1989 measurement, the value of
//! our calibrated simulator cost model (which is what the virtual-time
//! experiments charge), and — on Unix — a live measurement of the real
//! kernel on this host via `worlds-os`.

use worlds_bench::render_table;
use worlds_kernel::CostModel;
use worlds_pagestore::PageStore;

fn main() {
    println!("Section 3.4 reproduction: measured overheads\n");

    let m3b2 = CostModel::att_3b2();
    let mhp = CostModel::hp9000_350();

    // --- live measurements (real kernel) ---
    #[cfg(unix)]
    let (fork_ms, rate_2k, rate_4k, elim) = {
        let fork = worlds_os::measure::fork_latency(320 * 1024, 20)
            .map(|d| d.as_secs_f64() * 1e3)
            .unwrap_or(f64::NAN);
        let r2 = worlds_os::measure::page_copy_rate(512, 2048).unwrap_or(f64::NAN);
        let r4 = worlds_os::measure::page_copy_rate(512, 4096).unwrap_or(f64::NAN);
        let el = worlds_os::measure::elimination_cost_best_of(16, 5).ok();
        (fork, r2, r4, el)
    };
    #[cfg(not(unix))]
    let (fork_ms, rate_2k, rate_4k, elim): (
        f64,
        f64,
        f64,
        Option<(std::time::Duration, std::time::Duration)>,
    ) = (f64::NAN, f64::NAN, f64::NAN, None);

    let (elim_sync_ms, elim_async_ms) = elim
        .map(|(s, a)| (s.as_secs_f64() * 1e3, a.as_secs_f64() * 1e3))
        .unwrap_or((f64::NAN, f64::NAN));

    let rows = vec![
        vec![
            "fork(), 320 KB address space".into(),
            "31 ms (3B2) / 12 ms (HP)".into(),
            format!("{:.0} ms / {:.0} ms", m3b2.fork.as_ms(), mhp.fork.as_ms()),
            format!("{fork_ms:.3} ms"),
        ],
        vec![
            "page-copy service rate (2K pages)".into(),
            "326 pages/s (3B2)".into(),
            format!("{:.0} pages/s", m3b2.page_copy_rate()),
            format!("{rate_2k:.0} pages/s"),
        ],
        vec![
            "page-copy service rate (4K pages)".into(),
            "1034 pages/s (HP)".into(),
            format!("{:.0} pages/s", mhp.page_copy_rate()),
            format!("{rate_4k:.0} pages/s"),
        ],
        vec![
            "eliminate 16 children, sync".into(),
            "~40 ms".into(),
            format!("{:.0} ms", m3b2.elim_sync.as_ms() * 16.0),
            format!("{elim_sync_ms:.3} ms"),
        ],
        vec![
            "eliminate 16 children, async".into(),
            "~20 ms".into(),
            format!("{:.0} ms", m3b2.elim_async.as_ms() * 16.0),
            format!("{elim_async_ms:.3} ms"),
        ],
        vec![
            "rfork (remote), 70 KB process".into(),
            "~1 s (1.3 s observed)".into(),
            format!("{:.1} s", CostModel::rfork_lan().fork.as_secs()),
            "n/a (modelled only)".into(),
        ],
    ];
    println!(
        "{}",
        render_table(
            &[
                "quantity",
                "paper (1989)",
                "simulator model",
                "this host (live)"
            ],
            &rows
        )
    );

    // --- write fraction: the user-level pagestore measuring the paper's
    // 0.2-0.5 band directly ---
    println!("write fraction (pages COW-copied / pages inherited), user-level store:");
    let store = PageStore::new(2048);
    let parent = store.create_world();
    let total_pages = 160u64; // 320 KB at 2 KiB pages
    for vpn in 0..total_pages {
        store
            .write(parent, vpn, 0, &[1])
            .expect("parent world live");
    }
    let mut wf_rows = Vec::new();
    for touched in [32u64, 48, 64, 80] {
        let child = store.fork_world(parent).expect("parent live");
        for vpn in 0..touched {
            store.write(child, vpn, 0, &[2]).expect("child live");
        }
        let ws = store.world_stats(child).expect("child live");
        wf_rows.push(vec![
            format!("{touched}/{total_pages} pages touched"),
            format!("{:.2}", ws.write_fraction().unwrap_or(f64::NAN)),
            format!("{} pages copied", ws.pages_cowed),
        ]);
        store.drop_world(child).expect("child live");
    }
    println!(
        "{}",
        render_table(
            &["child behaviour", "write fraction", "COW traffic"],
            &wf_rows
        )
    );
    println!("(the paper observed write fractions between 0.2 and 0.5 — the 32..80 page rows)");

    // --- this host, as a simulator cost model ---
    #[cfg(unix)]
    {
        use worlds_kernel::{AltSpec, BlockSpec, Machine};
        match worlds_os::measure::calibrated_cost_model() {
            Ok(model) => {
                println!("\nthis host as a calibrated cost model:");
                println!(
                    "  {} | {} CPU(s) | fork {} | page copy {:.0} pages/s",
                    model.name,
                    model.cpus,
                    model.fork,
                    model.page_copy_rate()
                );
                // The Table I block shape, re-run with today's costs on a
                // 2-CPU machine (matching the Titan's CPU count so the
                // comparison isolates the speculation machinery, not CPU
                // contention — this container has 1 CPU).
                let block = BlockSpec::new(vec![
                    AltSpec::new("angle-a").compute_ms(4010.0).write_pages(40),
                    AltSpec::new("angle-b").compute_ms(4490.0).write_pages(40),
                ])
                .shared_pages(160);
                let mut m = Machine::new(model.with_cpus(2));
                let report = m.run_block(&block);
                println!(
                    "  Table I's 2-angle race, this host's costs on 2 CPUs: par = {:.4} s",
                    report.wall.as_secs()
                );
                println!(
                    "  speculation overhead today: {:.3} ms vs the Titan's ~110 ms",
                    report.t_overhead().map(|t| t.as_ms()).unwrap_or(f64::NAN)
                );
            }
            Err(e) => println!("(could not calibrate this host: {e})"),
        }
    }
}
