//! The world context: what one alternative sees while it runs.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use worlds_obs::TraceCtx;
use worlds_pagestore::{FileSystem, PageStoreError, WorldId};
use worlds_predicate::{Pid, PredicateSet};

use crate::error::AltError;

/// Shared cancellation flag: set once a sibling wins (or the block times
/// out); alternatives poll it at [`WorldCtx::checkpoint`].
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Raise the flag.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Has the flag been raised?
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// An alternative's view of the system: private COW state, deferred
/// output, identity, and cancellation.
///
/// All state access goes through **named cells** backed by the session's
/// single-level store: each cell is a named set of pages, so writes are
/// private to this world until (and unless) this alternative wins. Reads
/// see the parent's state plus this world's own writes — the paper's
/// internal-consistency requirement ("it can read what was written").
pub struct WorldCtx {
    fs: FileSystem,
    world: WorldId,
    pid: Pid,
    predicates: PredicateSet,
    cancel: CancelToken,
    trace: TraceCtx,
    /// Deferred teletype lines (flushed by the parent iff this world wins).
    pub(crate) output: Vec<String>,
}

impl WorldCtx {
    pub(crate) fn new(
        fs: FileSystem,
        world: WorldId,
        pid: Pid,
        predicates: PredicateSet,
        cancel: CancelToken,
        trace: TraceCtx,
    ) -> Self {
        WorldCtx {
            fs,
            world,
            pid,
            predicates,
            cancel,
            trace,
            output: Vec::new(),
        }
    }

    /// This world's process id.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// The assumptions this world runs under (empty for the parent's own
    /// setup/read contexts, "I complete & my siblings don't" inside an
    /// alternative).
    pub fn predicates(&self) -> &PredicateSet {
        &self.predicates
    }

    /// The underlying world id (diagnostics).
    pub fn world_id(&self) -> WorldId {
        self.world
    }

    /// The trace context for causal edges that leave this world: attach
    /// it to outbound [`worlds_ipc::Message`]s (via `with_trace`) so the
    /// receiver's events join this run's span tree instead of starting
    /// an orphan root. `root` is the session's root world; `world` is
    /// this alternative's own world.
    ///
    /// [`worlds_ipc::Message`]: https://docs.rs/worlds
    pub fn trace_ctx(&self) -> TraceCtx {
        self.trace
    }

    // ---- named state cells ----

    /// Store raw bytes under `name`. Creates the cell on first write with
    /// capacity `max(len, 4096)`; later writes must fit the original
    /// capacity.
    pub fn put_bytes(&mut self, name: &str, data: &[u8]) -> Result<(), AltError> {
        // Page-fault-boundary cancellation point: a loser that wakes
        // after the block has been decided is refused here, before it
        // can dirty any page of its (possibly already queued-for-reap)
        // world.
        self.checkpoint()?;
        let total = data.len() + 8;
        match self.fs.open(name) {
            Ok(_) => {}
            Err(PageStoreError::NoSuchFile(_)) => {
                self.fs.create(name, (total as u64).max(4096))?;
            }
            Err(e) => return Err(e.into()),
        }
        let len_prefix = (data.len() as u64).to_le_bytes();
        self.fs.write_at(self.world, name, 0, &len_prefix)?;
        self.fs.write_at(self.world, name, 8, data)?;
        Ok(())
    }

    /// Read the bytes stored under `name` in this world, `None` if the cell
    /// was never written.
    pub fn get_bytes(&self, name: &str) -> Option<Vec<u8>> {
        let _ = self.fs.open(name).ok()?;
        let prefix = self.fs.read_at(self.world, name, 0, 8).ok()?;
        let len = u64::from_le_bytes(prefix.try_into().expect("8-byte prefix")) as usize;
        if len == 0 {
            // Distinguish "never written in any world" from "written
            // empty": an existing file with len 0 might be either; treat
            // a zero-length record as present-but-empty.
            return Some(Vec::new());
        }
        self.fs.read_at(self.world, name, 8, len).ok()
    }

    /// Store a `u64` under `name`.
    pub fn put_u64(&mut self, name: &str, v: u64) -> Result<(), AltError> {
        self.put_bytes(name, &v.to_le_bytes())
    }

    /// Read a `u64` from `name`.
    pub fn get_u64(&self, name: &str) -> Option<u64> {
        let b = self.get_bytes(name)?;
        Some(u64::from_le_bytes(b.try_into().ok()?))
    }

    /// Store an `f64` under `name`.
    pub fn put_f64(&mut self, name: &str, v: f64) -> Result<(), AltError> {
        self.put_bytes(name, &v.to_le_bytes())
    }

    /// Read an `f64` from `name`.
    pub fn get_f64(&self, name: &str) -> Option<f64> {
        let b = self.get_bytes(name)?;
        Some(f64::from_le_bytes(b.try_into().ok()?))
    }

    /// Store a string under `name`.
    pub fn put_str(&mut self, name: &str, v: &str) -> Result<(), AltError> {
        self.put_bytes(name, v.as_bytes())
    }

    /// Read a string from `name`.
    pub fn get_str(&self, name: &str) -> Option<String> {
        String::from_utf8(self.get_bytes(name)?).ok()
    }

    // ---- source output (deferred side effects) ----

    /// Print a line to the session teletype. The line is **buffered**: it
    /// becomes observable only if this alternative wins (Jefferson-style
    /// source buffering, §5 of the paper). Losing worlds' output vanishes.
    pub fn print(&mut self, line: impl Into<String>) {
        self.output.push(line.into());
    }

    /// Lines buffered so far (visible to this world only).
    pub fn buffered_output(&self) -> &[String] {
        &self.output
    }

    // ---- cancellation ----

    /// Has a sibling already won?
    pub fn is_cancelled(&self) -> bool {
        self.cancel.is_cancelled()
    }

    /// Cooperative cancellation point: long-running alternatives should
    /// call this inside loops and propagate the error with `?`.
    pub fn checkpoint(&self) -> Result<(), AltError> {
        if self.is_cancelled() {
            Err(AltError::Cancelled)
        } else {
            Ok(())
        }
    }
}

impl std::fmt::Debug for WorldCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorldCtx")
            .field("pid", &self.pid)
            .field("world", &self.world)
            .field("predicates", &self.predicates)
            .field("buffered_lines", &self.output.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use worlds_pagestore::PageStore;

    fn ctx() -> WorldCtx {
        let store = PageStore::new(256);
        let world = store.create_world();
        let fs = FileSystem::new(store);
        WorldCtx::new(
            fs,
            world,
            Pid::fresh(),
            PredicateSet::empty(),
            CancelToken::new(),
            TraceCtx {
                root: world.raw(),
                world: world.raw(),
            },
        )
    }

    #[test]
    fn bytes_round_trip() {
        let mut c = ctx();
        assert_eq!(c.get_bytes("x"), None);
        c.put_bytes("x", b"hello").unwrap();
        assert_eq!(c.get_bytes("x").unwrap(), b"hello");
        c.put_bytes("x", b"hi").unwrap(); // shorter rewrite ok
        assert_eq!(c.get_bytes("x").unwrap(), b"hi");
    }

    #[test]
    fn typed_round_trips() {
        let mut c = ctx();
        c.put_u64("u", 99).unwrap();
        c.put_f64("f", 2.5).unwrap();
        c.put_str("s", "worlds").unwrap();
        assert_eq!(c.get_u64("u"), Some(99));
        assert_eq!(c.get_f64("f"), Some(2.5));
        assert_eq!(c.get_str("s").as_deref(), Some("worlds"));
        assert_eq!(c.get_u64("missing"), None);
    }

    #[test]
    fn oversized_rewrite_fails() {
        let mut c = ctx();
        c.put_bytes("x", b"tiny").unwrap(); // capacity 4096
        let big = vec![0u8; 8192];
        assert!(matches!(c.put_bytes("x", &big), Err(AltError::State(_))));
    }

    #[test]
    fn large_initial_write_allocates_enough() {
        let mut c = ctx();
        let big = vec![7u8; 10_000];
        c.put_bytes("big", &big).unwrap();
        assert_eq!(c.get_bytes("big").unwrap(), big);
    }

    #[test]
    fn print_is_buffered_not_observable() {
        let mut c = ctx();
        c.print("line one");
        c.print(String::from("line two"));
        assert_eq!(
            c.buffered_output(),
            &["line one".to_string(), "line two".to_string()]
        );
    }

    #[test]
    fn cancellation() {
        let token = CancelToken::new();
        let store = PageStore::new(256);
        let world = store.create_world();
        let mut c = WorldCtx::new(
            FileSystem::new(store),
            world,
            Pid::fresh(),
            PredicateSet::empty(),
            token.clone(),
            TraceCtx {
                root: world.raw(),
                world: world.raw(),
            },
        );
        assert!(c.checkpoint().is_ok());
        assert!(c.put_u64("pre", 1).is_ok());
        token.cancel();
        assert!(c.is_cancelled());
        assert_eq!(c.checkpoint().unwrap_err(), AltError::Cancelled);
        // Writes are cancellation points too: no page of a cancelled
        // world can ever be dirtied again.
        assert_eq!(c.put_u64("post", 2).unwrap_err(), AltError::Cancelled);
    }

    #[test]
    fn trace_ctx_is_carried_through() {
        let c = ctx();
        let t = c.trace_ctx();
        assert_eq!(t.root, c.world_id().raw());
        assert_eq!(t.world, c.world_id().raw());
    }

    #[test]
    fn empty_write_reads_back_empty() {
        let mut c = ctx();
        c.put_bytes("e", b"").unwrap();
        assert_eq!(c.get_bytes("e").unwrap(), Vec::<u8>::new());
    }
}
